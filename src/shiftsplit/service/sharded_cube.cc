#include "shiftsplit/service/sharded_cube.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <utility>

#include "shiftsplit/service/shard_supervisor.h"

namespace shiftsplit {

namespace {

constexpr const char* kShardSetManifest = "shardset.manifest";

std::string ShardSetPath(const std::string& dir) {
  return (std::filesystem::path(dir) / kShardSetManifest).string();
}

std::string ShardPath(const std::string& dir, const std::string& shard_dir) {
  return (std::filesystem::path(dir) / shard_dir).string();
}

uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool ShardedCube::IsShardedDir(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::exists(ShardSetPath(dir), ec);
}

Result<std::unique_ptr<ShardedCube>> ShardedCube::CreateOnDisk(
    const std::string& dir, std::vector<uint32_t> log_dims,
    uint32_t num_shards, const WaveletCube::Options& cube_options,
    const Options& options) {
  if (cube_options.form != StoreForm::kStandard) {
    return Status::Unimplemented(
        "ShardedCube currently supports standard-form cubes");
  }
  SS_ASSIGN_OR_RETURN(ShardRouter router,
                      ShardRouter::Make(log_dims, num_shards));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create sharded store directory " + dir);
  }

  ShardSetManifest manifest;
  manifest.num_shards = num_shards;
  manifest.split_dim = router.split_dim();
  manifest.log_dims = std::move(log_dims);
  for (uint32_t s = 0; s < num_shards; ++s) {
    manifest.shard_dirs.push_back(ShardSetManifest::ShardDirName(s));
  }
  // Shard stores first, manifest last: a crash mid-create leaves either no
  // shard set at all (no shardset.manifest) or a complete one.
  for (uint32_t s = 0; s < num_shards; ++s) {
    SS_ASSIGN_OR_RETURN(
        std::unique_ptr<WaveletCube> cube,
        WaveletCube::CreateOnDisk(ShardPath(dir, manifest.shard_dirs[s]),
                                  router.shard_log_dims(), cube_options));
    SS_RETURN_IF_ERROR(cube->Close());
  }
  SS_RETURN_IF_ERROR(manifest.Save(ShardSetPath(dir)));
  return OpenOnDisk(dir, options);
}

Result<std::unique_ptr<ShardedCube>> ShardedCube::OpenOnDisk(
    const std::string& dir, const Options& options) {
  SS_ASSIGN_OR_RETURN(ShardSetManifest manifest,
                      ShardSetManifest::Load(ShardSetPath(dir)));
  SS_ASSIGN_OR_RETURN(
      ShardRouter router,
      ShardRouter::Make(manifest.log_dims, manifest.split_dim,
                        manifest.num_shards));
  std::unique_ptr<ShardedCube> sharded(new ShardedCube());
  sharded->router_ = std::move(router);
  sharded->options_ = options;
  sharded->dir_ = dir;
  sharded->shard_dirs_ = manifest.shard_dirs;
  sharded->slots_.reserve(manifest.num_shards);
  const uint64_t now = SteadyNowUs();
  for (uint32_t s = 0; s < manifest.num_shards; ++s) {
    SS_ASSIGN_OR_RETURN(
        std::unique_ptr<ServingCube> shard,
        ServingCube::OpenOnDisk(ShardPath(dir, manifest.shard_dirs[s]),
                                options.pool_blocks_per_shard,
                                options.serving));
    if (shard->cube()->log_dims() != sharded->router_.shard_log_dims()) {
      return Status::Internal(
          "shard " + manifest.shard_dirs[s] +
          " does not match the shard set's per-shard sub-domain");
    }
    if (s == 0) {
      sharded->norm_ = shard->cube()->manifest().norm;
      sharded->blocks_per_shard_ =
          shard->cube()->store()->layout().num_blocks();
    }
    auto slot = std::make_unique<Slot>();
    slot->since_us = now;
    if (options.track_energy) {
      SS_RETURN_IF_ERROR(shard->cube()->store()->EnableEnergyTracking());
      // Replayed-but-unapplied deltas are not in the energy index yet; the
      // ceiling stays at +infinity until the supervisor refreshes it at
      // the first fully-drained observation.
      if (shard->pending_deltas() == 0) {
        slot->energy_ceiling = shard->cube()->store()->TotalEnergyCeiling();
      }
    }
    slot->cube = std::shared_ptr<ServingCube>(std::move(shard));
    sharded->slots_.push_back(std::move(slot));
  }
  if (options.supervise) {
    sharded->supervisor_ = std::make_unique<ShardSupervisor>(
        sharded.get(), options.supervisor_poll,
        options.supervisor_jitter_seed);
    if (options.serving.start_workers) sharded->supervisor_->Start();
  }
  return sharded;
}

ShardedCube::~ShardedCube() { StopWorkers(); }

std::string ShardedCube::ShardDirPath(uint32_t shard) const {
  return ShardPath(dir_, shard_dirs_[shard]);
}

bool ShardedCube::SupervisorRunning() const {
  return supervisor_ != nullptr && supervisor_->running();
}

Status ShardedCube::UnavailableLocked(uint32_t shard,
                                      const Slot& slot) const {
  std::string msg = "shard " + std::to_string(shard) + " is " +
                    ShardHealthToString(slot.health);
  if (slot.health == ShardHealth::kFailed) {
    msg += " (terminal; operator action required)";
  }
  if (!slot.cause.ok()) {
    msg += ": " + std::string(StatusCodeToString(slot.cause.code())) + ": " +
           slot.cause.message();
  }
  return Status::Unavailable(std::move(msg));
}

std::shared_ptr<ServingCube> ShardedCube::AcquireServing(
    uint32_t shard, Status* why) const {
  const Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  if (ShardHealthServes(slot.health) && slot.cube != nullptr) {
    return slot.cube;
  }
  if (why != nullptr) *why = UnavailableLocked(shard, slot);
  return nullptr;
}

void ShardedCube::NoteQuarantined(uint32_t shard,
                                  const std::shared_ptr<ServingCube>& cube) {
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  // Stale observation: the slot already moved past this cube instance.
  if (slot.cube != cube) return;
  if (!ShardHealthServes(slot.health)) return;
  slot.health = ShardHealth::kQuarantined;
  slot.cause = cube->poison_status();
  slot.since_us = SteadyNowUs();
  slot.attempts = 0;
  slot.next_attempt_us = slot.since_us;  // first recovery attempt is free
  ++slot.quarantines;
}

bool ShardedCube::MarkRepairing(uint32_t shard,
                                const std::shared_ptr<ServingCube>& cube) {
  // Only data corruption is parity-repairable; drain/flush failures of any
  // other kind need the full teardown + journal-replay rebuild. And without
  // a supervisor nobody would ever run the repair, so the slot must not be
  // left DEGRADED-forever — quarantine as before.
  if (!SupervisorRunning()) return false;
  if (cube->poison_status().code() != StatusCode::kChecksumMismatch) {
    return false;
  }
  if (cube->cube()->manifest().parity_group == 0) return false;
  Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.cube != cube) return true;  // stale observation: nothing to mark
  if (!ShardHealthServes(slot.health)) return true;
  if (slot.health != ShardHealth::kDegraded) {
    slot.health = ShardHealth::kDegraded;
    slot.since_us = SteadyNowUs();
  }
  slot.cause = cube->poison_status();
  return true;
}

bool ShardedCube::TryRepairShardInPlace(
    uint32_t shard, const std::shared_ptr<ServingCube>& cube) {
  if (cube->poison_status().code() != StatusCode::kChecksumMismatch) {
    return false;
  }
  if (cube->cube()->manifest().parity_group == 0) return false;
  Slot& slot = *slots_[shard];
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.cube != cube || !ShardHealthServes(slot.health)) return false;
    // DEGRADED while repairing, never QUARANTINED: the slot keeps its
    // serving state (buffered deltas stay put, approx-tolerant queries
    // degrade around the shard) and no quarantine is counted for a fault
    // parity can heal.
    if (slot.health != ShardHealth::kDegraded) {
      slot.health = ShardHealth::kDegraded;
      slot.since_us = SteadyNowUs();
    }
    slot.cause = cube->poison_status();
  }
  const Result<ScrubReport> report = cube->RepairNow();
  const bool healed = report.ok() && report.value().unrepairable.empty() &&
                      cube->health() != ShardHealth::kQuarantined;
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.cube != cube) return true;  // slot moved on underneath us
  if (!healed) return false;  // double fault etc.: caller escalates
  slot.health = cube->health();  // HEALTHY, or DEGRADED log backpressure
  slot.cause = Status::OK();
  slot.since_us = SteadyNowUs();
  slot.attempts = 0;
  ++slot.recoveries;  // re-admitted in place
  return true;
}

Status ShardedCube::AddToShard(uint32_t shard,
                               std::span<const uint64_t> local, double delta,
                               OperationContext* ctx, bool durable_ack,
                               uint64_t* seq_out, bool* parked_out,
                               std::shared_ptr<ServingCube>* cube_out) {
  Slot& slot = *slots_[shard];
  std::shared_ptr<ServingCube> cube;
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (ShardHealthServes(slot.health) && slot.cube != nullptr) {
      cube = slot.cube;
      // Pre-charge the unapplied-delta mass before the delta can become
      // visible: the degraded bound must never under-count (a failed Add
      // leaves a harmless overestimate).
      slot.pending_abs += std::abs(delta);
    } else if (slot.health == ShardHealth::kQuarantined ||
               slot.health == ShardHealth::kRecovering) {
      // Bounded parking — but only when a supervisor is actually running
      // to drain the queue on re-admit, and never under an armed deadline
      // (the caller asked for bounded latency, so fail fast instead).
      if (SupervisorRunning() && !(ctx != nullptr && ctx->has_deadline()) &&
          slot.parked.size() < options_.max_parked_writes) {
        slot.parked.push_back(
            ParkedWrite{{local.begin(), local.end()}, delta});
        ++slot.parked_total;
        slot.pending_abs += std::abs(delta);
        if (parked_out != nullptr) *parked_out = true;
        return Status::OK();
      }
      return UnavailableLocked(shard, slot);
    } else {
      return UnavailableLocked(shard, slot);
    }
  }
  const Status status =
      durable_ack ? cube->Add(local, delta, ctx)
                  : cube->AddBuffered(local, delta, ctx, seq_out);
  if (!status.ok() && cube->health() == ShardHealth::kQuarantined) {
    // Inline detection: mark the slot immediately instead of waiting for
    // the next supervisor poll. Parity-repairable corruption only DEGRADEs
    // the slot — the supervisor heals the cube in place and the buffered
    // deltas survive — so the raw checksum status goes back to the caller.
    if (MarkRepairing(shard, cube)) return status;
    // Everything else quarantines so follow-up writes park right away —
    // and report the same kUnavailable the parked/bounced paths do (the
    // raw poison status, kInternal or worse, rides along as the cause).
    NoteQuarantined(shard, cube);
    std::lock_guard<std::mutex> lock(slot.mu);
    if (!ShardHealthServes(slot.health)) return UnavailableLocked(shard, slot);
    // Stale race: the supervisor already healed the slot past this cube.
    return Status::Unavailable("shard " + std::to_string(shard) +
                               " was quarantined mid-write; retry");
  }
  if (status.ok() && cube_out != nullptr) *cube_out = std::move(cube);
  return status;
}

Status ShardedCube::Add(std::span<const uint64_t> coords, double delta,
                        OperationContext* ctx) {
  SS_ASSIGN_OR_RETURN(const uint32_t shard, router_.RoutePoint(coords));
  return AddToShard(shard, router_.ToLocal(coords, shard), delta, ctx,
                    /*durable_ack=*/true, nullptr, nullptr);
}

Status ShardedCube::Update(const Tensor& deltas,
                           std::span<const uint64_t> origin,
                           OperationContext* ctx) {
  const TensorShape& shape = deltas.shape();
  if (origin.size() != shape.ndim() ||
      shape.ndim() != router_.log_dims().size()) {
    return Status::InvalidArgument("origin/deltas dimensionality mismatch");
  }
  std::vector<uint64_t> hi(origin.begin(), origin.end());
  for (uint32_t d = 0; d < shape.ndim(); ++d) hi[d] += shape.dim(d) - 1;
  // Validates the box against the global domain; the clipped sub-boxes need
  // not have power-of-two extents, so cells are buffered individually (in
  // global row-major order, which keeps each shard's relative order) with
  // one group ack per touched shard. Cells owned by an unhealthy shard
  // park (or fail) through the same path as Add; parked cells need no ack.
  SS_RETURN_IF_ERROR(router_.DecomposeRange(origin, hi).status());
  std::vector<uint64_t> last_seq(slots_.size(), 0);
  std::vector<std::shared_ptr<ServingCube>> acked(slots_.size());
  std::vector<uint64_t> coords(shape.ndim(), 0);
  std::vector<uint64_t> absolute(shape.ndim(), 0);
  do {
    for (uint32_t d = 0; d < shape.ndim(); ++d) {
      absolute[d] = origin[d] + coords[d];
    }
    const uint32_t shard = router_.ShardOf(absolute);
    bool parked = false;
    SS_RETURN_IF_ERROR(AddToShard(shard, router_.ToLocal(absolute, shard),
                                  deltas.At(coords), ctx,
                                  /*durable_ack=*/false, &last_seq[shard],
                                  &parked, &acked[shard]));
  } while (shape.Next(coords));
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    // Ack on the exact cube instance that issued the sequence numbers.
    if (acked[s] != nullptr) {
      SS_RETURN_IF_ERROR(acked[s]->SyncAcks(last_seq[s]));
    }
  }
  return Status::OK();
}

Result<double> ShardedCube::PointQuery(std::span<const uint64_t> point,
                                       bool use_scaling_slots,
                                       OperationContext* ctx) {
  SS_ASSIGN_OR_RETURN(const uint32_t shard, router_.RoutePoint(point));
  Status why;
  const std::shared_ptr<ServingCube> cube = AcquireServing(shard, &why);
  if (cube == nullptr) return why;
  const Result<double> result =
      cube->PointQuery(router_.ToLocal(point, shard), use_scaling_slots,
                       ctx);
  if (!result.ok() && cube->health() == ShardHealth::kQuarantined &&
      !MarkRepairing(shard, cube)) {
    NoteQuarantined(shard, cube);
  }
  return result;
}

Result<double> ShardedCube::RangeSum(std::span<const uint64_t> lo,
                                     std::span<const uint64_t> hi,
                                     OperationContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<ShardRange> parts,
                      router_.DecomposeRange(lo, hi));
  double sum = 0.0;
  for (const ShardRange& part : parts) {
    Status why;
    const std::shared_ptr<ServingCube> cube =
        AcquireServing(part.shard, &why);
    if (cube == nullptr) return why;  // exact mode: fail fast, no stall
    const Result<double> shard_sum = cube->RangeSum(part.lo, part.hi, ctx);
    if (!shard_sum.ok()) {
      if (cube->health() == ShardHealth::kQuarantined &&
          !MarkRepairing(part.shard, cube)) {
        NoteQuarantined(part.shard, cube);
      }
      return shard_sum.status();
    }
    sum += *shard_sum;
  }
  return sum;
}

double ShardedCube::ShardSkipBound(uint32_t shard,
                                   std::span<const uint64_t> lo,
                                   std::span<const uint64_t> hi) const {
  // Cauchy–Schwarz over the shard's whole coefficient set: the part answer
  // is <w, c> over the Lemma-2 term set, so |answer| <= ||w||·||c||. The
  // weight norm factors per dimension (the term set is a product set);
  // ||c|| is bounded by the slot's tracked energy ceiling, and deltas
  // accepted after that refresh are covered by their absolute mass.
  const std::vector<uint32_t>& dims = router_.shard_log_dims();
  double weight_sq = 1.0;
  for (uint32_t d = 0; d < dims.size(); ++d) {
    weight_sq *= RangeWeightNormSquared(dims[d], lo[d], hi[d], norm_);
  }
  const Slot& slot = *slots_[shard];
  double ceiling;
  double pending;
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    ceiling = slot.energy_ceiling;
    pending = slot.pending_abs;
  }
  return std::sqrt(weight_sq) * ceiling + pending;
}

Result<DegradedResult> ShardedCube::RangeSum(std::span<const uint64_t> lo,
                                             std::span<const uint64_t> hi,
                                             const QueryOptions& options) {
  SS_ASSIGN_OR_RETURN(std::vector<ShardRange> parts,
                      router_.DecomposeRange(lo, hi));
  DegradedResult out;
  for (const ShardRange& part : parts) {
    Status why;
    const std::shared_ptr<ServingCube> cube =
        AcquireServing(part.shard, &why);
    if (cube != nullptr) {
      const Result<double> shard_sum =
          cube->RangeSum(part.lo, part.hi, options.context);
      if (shard_sum.ok()) {
        out.value += *shard_sum;
        continue;
      }
      if (cube->health() == ShardHealth::kQuarantined &&
          !MarkRepairing(part.shard, cube)) {
        NoteQuarantined(part.shard, cube);
      }
      why = shard_sum.status();
      // Caller mistakes and explicit aborts are never papered over by a
      // degraded answer.
      if (why.code() == StatusCode::kInvalidArgument ||
          why.code() == StatusCode::kOutOfRange ||
          why.code() == StatusCode::kCancelled ||
          why.code() == StatusCode::kDeadlineExceeded) {
        return why;
      }
    }
    if (!options.approx_ok()) return why;
    out.error_bound += ShardSkipBound(part.shard, part.lo, part.hi);
    out.blocks_missing += blocks_per_shard_;
    out.shards_missing.push_back(part.shard);
    out.reason = DegradedReason::kShardUnavailable;
  }
  if (!out.exact() && !(out.error_bound <= options.max_error)) {
    return Status::Unavailable(
        "degraded range sum error bound " + std::to_string(out.error_bound) +
        " exceeds max_error " + std::to_string(options.max_error) + " (" +
        std::to_string(out.shards_missing.size()) + " shards unavailable)");
  }
  return out;
}

Result<DegradedResult> ShardedCube::PointQuery(
    std::span<const uint64_t> point, const QueryOptions& options) {
  SS_ASSIGN_OR_RETURN(const uint32_t shard, router_.RoutePoint(point));
  const std::vector<uint64_t> local = router_.ToLocal(point, shard);
  Status why;
  const std::shared_ptr<ServingCube> cube = AcquireServing(shard, &why);
  DegradedResult out;
  if (cube != nullptr) {
    const Result<double> value =
        cube->PointQuery(local, options.use_scaling_slots, options.context);
    if (value.ok()) {
      out.value = *value;
      return out;
    }
    if (cube->health() == ShardHealth::kQuarantined &&
        !MarkRepairing(shard, cube)) {
      NoteQuarantined(shard, cube);
    }
    why = value.status();
    if (why.code() == StatusCode::kInvalidArgument ||
        why.code() == StatusCode::kOutOfRange ||
        why.code() == StatusCode::kCancelled ||
        why.code() == StatusCode::kDeadlineExceeded) {
      return why;
    }
  }
  if (!options.approx_ok()) return why;
  // A single-cell box range sum equals the point value, so the range bound
  // applies verbatim with lo = hi = the point.
  out.error_bound += ShardSkipBound(shard, local, local);
  out.blocks_missing += blocks_per_shard_;
  out.shards_missing.push_back(shard);
  out.reason = DegradedReason::kShardUnavailable;
  if (!(out.error_bound <= options.max_error)) {
    return Status::Unavailable(
        "degraded point query error bound " +
        std::to_string(out.error_bound) + " exceeds max_error " +
        std::to_string(options.max_error));
  }
  return out;
}

void ShardedCube::SuperviseShard(uint32_t shard, uint64_t now_us,
                                 uint64_t* jitter_state) {
  Slot& slot = *slots_[shard];
  std::shared_ptr<ServingCube> cube;
  ShardHealth health;
  double precharge_snapshot = 0.0;
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    health = slot.health;
    cube = slot.cube;
    precharge_snapshot = slot.pending_abs;
  }
  if (ShardHealthServes(health) && cube != nullptr) {
    const ShardHealth observed = cube->health();
    if (observed == ShardHealth::kQuarantined) {
      // Parity first: checksum poison on a parity-protected store is
      // repaired in place (scrub + rebuild from group parity + resume the
      // interrupted drain) with the slot merely DEGRADED — no teardown, no
      // buffered-delta loss, no quarantine counted. Only an unrepairable
      // double fault falls through to the full rebuild below.
      if (TryRepairShardInPlace(shard, cube)) return;
      NoteQuarantined(shard, cube);
      // Fall through to the recovery check: the first attempt is due
      // immediately.
    } else {
      // Mirror the cube's own DEGRADED bit (delta-log backpressure) into
      // the slot so shard_health/stats expose it.
      {
        std::lock_guard<std::mutex> lock(slot.mu);
        if (slot.cube == cube && ShardHealthServes(slot.health) &&
            slot.health != observed) {
          slot.health = observed;
          slot.since_us = now_us;
          slot.cause = Status::OK();
        }
      }
      if (options_.track_energy) {
        // Drained-refresh protocol (safe under concurrent writers): the
        // pre-charge snapshot was taken before the drained check, so
        // every delta it covers is in the energy index by the time the
        // ceiling is read — subtracting the snapshot can never
        // under-count, and deltas racing in after the snapshot keep
        // their own charge.
        const ServingStats stats = cube->stats();
        if (stats.applied_seq == stats.last_seq) {
          const double ceiling = cube->cube()->store()->TotalEnergyCeiling();
          std::lock_guard<std::mutex> lock(slot.mu);
          if (slot.cube == cube && ShardHealthServes(slot.health)) {
            slot.energy_ceiling = ceiling;
            slot.pending_abs =
                std::max(0.0, slot.pending_abs - precharge_snapshot);
          }
        }
      }
      return;
    }
  }
  uint64_t next_attempt;
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.health != ShardHealth::kQuarantined) return;
    next_attempt = slot.next_attempt_us;
  }
  if (now_us < next_attempt) return;
  (void)TryRecoverShard(shard, jitter_state);  // failure reschedules itself
}

Status ShardedCube::TryRecoverShard(uint32_t shard, uint64_t* jitter_state) {
  Slot& slot = *slots_[shard];
  std::shared_ptr<ServingCube> old;
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.health != ShardHealth::kQuarantined) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " is not quarantined");
    }
    slot.health = ShardHealth::kRecovering;
    slot.since_us = SteadyNowUs();
    ++slot.attempts;
    ++slot.recovery_attempts_total;
    old = std::move(slot.cube);
    slot.cube = nullptr;
  }
  // Teardown without flushing: drop every dirty page so nothing of the
  // failed cube's half-applied state reaches disk; the journal and delta
  // log stay put for the reopen below to replay.
  if (old != nullptr) {
    (void)old->Abandon();
    old.reset();
  }

  const Status attempt = [&]() -> Status {
    SS_ASSIGN_OR_RETURN(
        std::unique_ptr<ServingCube> reopened,
        ServingCube::OpenOnDisk(ShardDirPath(shard),
                                options_.pool_blocks_per_shard,
                                options_.serving));
    if (reopened->cube()->log_dims() != router_.shard_log_dims()) {
      return Status::Internal(
          "recovered shard does not match the shard set's sub-domain");
    }
    // Converge the applied watermark before re-admission: every
    // acknowledged delta the crash left in the log must be applied (and
    // verified applied) so the re-admitted shard answers exactly.
    SS_RETURN_IF_ERROR(reopened->DrainAll());
    const ServingStats drained = reopened->stats();
    if (drained.applied_seq != drained.last_seq) {
      return Status::Internal(
          "recovered shard watermark did not converge (applied " +
          std::to_string(drained.applied_seq) + " of " +
          std::to_string(drained.last_seq) + ")");
    }
    double ceiling = std::numeric_limits<double>::infinity();
    if (options_.track_energy) {
      SS_RETURN_IF_ERROR(reopened->cube()->store()->EnableEnergyTracking());
      ceiling = reopened->cube()->store()->TotalEnergyCeiling();
    }
    // Replay writes parked while the shard was down, then re-admit in the
    // same critical section that observes the queue empty — a write
    // parking concurrently either lands in the queue before the swap (and
    // is replayed here) or finds a serving slot.
    std::shared_ptr<ServingCube> fresh(std::move(reopened));
    double replayed_abs = 0.0;
    for (;;) {
      std::deque<ParkedWrite> batch;
      {
        std::lock_guard<std::mutex> lock(slot.mu);
        if (slot.parked.empty()) {
          slot.cube = fresh;
          slot.health = ShardHealth::kHealthy;
          slot.cause = Status::OK();
          slot.since_us = SteadyNowUs();
          slot.attempts = 0;
          slot.next_attempt_us = 0;
          ++slot.recoveries;
          slot.energy_ceiling = ceiling;
          // Replayed parked deltas are buffered but not yet drained on
          // the fresh cube; their mass stays charged until the next
          // refresh.
          slot.pending_abs = replayed_abs;
          return Status::OK();
        }
        batch.swap(slot.parked);
      }
      uint64_t last_seq = 0;
      for (size_t i = 0; i < batch.size(); ++i) {
        const Status added = fresh->AddBuffered(batch[i].local,
                                                batch[i].delta, nullptr,
                                                &last_seq);
        if (!added.ok()) {
          // Put the unapplied tail back in order; the next attempt (or a
          // FAILED transition) owns it again.
          std::lock_guard<std::mutex> lock(slot.mu);
          slot.parked.insert(slot.parked.begin(), batch.begin() + i,
                             batch.end());
          return added;
        }
        replayed_abs += std::abs(batch[i].delta);
      }
      SS_RETURN_IF_ERROR(fresh->SyncAcks(last_seq));
    }
  }();
  if (attempt.ok()) return attempt;

  std::lock_guard<std::mutex> lock(slot.mu);
  // Keep the incident's first error as the cause; the attempt error fills
  // in only if the incident somehow had none.
  if (slot.cause.ok()) slot.cause = attempt;
  slot.since_us = SteadyNowUs();
  if (slot.attempts >= options_.max_recovery_attempts) {
    slot.health = ShardHealth::kFailed;
    slot.parked_dropped += slot.parked.size();
    slot.parked.clear();
    slot.pending_abs = 0.0;
    slot.energy_ceiling = std::numeric_limits<double>::infinity();
  } else {
    slot.health = ShardHealth::kQuarantined;
    slot.next_attempt_us =
        slot.since_us + BackoffDelayUs(options_.recovery_backoff,
                                       slot.attempts - 1, jitter_state);
  }
  return attempt;
}

Status ShardedCube::RecoverShardNow(uint32_t shard) {
  if (shard >= slots_.size()) {
    return Status::InvalidArgument("no such shard");
  }
  Slot& slot = *slots_[shard];
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.health == ShardHealth::kFailed) {
      return UnavailableLocked(shard, slot);
    }
    if (slot.health == ShardHealth::kRecovering) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " recovery already in progress");
    }
    if (ShardHealthServes(slot.health)) {
      // Detect a silently-poisoned cube inline (no supervisor running):
      // the explicit recovery call is the supervisor of last resort.
      if (slot.cube != nullptr &&
          slot.cube->health() != ShardHealth::kQuarantined) {
        return Status::OK();  // genuinely serving: no-op
      }
      slot.health = ShardHealth::kQuarantined;
      slot.cause = slot.cube != nullptr
                       ? slot.cube->poison_status()
                       : Status::Unavailable("shard torn down");
      slot.since_us = SteadyNowUs();
      slot.attempts = 0;
      ++slot.quarantines;
    }
  }
  uint64_t jitter_state =
      options_.supervisor_jitter_seed ^
      (uint64_t{0x9e3779b97f4a7c15ull} * (uint64_t{shard} + 1));
  return TryRecoverShard(shard, &jitter_state);
}

Status ShardedCube::DrainAll() {
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    Status why;
    const std::shared_ptr<ServingCube> cube = AcquireServing(s, &why);
    if (cube == nullptr) return why;
    SS_RETURN_IF_ERROR(cube->DrainAll());
  }
  return Status::OK();
}

Result<ScrubReport> ShardedCube::ScrubAll() {
  ScrubReport total;
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    Status why;
    const std::shared_ptr<ServingCube> cube = AcquireServing(s, &why);
    if (cube == nullptr) return why;
    SS_ASSIGN_OR_RETURN(const ScrubReport report, cube->RepairNow());
    total.repaired.insert(total.repaired.end(), report.repaired.begin(),
                          report.repaired.end());
    total.unrepairable.insert(total.unrepairable.end(),
                              report.unrepairable.begin(),
                              report.unrepairable.end());
  }
  return total;
}

Status ShardedCube::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (supervisor_ != nullptr) supervisor_->Stop();
  Status first;
  for (auto& slot : slots_) {
    std::shared_ptr<ServingCube> cube;
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      cube = slot->cube;
    }
    if (cube == nullptr) continue;
    const Status status = cube->Close();
    if (first.ok() && !status.ok()) first = status;
  }
  return first;
}

void ShardedCube::StartWorkers() {
  for (auto& slot : slots_) {
    std::shared_ptr<ServingCube> cube;
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      cube = slot->cube;
    }
    if (cube != nullptr) cube->StartWorkers();
  }
  if (supervisor_ != nullptr) supervisor_->Start();
}

void ShardedCube::StopWorkers() {
  // Supervisor first: a recovery in flight finishes, then nothing swaps
  // cubes underneath the per-shard stops.
  if (supervisor_ != nullptr) supervisor_->Stop();
  for (auto& slot : slots_) {
    std::shared_ptr<ServingCube> cube;
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      cube = slot->cube;
    }
    if (cube != nullptr) cube->StopWorkers();
  }
}

ServingStats ShardedCube::stats() const {
  ServingStats out;
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    const ServingStats stats = shard_stats(s);
    out.acked_deltas += stats.acked_deltas;
    out.coalesced_deltas += stats.coalesced_deltas;
    out.pending_deltas += stats.pending_deltas;
    out.pending_slots += stats.pending_slots;
    out.rejected_unavailable += stats.rejected_unavailable;
    out.stall_waits += stats.stall_waits;
    out.stall_us += stats.stall_us;
    out.apply_batches += stats.apply_batches;
    out.applied_deltas += stats.applied_deltas;
    out.replayed_deltas += stats.replayed_deltas;
    out.overlay_probes += stats.overlay_probes;
    out.overlay_hits += stats.overlay_hits;
    out.latch_wait_us_total += stats.latch_wait_us_total;
    out.latch_hold_us_total += stats.latch_hold_us_total;
    out.latch_hold_us_max =
        std::max(out.latch_hold_us_max, stats.latch_hold_us_max);
    out.latch_exclusive_holds += stats.latch_exclusive_holds;
    out.log_appends += stats.log_appends;
    out.log_syncs += stats.log_syncs;
    out.log_sync_failures += stats.log_sync_failures;
    out.log_torn_records += stats.log_torn_records;
    out.last_seq += stats.last_seq;
    out.durable_seq += stats.durable_seq;
    out.applied_seq += stats.applied_seq;
    out.quarantines += stats.quarantines;
    out.recovery_attempts += stats.recovery_attempts;
    out.recoveries += stats.recoveries;
    out.parked_writes += stats.parked_writes;
    out.parked_dropped += stats.parked_dropped;
    out.scrub_passes += stats.scrub_passes;
    out.scrubbed_blocks += stats.scrubbed_blocks;
    out.scrub_repairs += stats.scrub_repairs;
    out.parity_repairs += stats.parity_repairs;
    out.parity_unrepairable += stats.parity_unrepairable;
    // Worst shard health wins; the poison fields describe the first
    // unhealthy shard (deterministic: lowest shard index).
    if (stats.health > out.health) out.health = stats.health;
    if (stats.poison_code != StatusCode::kOk &&
        out.poison_code == StatusCode::kOk) {
      out.poison_code = stats.poison_code;
      out.poison_message = stats.poison_message;
      out.poisoned_at_us = stats.poisoned_at_us;
      out.health_since_us = stats.health_since_us;
    }
  }
  return out;
}

ServingStats ShardedCube::shard_stats(uint32_t shard) const {
  const Slot& slot = *slots_[shard];
  std::shared_ptr<ServingCube> cube;
  ServingStats out;
  {
    std::lock_guard<std::mutex> lock(slot.mu);
    cube = slot.cube;
    out.health = slot.health;
    out.health_since_us = slot.since_us;
    out.quarantines = slot.quarantines;
    out.recovery_attempts = slot.recovery_attempts_total;
    out.recoveries = slot.recoveries;
    out.parked_writes = slot.parked_total;
    out.parked_dropped = slot.parked_dropped;
    out.pending_deltas = slot.parked.size();
    if (!slot.cause.ok()) {
      out.poison_code = slot.cause.code();
      out.poison_message = slot.cause.message();
      out.poisoned_at_us = slot.since_us;
    }
  }
  if (cube != nullptr) {
    ServingStats live = cube->stats();
    // The slot is the authority on health (it knows RECOVERING/FAILED and
    // the incident cause); everything else comes from the cube.
    live.health = out.health;
    live.health_since_us = out.health_since_us;
    live.quarantines = out.quarantines;
    live.recovery_attempts = out.recovery_attempts;
    live.recoveries = out.recoveries;
    live.parked_writes = out.parked_writes;
    live.parked_dropped = out.parked_dropped;
    live.pending_deltas += out.pending_deltas;
    if (out.poison_code != StatusCode::kOk) {
      live.poison_code = out.poison_code;
      live.poison_message = out.poison_message;
      live.poisoned_at_us = out.poisoned_at_us;
    }
    return live;
  }
  return out;
}

ShardedCube::ShardHealthInfo ShardedCube::shard_health(
    uint32_t shard) const {
  const Slot& slot = *slots_[shard];
  std::lock_guard<std::mutex> lock(slot.mu);
  ShardHealthInfo info;
  info.health = slot.health;
  info.cause = slot.cause;
  info.since_us = slot.since_us;
  info.attempts = slot.attempts;
  info.quarantines = slot.quarantines;
  info.recoveries = slot.recoveries;
  info.parked = slot.parked.size();
  return info;
}

std::vector<uint64_t> ShardedCube::SnapshotSeqs() const {
  std::vector<uint64_t> seqs;
  seqs.reserve(slots_.size());
  for (const auto& slot : slots_) {
    std::shared_ptr<ServingCube> cube;
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      cube = slot->cube;
    }
    seqs.push_back(cube != nullptr ? cube->stats().last_seq : 0);
  }
  return seqs;
}

uint64_t ShardedCube::pending_deltas() const {
  uint64_t pending = 0;
  for (const auto& slot : slots_) {
    std::shared_ptr<ServingCube> cube;
    uint64_t parked;
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      cube = slot->cube;
      parked = slot->parked.size();
    }
    pending += parked + (cube != nullptr ? cube->pending_deltas() : 0);
  }
  return pending;
}

Status ShardedCube::CrashForTest() {
  if (supervisor_ != nullptr) supervisor_->Stop();
  Status first;
  for (auto& slot : slots_) {
    std::shared_ptr<ServingCube> cube;
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      cube = slot->cube;
    }
    if (cube == nullptr) continue;
    const Status status = cube->CrashForTest();
    if (first.ok() && !status.ok()) first = status;
  }
  closed_ = true;
  return first;
}

}  // namespace shiftsplit
