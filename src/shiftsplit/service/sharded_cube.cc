#include "shiftsplit/service/sharded_cube.h"

#include <algorithm>
#include <filesystem>

namespace shiftsplit {

namespace {

constexpr const char* kShardSetManifest = "shardset.manifest";

std::string ShardSetPath(const std::string& dir) {
  return (std::filesystem::path(dir) / kShardSetManifest).string();
}

std::string ShardPath(const std::string& dir, const std::string& shard_dir) {
  return (std::filesystem::path(dir) / shard_dir).string();
}

}  // namespace

bool ShardedCube::IsShardedDir(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::exists(ShardSetPath(dir), ec);
}

Result<std::unique_ptr<ShardedCube>> ShardedCube::CreateOnDisk(
    const std::string& dir, std::vector<uint32_t> log_dims,
    uint32_t num_shards, const WaveletCube::Options& cube_options,
    const Options& options) {
  if (cube_options.form != StoreForm::kStandard) {
    return Status::Unimplemented(
        "ShardedCube currently supports standard-form cubes");
  }
  SS_ASSIGN_OR_RETURN(ShardRouter router,
                      ShardRouter::Make(log_dims, num_shards));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create sharded store directory " + dir);
  }

  ShardSetManifest manifest;
  manifest.num_shards = num_shards;
  manifest.split_dim = router.split_dim();
  manifest.log_dims = std::move(log_dims);
  for (uint32_t s = 0; s < num_shards; ++s) {
    manifest.shard_dirs.push_back(ShardSetManifest::ShardDirName(s));
  }
  // Shard stores first, manifest last: a crash mid-create leaves either no
  // shard set at all (no shardset.manifest) or a complete one.
  for (uint32_t s = 0; s < num_shards; ++s) {
    SS_ASSIGN_OR_RETURN(
        std::unique_ptr<WaveletCube> cube,
        WaveletCube::CreateOnDisk(ShardPath(dir, manifest.shard_dirs[s]),
                                  router.shard_log_dims(), cube_options));
    SS_RETURN_IF_ERROR(cube->Close());
  }
  SS_RETURN_IF_ERROR(manifest.Save(ShardSetPath(dir)));
  return OpenOnDisk(dir, options);
}

Result<std::unique_ptr<ShardedCube>> ShardedCube::OpenOnDisk(
    const std::string& dir, const Options& options) {
  SS_ASSIGN_OR_RETURN(ShardSetManifest manifest,
                      ShardSetManifest::Load(ShardSetPath(dir)));
  SS_ASSIGN_OR_RETURN(
      ShardRouter router,
      ShardRouter::Make(manifest.log_dims, manifest.split_dim,
                        manifest.num_shards));
  std::unique_ptr<ShardedCube> sharded(new ShardedCube());
  sharded->router_ = std::move(router);
  sharded->shards_.reserve(manifest.num_shards);
  for (uint32_t s = 0; s < manifest.num_shards; ++s) {
    SS_ASSIGN_OR_RETURN(
        std::unique_ptr<ServingCube> shard,
        ServingCube::OpenOnDisk(ShardPath(dir, manifest.shard_dirs[s]),
                                options.pool_blocks_per_shard,
                                options.serving));
    if (shard->cube()->log_dims() != sharded->router_.shard_log_dims()) {
      return Status::Internal(
          "shard " + manifest.shard_dirs[s] +
          " does not match the shard set's per-shard sub-domain");
    }
    sharded->shards_.push_back(std::move(shard));
  }
  return sharded;
}

ShardedCube::~ShardedCube() { StopWorkers(); }

Status ShardedCube::Add(std::span<const uint64_t> coords, double delta,
                        OperationContext* ctx) {
  SS_ASSIGN_OR_RETURN(const uint32_t shard, router_.RoutePoint(coords));
  return shards_[shard]->Add(router_.ToLocal(coords, shard), delta, ctx);
}

Status ShardedCube::Update(const Tensor& deltas,
                           std::span<const uint64_t> origin,
                           OperationContext* ctx) {
  const TensorShape& shape = deltas.shape();
  if (origin.size() != shape.ndim() ||
      shape.ndim() != router_.log_dims().size()) {
    return Status::InvalidArgument("origin/deltas dimensionality mismatch");
  }
  std::vector<uint64_t> hi(origin.begin(), origin.end());
  for (uint32_t d = 0; d < shape.ndim(); ++d) hi[d] += shape.dim(d) - 1;
  // Validates the box against the global domain; the clipped sub-boxes need
  // not have power-of-two extents, so cells are buffered individually (in
  // global row-major order, which keeps each shard's relative order) with
  // one group ack per touched shard.
  SS_RETURN_IF_ERROR(router_.DecomposeRange(origin, hi).status());
  std::vector<uint64_t> last_seq(shards_.size(), 0);
  std::vector<bool> touched(shards_.size(), false);
  std::vector<uint64_t> coords(shape.ndim(), 0);
  std::vector<uint64_t> absolute(shape.ndim(), 0);
  do {
    for (uint32_t d = 0; d < shape.ndim(); ++d) {
      absolute[d] = origin[d] + coords[d];
    }
    const uint32_t shard = router_.ShardOf(absolute);
    SS_RETURN_IF_ERROR(shards_[shard]->AddBuffered(
        router_.ToLocal(absolute, shard), deltas.At(coords), ctx,
        &last_seq[shard]));
    touched[shard] = true;
  } while (shape.Next(coords));
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (touched[s]) SS_RETURN_IF_ERROR(shards_[s]->SyncAcks(last_seq[s]));
  }
  return Status::OK();
}

Result<double> ShardedCube::PointQuery(std::span<const uint64_t> point,
                                       bool use_scaling_slots,
                                       OperationContext* ctx) {
  SS_ASSIGN_OR_RETURN(const uint32_t shard, router_.RoutePoint(point));
  return shards_[shard]->PointQuery(router_.ToLocal(point, shard),
                                    use_scaling_slots, ctx);
}

Result<double> ShardedCube::RangeSum(std::span<const uint64_t> lo,
                                     std::span<const uint64_t> hi,
                                     OperationContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<ShardRange> parts,
                      router_.DecomposeRange(lo, hi));
  double sum = 0.0;
  for (const ShardRange& part : parts) {
    SS_ASSIGN_OR_RETURN(
        const double shard_sum,
        shards_[part.shard]->RangeSum(part.lo, part.hi, ctx));
    sum += shard_sum;
  }
  return sum;
}

Status ShardedCube::DrainAll() {
  for (auto& shard : shards_) {
    SS_RETURN_IF_ERROR(shard->DrainAll());
  }
  return Status::OK();
}

Status ShardedCube::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  Status first;
  for (auto& shard : shards_) {
    const Status status = shard->Close();
    if (first.ok() && !status.ok()) first = status;
  }
  return first;
}

void ShardedCube::StartWorkers() {
  for (auto& shard : shards_) shard->StartWorkers();
}

void ShardedCube::StopWorkers() {
  for (auto& shard : shards_) shard->StopWorkers();
}

ServingStats ShardedCube::stats() const {
  ServingStats out;
  for (const auto& shard : shards_) {
    const ServingStats s = shard->stats();
    out.acked_deltas += s.acked_deltas;
    out.coalesced_deltas += s.coalesced_deltas;
    out.pending_deltas += s.pending_deltas;
    out.pending_slots += s.pending_slots;
    out.rejected_unavailable += s.rejected_unavailable;
    out.stall_waits += s.stall_waits;
    out.stall_us += s.stall_us;
    out.apply_batches += s.apply_batches;
    out.applied_deltas += s.applied_deltas;
    out.replayed_deltas += s.replayed_deltas;
    out.overlay_probes += s.overlay_probes;
    out.overlay_hits += s.overlay_hits;
    out.latch_wait_us_total += s.latch_wait_us_total;
    out.latch_hold_us_total += s.latch_hold_us_total;
    out.latch_hold_us_max =
        std::max(out.latch_hold_us_max, s.latch_hold_us_max);
    out.latch_exclusive_holds += s.latch_exclusive_holds;
    out.log_appends += s.log_appends;
    out.log_syncs += s.log_syncs;
    out.log_torn_records += s.log_torn_records;
    out.last_seq += s.last_seq;
    out.durable_seq += s.durable_seq;
    out.applied_seq += s.applied_seq;
  }
  return out;
}

ServingStats ShardedCube::shard_stats(uint32_t shard) const {
  return shards_[shard]->stats();
}

std::vector<uint64_t> ShardedCube::SnapshotSeqs() const {
  std::vector<uint64_t> seqs;
  seqs.reserve(shards_.size());
  for (const auto& shard : shards_) seqs.push_back(shard->stats().last_seq);
  return seqs;
}

uint64_t ShardedCube::pending_deltas() const {
  uint64_t pending = 0;
  for (const auto& shard : shards_) pending += shard->pending_deltas();
  return pending;
}

Status ShardedCube::CrashForTest() {
  Status first;
  for (auto& shard : shards_) {
    const Status status = shard->CrashForTest();
    if (first.ok() && !status.ok()) first = status;
  }
  closed_ = true;
  return first;
}

}  // namespace shiftsplit
