#include "shiftsplit/service/scrubber.h"

namespace shiftsplit {

Scrubber::Scrubber(ServingCube* cube, const Options& options)
    : cube_(cube), options_(options) {
  if (options_.start) Start();
}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Scrubber::Stop() {
  std::thread joined;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    joined = std::move(thread_);
  }
  cv_.notify_all();
  joined.join();
}

void Scrubber::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Scrubber::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

bool Scrubber::paused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paused_;
}

Scrubber::Stats Scrubber::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Scrubber::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // One interval between ticks; a pause parks here indefinitely.
      cv_.wait_for(lock, options_.interval, [this] { return stop_; });
      while (paused_ && !stop_) cv_.wait(lock);
      if (stop_) return;
    }
    const ServingCube::ScrubTickResult tick =
        cube_->ScrubTick(options_.batch_blocks);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.scanned += tick.scanned;
    stats_.repaired += tick.repaired;
    stats_.unrepairable += tick.unrepairable;
    if (tick.wrapped) ++stats_.passes;
  }
}

}  // namespace shiftsplit
