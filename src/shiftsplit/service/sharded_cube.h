// Sharded serving: 2^k fully independent ServingCubes, one per dyadic
// sub-domain of the global domain, behind a composing query router — with
// supervised shard health and in-process self-healing (DESIGN.md §9, §11).
//
// The global domain is split along one dimension (the widest) into equal
// dyadic slabs; each shard owns the self-contained wavelet transform of its
// slab with its own store directory, delta log, redo journal, buffer pool
// and maintenance workers. Nothing is shared between shards, so writers on
// different shards never contend on a latch and one shard's maintenance
// drain stalls only its own readers — the aggregate update throughput
// scales with the shard count and the read tail during maintenance drops.
//
//   auto cube = *ShardedCube::CreateOnDisk("/data/sharded", {6, 5}, 4,
//                                          cube_options, options);
//   cube->Add({37, 11}, +2.0);              // routed to shard 37 >> 4 = 2
//   double s = *cube->RangeSum({0, 0}, {63, 31});   // fans over all shards
//
// Exactness (DESIGN.md §9): SHIFT-SPLIT's lifting argument shows a dyadic
// sub-domain's transform embeds losslessly in the enclosing domain's, so
// the per-shard transforms together carry exactly the global transform's
// information. A range box clipped to a slab lies entirely inside that
// shard's sub-domain and is answered exactly from its own coefficients;
// the global answer is the plain sum of the per-shard answers. Point
// queries touch exactly one shard. Each shard keeps the monolithic
// ServingCube's merged-read contract, so sharded answers equal monolithic
// answers (bit-identically so whenever the additions commute exactly, e.g.
// dyadic-rational data — see tests/service/sharded_cube_test.cc).
//
// Self-healing (DESIGN.md §11): each shard slot carries a health state
// (serving_stats.h, ShardHealth). A ShardSupervisor background thread
// watches for poisoned or read-only shards, QUARANTINEs them, tears them
// down without flushing (the poisoned state is exactly what a crash would
// leave), re-opens the shard directory through the normal recovery path —
// redo-journal replay plus deltas.log replay past the applied watermark —
// verifies the watermark converges, and re-admits the shard, under a
// capped jittered exponential backoff (util/operation_context.h,
// RetryPolicy). While a shard heals, approx-tolerant queries
// (QueryOptions::max_error > 0) skip it and return a DegradedResult whose
// error bound comes from the shard's tracked coefficient energy; exact
// queries fail fast with kUnavailable naming the shard's health, and
// writes park in a small bounded queue drained on re-admit — the healthy
// shards never stall.
//
// Parity in-place repair (DESIGN.md §12): on a parity-protected shard
// store (manifest v3) a checksum-mismatch poison takes a cheaper path
// first. The slot only DEGRADEs while the supervisor repairs the cube in
// place (ServingCube::RepairNow — scrub, rebuild corrupt blocks from
// group parity, resume the interrupted drain); buffered deltas survive,
// no quarantine is counted, and the slot returns to HEALTHY in one poll.
// Only an unrepairable double fault (two corrupt blocks in one parity
// group) falls through to the quarantine + full-rebuild path above.

#ifndef SHIFTSPLIT_SERVICE_SHARDED_CUBE_H_
#define SHIFTSPLIT_SERVICE_SHARDED_CUBE_H_

#include <chrono>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "shiftsplit/core/query.h"
#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/service/serving_stats.h"
#include "shiftsplit/service/shard_router.h"
#include "shiftsplit/storage/manifest.h"
#include "shiftsplit/util/operation_context.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {

class ShardSupervisor;

/// \brief A set of independent per-slab ServingCubes behind one composing
/// router. Thread-safe like ServingCube: writers, readers, per-shard
/// maintenance and the shard supervisor run concurrently.
class ShardedCube {
 public:
  struct Options {
    /// Applied to every shard (each shard gets its own workers/limits).
    ServingCube::Options serving;
    /// Buffer-pool budget per shard store.
    uint64_t pool_blocks_per_shard = 256;

    /// Run a ShardSupervisor that quarantines and recovers failed shards.
    /// The supervisor thread starts and stops with the maintenance workers
    /// (serving.start_workers / StartWorkers / StopWorkers); with it
    /// stopped, a poisoned shard stays down until recovered explicitly
    /// (RecoverShardNow) or the process reopens the store.
    bool supervise = true;
    /// Supervisor poll interval: how often shard health is inspected and
    /// due recoveries are run.
    std::chrono::milliseconds supervisor_poll{10};
    /// Backoff between recovery attempts of one incident: attempt k waits
    /// BackoffDelayUs(recovery_backoff, k) after the k-th failure —
    /// capped, jittered exponential so a flapping disk is not hammered.
    RetryPolicy recovery_backoff{/*max_retries=*/4,
                                 /*initial_backoff_us=*/10'000,
                                 /*max_backoff_us=*/2'000'000,
                                 /*jitter=*/0.5};
    /// Recovery attempts per incident before the shard goes terminal
    /// FAILED (operator action required; see DESIGN.md §11 playbook).
    uint32_t max_recovery_attempts = 5;
    /// Jitter stream seed for the backoff delays (deterministic tests).
    uint64_t supervisor_jitter_seed = 0x73686172642d6a69ull;

    /// Bounded parking: writes routed to a QUARANTINED/RECOVERING shard
    /// are queued in memory (per shard, at most this many cells) and
    /// drained into the shard on re-admit — only while the supervisor is
    /// running (otherwise nobody would ever drain the queue, so writes
    /// fail kUnavailable instead). Parked writes are acknowledged
    /// non-durably: a process crash before re-admit loses them, and a
    /// shard that lands in FAILED drops them (counted in parked_dropped).
    uint64_t max_parked_writes = 256;

    /// Track per-block coefficient energy on every shard store
    /// (TiledStore::EnableEnergyTracking; one extra full scan per shard
    /// open). Powers the finite error bounds of degraded cross-shard
    /// queries; with false the bounds are +infinity.
    bool track_energy = true;
  };

  /// \brief Health of one shard slot as the supervisor sees it.
  struct ShardHealthInfo {
    ShardHealth health = ShardHealth::kHealthy;
    Status cause;             ///< first error of the current/last incident
    uint64_t since_us = 0;    ///< steady-clock us of the last transition
    uint32_t attempts = 0;    ///< recovery attempts of the open incident
    uint64_t quarantines = 0; ///< incidents so far
    uint64_t recoveries = 0;  ///< successful re-admissions
    uint64_t parked = 0;      ///< writes currently parked
  };

  /// \brief Creates a sharded store under `dir`: a shardset.manifest plus
  /// one self-describing store directory per shard (shard-0000, ...), then
  /// opens it for serving. `num_shards` must be a power of two with at
  /// least one level left on the split dimension (the widest one; ties to
  /// the lowest index). The cube options must describe a standard-form
  /// store.
  static Result<std::unique_ptr<ShardedCube>> CreateOnDisk(
      const std::string& dir, std::vector<uint32_t> log_dims,
      uint32_t num_shards, const WaveletCube::Options& cube_options,
      const Options& options);

  /// \brief Reopens a sharded store: loads shardset.manifest, runs each
  /// shard's own crash recovery + delta-log replay, and validates every
  /// shard's store.manifest against the expected per-shard sub-domain.
  static Result<std::unique_ptr<ShardedCube>> OpenOnDisk(
      const std::string& dir, const Options& options);
  static Result<std::unique_ptr<ShardedCube>> OpenOnDisk(
      const std::string& dir);

  /// \brief True when `dir` holds a sharded store (shardset.manifest).
  static bool IsShardedDir(const std::string& dir);

  ~ShardedCube();
  ShardedCube(const ShardedCube&) = delete;
  ShardedCube& operator=(const ShardedCube&) = delete;

  /// \brief Buffers one cell delta on its owning shard (global
  /// coordinates; same ack contract as ServingCube::Add). When the owning
  /// shard is QUARANTINED/RECOVERING: parked if the supervisor runs and
  /// the queue has room, except that an armed deadline (ctx) fails fast
  /// kUnavailable instead; FAILED shards always fail fast.
  Status Add(std::span<const uint64_t> coords, double delta,
             OperationContext* ctx = nullptr);

  /// \brief Buffers a dense box of deltas anchored at `origin` (global),
  /// decomposed into per-shard sub-boxes; within each shard the cells keep
  /// their row-major order. Cells owned by an unhealthy shard follow the
  /// Add parking contract.
  Status Update(const Tensor& deltas, std::span<const uint64_t> origin,
                OperationContext* ctx = nullptr);

  /// \brief Point query, routed to the single owning shard; pending deltas
  /// merged in per the ServingCube contract. Fails fast kUnavailable (the
  /// shard's health attached) when the owning shard is not serving.
  Result<double> PointQuery(std::span<const uint64_t> point,
                            bool use_scaling_slots = true,
                            OperationContext* ctx = nullptr);

  /// \brief Range sum over the global inclusive box [lo, hi]: the box is
  /// clipped per shard, each part is answered exactly shard-locally, and
  /// the parts are summed in ascending shard order (deterministic
  /// association). Fails fast kUnavailable when any touched shard is not
  /// serving — use the QueryOptions overload to degrade instead.
  Result<double> RangeSum(std::span<const uint64_t> lo,
                          std::span<const uint64_t> hi,
                          OperationContext* ctx = nullptr);

  /// \brief Degradable range sum. With options.max_error > 0, parts owned
  /// by QUARANTINED/RECOVERING/FAILED shards are skipped: the result lists
  /// them in shards_missing and accumulates an error bound per skipped
  /// part — sqrt(Π_d RangeWeightNormSquared) × the shard's last tracked
  /// energy ceiling plus the absolute mass of its unapplied deltas
  /// (Cauchy–Schwarz over the Lemma-2 term set; see core/query.h). Fails
  /// kUnavailable when the accumulated bound exceeds max_error. With
  /// max_error == 0 this is the exact path: any unhealthy shard fails the
  /// query fast with its health attached.
  Result<DegradedResult> RangeSum(std::span<const uint64_t> lo,
                                  std::span<const uint64_t> hi,
                                  const QueryOptions& options);

  /// \brief Degradable point query; same contract as the degradable
  /// RangeSum with the point's reconstruction weights as the bound.
  Result<DegradedResult> PointQuery(std::span<const uint64_t> point,
                                    const QueryOptions& options);

  /// \brief Synchronously drains every shard; fails (kUnavailable, health
  /// attached) when a shard is not serving.
  Status DrainAll();

  /// \brief Orderly shutdown of every shard (and the supervisor); returns
  /// the first failure but closes all. Idempotent.
  Status Close();

  void StartWorkers();
  void StopWorkers();

  /// \brief Runs one full recovery cycle on `shard` synchronously,
  /// ignoring the backoff schedule: teardown (drop dirty pages), reopen
  /// through journal + delta-log replay, drain, verify the applied
  /// watermark, replay parked writes, re-admit. No-op for a serving shard;
  /// fails for a FAILED (terminal) one. Consumes a recovery attempt on
  /// failure exactly like a supervised attempt, including the transition
  /// to FAILED after max_recovery_attempts.
  Status RecoverShardNow(uint32_t shard);

  /// \brief Full repair scrub fanned out over every shard
  /// (ServingCube::RepairNow): verifies every block on every shard device
  /// and rebuilds corrupt ones from group parity in place. Returns the
  /// concatenated report in ascending shard order — block ids are
  /// shard-local, so the report is a tally, not a global address list.
  /// Fails fast (kUnavailable, health attached) when a shard is not
  /// serving.
  Result<ScrubReport> ScrubAll();

  /// \brief Aggregate counters: sums across shards, except
  /// latch_hold_us_max which is the per-shard maximum and `health` which
  /// is the worst shard health (the poison fields describe the first
  /// unhealthy shard). The sequence watermarks are totals (per-shard
  /// sequences are independent), so applied == last still means fully
  /// drained.
  ServingStats stats() const;
  /// \brief One shard's own counters, with the slot's health overlaid.
  ServingStats shard_stats(uint32_t shard) const;
  /// \brief One shard's health record.
  ShardHealthInfo shard_health(uint32_t shard) const;

  /// \brief Cross-shard snapshot: each shard's newest accepted sequence
  /// number. A vector of per-shard seqs is the sharded analogue of the
  /// monolithic snapshot sequence. A torn-down shard reports 0.
  std::vector<uint64_t> SnapshotSeqs() const;

  uint64_t pending_deltas() const;
  uint32_t num_shards() const { return router_.num_shards(); }
  const ShardRouter& router() const { return router_; }
  /// Test-only handle to one shard's cube; null mid-recovery teardown. The
  /// shared_ptr keeps the cube alive even if the supervisor swaps it out
  /// concurrently (chaos tests crash shards under a live supervisor).
  std::shared_ptr<ServingCube> shard_for_test(uint32_t shard) {
    std::lock_guard<std::mutex> lock(slots_[shard]->mu);
    return slots_[shard]->cube;
  }

  /// \brief Simulates kill -9 on every shard (see
  /// ServingCube::CrashForTest); reopen with OpenOnDisk to recover. Use
  /// shard_for_test(i)->CrashForTest() to crash one shard only.
  Status CrashForTest();

 private:
  friend class ShardSupervisor;

  struct ParkedWrite {
    std::vector<uint64_t> local;  ///< shard-local coordinates
    double delta = 0.0;
  };

  /// One shard slot: the cube plus the supervisor's view of it. `mu`
  /// guards every field; queries copy the shared_ptr out and release the
  /// lock before touching the cube, so the supervisor can swap a rebuilt
  /// cube in without stalling the healthy path.
  struct Slot {
    mutable std::mutex mu;
    std::shared_ptr<ServingCube> cube;  ///< null mid-recovery teardown
    ShardHealth health = ShardHealth::kHealthy;
    Status cause;              ///< first error of the open incident
    uint64_t since_us = 0;     ///< last transition, steady-clock us
    uint32_t attempts = 0;     ///< recovery attempts this incident
    uint64_t next_attempt_us = 0;  ///< backoff gate for the supervisor
    uint64_t quarantines = 0;
    uint64_t recoveries = 0;
    uint64_t recovery_attempts_total = 0;
    std::deque<ParkedWrite> parked;
    uint64_t parked_total = 0;
    uint64_t parked_dropped = 0;
    /// Degraded-bound bookkeeping: sqrt of the store's tracked energy at
    /// the last fully-drained refresh, plus Σ|δ| of every delta accepted
    /// since — together an upper bound on the answer mass this shard can
    /// hold (refreshed by the supervisor; conservative under races).
    double energy_ceiling = std::numeric_limits<double>::infinity();
    double pending_abs = 0.0;
  };

  ShardedCube() = default;

  /// The slot's cube when it serves (HEALTHY/DEGRADED); otherwise null,
  /// with `why` set to a fast kUnavailable naming the health and cause.
  std::shared_ptr<ServingCube> AcquireServing(uint32_t shard,
                                              Status* why) const;
  /// Records that `cube` (still in `shard`'s slot) poisoned itself:
  /// transitions the slot to QUARANTINED with the poison status as cause.
  void NoteQuarantined(uint32_t shard,
                       const std::shared_ptr<ServingCube>& cube);
  /// Cheaper alternative to NoteQuarantined for parity-repairable poison
  /// (checksum mismatch on a parity-protected store, supervisor running):
  /// transitions the slot to DEGRADED with the poison as cause so the
  /// supervisor repairs the cube in place on its next poll. Returns false
  /// — caller should quarantine instead — when the poison is of another
  /// kind, the store has no parity, or nobody would ever run the repair.
  bool MarkRepairing(uint32_t shard,
                     const std::shared_ptr<ServingCube>& cube);
  /// Supervisor-side in-place repair of a poisoned cube: DEGRADE the slot,
  /// run ServingCube::RepairNow, re-admit on a clean report. Returns true
  /// when the slot needs no further action (healed, or it already moved
  /// past this cube); false tells the caller to escalate to quarantine.
  bool TryRepairShardInPlace(uint32_t shard,
                             const std::shared_ptr<ServingCube>& cube);
  /// Decorated fast-fail status for a non-serving slot (caller holds mu).
  Status UnavailableLocked(uint32_t shard, const Slot& slot) const;
  /// The add/parking path shared by Add and Update. `cube_out` (optional)
  /// receives the exact cube instance the delta was buffered on, so a
  /// group ack (SyncAcks) targets the instance that issued the sequence
  /// numbers even if a recovery swaps the slot meanwhile; unset for a
  /// parked write.
  Status AddToShard(uint32_t shard, std::span<const uint64_t> local,
                    double delta, OperationContext* ctx, bool durable_ack,
                    uint64_t* seq_out, bool* parked_out,
                    std::shared_ptr<ServingCube>* cube_out = nullptr);
  /// Error-bound contribution of skipping `shard`'s part [lo, hi]
  /// (global, inclusive): Cauchy–Schwarz weight norm × energy ceiling +
  /// unapplied-delta mass.
  double ShardSkipBound(uint32_t shard, std::span<const uint64_t> lo,
                        std::span<const uint64_t> hi) const;
  /// Supervisor pass over one shard: detect poisoning, refresh the energy
  /// ceiling while drained, and run a due recovery attempt.
  void SuperviseShard(uint32_t shard, uint64_t now_us,
                      uint64_t* jitter_state);
  /// One teardown→reopen→verify→re-admit cycle; assumes the slot is
  /// QUARANTINED. On failure schedules the next attempt (or FAILED).
  Status TryRecoverShard(uint32_t shard, uint64_t* jitter_state);
  bool SupervisorRunning() const;
  std::string ShardDirPath(uint32_t shard) const;

  ShardRouter router_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::unique_ptr<ShardSupervisor> supervisor_;
  Options options_;
  std::string dir_;
  std::vector<std::string> shard_dirs_;
  Normalization norm_ = Normalization::kAverage;
  uint64_t blocks_per_shard_ = 0;
  bool closed_ = false;
};

inline Result<std::unique_ptr<ShardedCube>> ShardedCube::OpenOnDisk(
    const std::string& dir) {
  return OpenOnDisk(dir, Options());
}

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_SERVICE_SHARDED_CUBE_H_
