// Sharded serving: 2^k fully independent ServingCubes, one per dyadic
// sub-domain of the global domain, behind a composing query router.
//
// The global domain is split along one dimension (the widest) into equal
// dyadic slabs; each shard owns the self-contained wavelet transform of its
// slab with its own store directory, delta log, redo journal, buffer pool
// and maintenance workers. Nothing is shared between shards, so writers on
// different shards never contend on a latch and one shard's maintenance
// drain stalls only its own readers — the aggregate update throughput
// scales with the shard count and the read tail during maintenance drops.
//
//   auto cube = *ShardedCube::CreateOnDisk("/data/sharded", {6, 5}, 4,
//                                          cube_options, options);
//   cube->Add({37, 11}, +2.0);              // routed to shard 37 >> 4 = 2
//   double s = *cube->RangeSum({0, 0}, {63, 31});   // fans over all shards
//
// Exactness (DESIGN.md §9): SHIFT-SPLIT's lifting argument shows a dyadic
// sub-domain's transform embeds losslessly in the enclosing domain's, so
// the per-shard transforms together carry exactly the global transform's
// information. A range box clipped to a slab lies entirely inside that
// shard's sub-domain and is answered exactly from its own coefficients;
// the global answer is the plain sum of the per-shard answers. Point
// queries touch exactly one shard. Each shard keeps the monolithic
// ServingCube's merged-read contract, so sharded answers equal monolithic
// answers (bit-identically so whenever the additions commute exactly, e.g.
// dyadic-rational data — see tests/service/sharded_cube_test.cc).

#ifndef SHIFTSPLIT_SERVICE_SHARDED_CUBE_H_
#define SHIFTSPLIT_SERVICE_SHARDED_CUBE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/service/serving_stats.h"
#include "shiftsplit/service/shard_router.h"
#include "shiftsplit/storage/manifest.h"
#include "shiftsplit/util/operation_context.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief A set of independent per-slab ServingCubes behind one composing
/// router. Thread-safe like ServingCube: writers, readers and per-shard
/// maintenance run concurrently.
class ShardedCube {
 public:
  struct Options {
    /// Applied to every shard (each shard gets its own workers/limits).
    ServingCube::Options serving;
    /// Buffer-pool budget per shard store.
    uint64_t pool_blocks_per_shard = 256;
  };

  /// \brief Creates a sharded store under `dir`: a shardset.manifest plus
  /// one self-describing store directory per shard (shard-0000, ...), then
  /// opens it for serving. `num_shards` must be a power of two with at
  /// least one level left on the split dimension (the widest one; ties to
  /// the lowest index). The cube options must describe a standard-form
  /// store.
  static Result<std::unique_ptr<ShardedCube>> CreateOnDisk(
      const std::string& dir, std::vector<uint32_t> log_dims,
      uint32_t num_shards, const WaveletCube::Options& cube_options,
      const Options& options);

  /// \brief Reopens a sharded store: loads shardset.manifest, runs each
  /// shard's own crash recovery + delta-log replay, and validates every
  /// shard's store.manifest against the expected per-shard sub-domain.
  static Result<std::unique_ptr<ShardedCube>> OpenOnDisk(
      const std::string& dir, const Options& options);
  static Result<std::unique_ptr<ShardedCube>> OpenOnDisk(
      const std::string& dir);

  /// \brief True when `dir` holds a sharded store (shardset.manifest).
  static bool IsShardedDir(const std::string& dir);

  ~ShardedCube();
  ShardedCube(const ShardedCube&) = delete;
  ShardedCube& operator=(const ShardedCube&) = delete;

  /// \brief Buffers one cell delta on its owning shard (global
  /// coordinates; same ack contract as ServingCube::Add).
  Status Add(std::span<const uint64_t> coords, double delta,
             OperationContext* ctx = nullptr);

  /// \brief Buffers a dense box of deltas anchored at `origin` (global),
  /// decomposed into per-shard sub-boxes; within each shard the cells keep
  /// their row-major order.
  Status Update(const Tensor& deltas, std::span<const uint64_t> origin,
                OperationContext* ctx = nullptr);

  /// \brief Point query, routed to the single owning shard; pending deltas
  /// merged in per the ServingCube contract.
  Result<double> PointQuery(std::span<const uint64_t> point,
                            bool use_scaling_slots = true,
                            OperationContext* ctx = nullptr);

  /// \brief Range sum over the global inclusive box [lo, hi]: the box is
  /// clipped per shard, each part is answered exactly shard-locally, and
  /// the parts are summed in ascending shard order (deterministic
  /// association).
  Result<double> RangeSum(std::span<const uint64_t> lo,
                          std::span<const uint64_t> hi,
                          OperationContext* ctx = nullptr);

  /// \brief Synchronously drains every shard.
  Status DrainAll();

  /// \brief Orderly shutdown of every shard; returns the first failure but
  /// closes all. Idempotent.
  Status Close();

  void StartWorkers();
  void StopWorkers();

  /// \brief Aggregate counters: sums across shards, except
  /// latch_hold_us_max which is the per-shard maximum. The sequence
  /// watermarks are totals (per-shard sequences are independent), so
  /// applied == last still means fully drained.
  ServingStats stats() const;
  /// \brief One shard's own counters.
  ServingStats shard_stats(uint32_t shard) const;

  /// \brief Cross-shard snapshot: each shard's newest accepted sequence
  /// number. A vector of per-shard seqs is the sharded analogue of the
  /// monolithic snapshot sequence.
  std::vector<uint64_t> SnapshotSeqs() const;

  uint64_t pending_deltas() const;
  uint32_t num_shards() const { return router_.num_shards(); }
  const ShardRouter& router() const { return router_; }
  ServingCube* shard_for_test(uint32_t shard) {
    return shards_[shard].get();
  }

  /// \brief Simulates kill -9 on every shard (see
  /// ServingCube::CrashForTest); reopen with OpenOnDisk to recover. Use
  /// shard_for_test(i)->CrashForTest() to crash one shard only.
  Status CrashForTest();

 private:
  ShardedCube() = default;

  ShardRouter router_;
  std::vector<std::unique_ptr<ServingCube>> shards_;
  bool closed_ = false;
};

inline Result<std::unique_ptr<ShardedCube>> ShardedCube::OpenOnDisk(
    const std::string& dir) {
  return OpenOnDisk(dir, Options());
}

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_SERVICE_SHARDED_CUBE_H_
