#include "shiftsplit/service/serving_cube.h"

#include <algorithm>
#include <bit>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/query.h"

namespace shiftsplit {

namespace {

constexpr const char* kDeltaLogFile = "deltas.log";

// Write-set plan of one cell delta: a 1x...x1 kUpdate chunk anchored at the
// cell. Pure CPU — touches only the layout.
Result<ChunkApplyPlan> PlanCell(const TileLayout& layout,
                                std::span<const uint32_t> log_dims,
                                Normalization norm,
                                std::span<const uint64_t> coords,
                                double value) {
  TensorShape shape(std::vector<uint64_t>(coords.size(), 1));
  Tensor cell(shape);
  cell[0] = value;
  ApplyOptions apply;
  apply.mode = ApplyMode::kUpdate;
  apply.maintain_scaling_slots = true;
  apply.batched = true;
  // For an extent-1 chunk the dyadic position index along each dimension is
  // the absolute coordinate itself.
  return PlanChunkStandard(cell, coords, log_dims, layout, norm, apply);
}

// Microseconds elapsed since `start`, saturating at zero.
uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  return us.count() > 0 ? static_cast<uint64_t>(us.count()) : 0;
}

// Steady-clock microseconds since the process-wide epoch — the timestamp
// unit of every health transition in ServingStats.
uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* ShardHealthToString(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "HEALTHY";
    case ShardHealth::kDegraded:
      return "DEGRADED";
    case ShardHealth::kQuarantined:
      return "QUARANTINED";
    case ShardHealth::kRecovering:
      return "RECOVERING";
    case ShardHealth::kFailed:
      return "FAILED";
  }
  return "UNKNOWN";
}

Result<std::unique_ptr<ServingCube>> ServingCube::Attach(
    std::unique_ptr<WaveletCube> cube, const Options& options) {
  return Make(std::move(cube), options, /*dir=*/"");
}

Result<std::unique_ptr<ServingCube>> ServingCube::AttachDurable(
    std::unique_ptr<WaveletCube> cube, const std::string& dir,
    const Options& options) {
  if (dir.empty()) {
    return Status::InvalidArgument("AttachDurable needs a directory");
  }
  return Make(std::move(cube), options, dir);
}

Result<std::unique_ptr<ServingCube>> ServingCube::OpenOnDisk(
    const std::string& dir, uint64_t pool_blocks, const Options& options) {
  SS_ASSIGN_OR_RETURN(std::unique_ptr<WaveletCube> cube,
                      WaveletCube::OpenOnDisk(dir, pool_blocks));
  return Make(std::move(cube), options, dir);
}

Result<std::unique_ptr<ServingCube>> ServingCube::Make(
    std::unique_ptr<WaveletCube> cube, const Options& options,
    const std::string& dir) {
  if (cube == nullptr) {
    return Status::InvalidArgument("serving requires a cube");
  }
  if (cube->manifest().form != StoreForm::kStandard) {
    return Status::Unimplemented(
        "ServingCube currently supports standard-form cubes");
  }
  if (cube->store()->read_only()) {
    return Status::Unavailable(
        "store is read-only (failed recovery or quarantine); serving "
        "requires a writable store");
  }

  std::unique_ptr<ServingCube> serving(new ServingCube());
  serving->options_ = options;
  serving->cube_ = std::move(cube);
  TiledStore* store = serving->cube_->store();
  // Queries, writers and workers share the pool from different threads.
  store->pool().set_thread_safe(true);

  uint64_t applied_seq = 0;
  if (!dir.empty()) {
    // Durable mode: the applied watermark lives in one meta block past the
    // layout's range, committed by the same atomic flush as each drain
    // batch; the delta log sits beside the store files.
    serving->meta_block_ = store->layout().num_blocks();
    BlockManager& device = store->manager();
    if (device.num_blocks() <= serving->meta_block_) {
      // Fresh blocks read as zeros => watermark 0, consistent with an empty
      // log.
      SS_RETURN_IF_ERROR(device.Resize(serving->meta_block_ + 1));
    }
    std::vector<double> meta(device.block_size());
    SS_RETURN_IF_ERROR(device.ReadBlock(serving->meta_block_, meta));
    applied_seq = std::bit_cast<uint64_t>(meta[0]);
    serving->log_ = std::make_unique<DeltaLog>(dir + "/" + kDeltaLogFile);
  }

  DeltaBuffer::Config buffer_config;
  buffer_config.max_pending_deltas = options.max_pending_deltas;
  serving->buffer_ = std::make_unique<DeltaBuffer>(buffer_config,
                                                   serving->log_.get());
  serving->buffer_->InitWatermarks(applied_seq);

  if (serving->log_ != nullptr) {
    // Replay acknowledged-but-unapplied deltas (seq past the applied
    // watermark) back into the buffer, in log order — queries see them
    // immediately, the next drain applies them.
    SS_ASSIGN_OR_RETURN(std::vector<DeltaRecord> records,
                        serving->log_->Replay());
    const std::vector<uint32_t>& log_dims = serving->cube_->log_dims();
    for (const DeltaRecord& record : records) {
      if (record.seq <= applied_seq) continue;
      if (record.coords.size() != log_dims.size()) {
        return Status::Internal("delta log record dimensionality mismatch");
      }
      SS_ASSIGN_OR_RETURN(
          ChunkApplyPlan plan,
          PlanCell(store->layout(), log_dims,
                   serving->cube_->manifest().norm, record.coords,
                   record.value));
      serving->buffer_->Restore(record.coords, record.seq, plan.blocks);
      ++serving->replayed_deltas_;
    }
  }

  if (options.start_workers) serving->StartWorkers();
  return serving;
}

ServingCube::~ServingCube() {
  StopWorkers();
  // Un-drained deltas stay in the log (durable mode) for the next open; the
  // cube's own destructor writes back what the store already holds. Close()
  // is the orderly path.
}

Status ServingCube::CheckHealthy() const {
  std::lock_guard<std::mutex> lock(failed_mu_);
  return failed_status_;
}

void ServingCube::Poison(const Status& status) {
  std::lock_guard<std::mutex> lock(failed_mu_);
  // First error wins: the cause of the quarantine is the original failure,
  // not whatever cascaded from it.
  if (failed_status_.ok()) {
    failed_status_ = status;
    poisoned_at_us_ = SteadyNowUs();
  }
}

ShardHealth ServingCube::health() const {
  if (!CheckHealthy().ok()) return ShardHealth::kQuarantined;
  if (log_degraded_.load(std::memory_order_relaxed)) {
    return ShardHealth::kDegraded;
  }
  return ShardHealth::kHealthy;
}

Status ServingCube::poison_status() const { return CheckHealthy(); }

Status ServingCube::SyncLog(uint64_t seq) {
  const Status status = log_->Sync(seq);
  if (status.ok()) {
    log_degraded_.store(false, std::memory_order_relaxed);
    return status;
  }
  log_sync_failures_.fetch_add(1, std::memory_order_relaxed);
  log_degraded_.store(true, std::memory_order_relaxed);
  return status;
}

Status ServingCube::Abandon() {
  StopWorkers();
  Poison(Status::Unavailable("serving cube abandoned for recovery"));
  // The exclusive latch waits out in-flight queries; any query arriving
  // after the discard re-checks health under the latch and fails instead of
  // reading a store whose dirty pages are gone.
  std::unique_lock<std::shared_mutex> latch(latch_);
  const Status discard = cube_->store()->pool().Discard();
  closed_ = true;  // the destructor must not flush what we just dropped
  return discard;
}

Status ServingCube::BufferCell(std::span<const uint64_t> coords, double delta,
                               OperationContext* ctx, uint64_t* out_seq) {
  TiledStore* store = cube_->store();
  SS_ASSIGN_OR_RETURN(ChunkApplyPlan plan,
                      PlanCell(store->layout(), cube_->log_dims(),
                               cube_->manifest().norm, coords, delta));
  return buffer_->Add(coords, delta, plan.blocks, ctx, out_seq);
}

Status ServingCube::Add(std::span<const uint64_t> coords, double delta,
                        OperationContext* ctx) {
  SS_RETURN_IF_ERROR(CheckHealthy());
  uint64_t seq = 0;
  SS_RETURN_IF_ERROR(BufferCell(coords, delta, ctx, &seq));
  if (log_ != nullptr && options_.durable_acks) {
    SS_RETURN_IF_ERROR(SyncLog(seq));
  }
  MaybeKickWorkers();
  return Status::OK();
}

Status ServingCube::AddBuffered(std::span<const uint64_t> coords,
                                double delta, OperationContext* ctx,
                                uint64_t* seq) {
  SS_RETURN_IF_ERROR(CheckHealthy());
  uint64_t assigned = 0;
  SS_RETURN_IF_ERROR(BufferCell(coords, delta, ctx, &assigned));
  if (seq != nullptr) *seq = assigned;
  return Status::OK();
}

Status ServingCube::SyncAcks(uint64_t seq) {
  SS_RETURN_IF_ERROR(CheckHealthy());
  if (log_ != nullptr && options_.durable_acks) {
    SS_RETURN_IF_ERROR(SyncLog(seq));
  }
  MaybeKickWorkers();
  return Status::OK();
}

Status ServingCube::Update(const Tensor& deltas,
                           std::span<const uint64_t> origin,
                           OperationContext* ctx) {
  SS_RETURN_IF_ERROR(CheckHealthy());
  const TensorShape& shape = deltas.shape();
  if (origin.size() != shape.ndim() ||
      shape.ndim() != cube_->log_dims().size()) {
    return Status::InvalidArgument("origin/deltas dimensionality mismatch");
  }
  // Cell by cell in row-major order — the same order the synchronous
  // updater's reference application would use — with one group ack at the
  // end instead of one fsync per cell.
  std::vector<uint64_t> coords(shape.ndim(), 0);
  std::vector<uint64_t> absolute(shape.ndim(), 0);
  uint64_t last = 0;
  do {
    for (uint32_t d = 0; d < shape.ndim(); ++d) {
      absolute[d] = origin[d] + coords[d];
    }
    SS_RETURN_IF_ERROR(
        BufferCell(absolute, deltas.At(coords), ctx, &last));
  } while (shape.Next(coords));
  if (log_ != nullptr && options_.durable_acks) {
    SS_RETURN_IF_ERROR(SyncLog(last));
  }
  MaybeKickWorkers();
  return Status::OK();
}

Result<double> ServingCube::PointQuery(std::span<const uint64_t> point,
                                       bool use_scaling_slots,
                                       OperationContext* ctx) {
  SS_RETURN_IF_ERROR(CheckHealthy());
  // Snapshot before the latch: the drain horizon can no longer pass our
  // sequence number, so every delta <= snap is either still in the buffer
  // (folded by the overlay) or already applied to the store — exactly once
  // either way.
  DeltaBuffer::Snapshot snap(buffer_.get());
  const auto wait_start = std::chrono::steady_clock::now();
  std::shared_lock<std::shared_mutex> latch(latch_);
  latch_wait_us_.fetch_add(ElapsedUs(wait_start), std::memory_order_relaxed);
  // Re-check under the latch: Abandon() poisons before it discards dirty
  // pages, so a query that raced past the first check cannot read the
  // half-applied store the discard left behind.
  SS_RETURN_IF_ERROR(CheckHealthy());
  DeltaBuffer::OverlayView view(buffer_.get(), snap);
  QueryOptions q;
  q.norm = cube_->manifest().norm;
  q.use_scaling_slots = use_scaling_slots;
  q.context = ctx;
  q.overlay = &view;
  return PointQueryStandard(cube_->store(), cube_->log_dims(), point, q);
}

Result<double> ServingCube::RangeSum(std::span<const uint64_t> lo,
                                     std::span<const uint64_t> hi,
                                     OperationContext* ctx) {
  SS_RETURN_IF_ERROR(CheckHealthy());
  DeltaBuffer::Snapshot snap(buffer_.get());
  const auto wait_start = std::chrono::steady_clock::now();
  std::shared_lock<std::shared_mutex> latch(latch_);
  latch_wait_us_.fetch_add(ElapsedUs(wait_start), std::memory_order_relaxed);
  SS_RETURN_IF_ERROR(CheckHealthy());  // see PointQuery: Abandon() race
  DeltaBuffer::OverlayView view(buffer_.get(), snap);
  QueryOptions q;
  q.norm = cube_->manifest().norm;
  q.context = ctx;
  q.overlay = &view;
  return RangeSumStandard(cube_->store(), cube_->log_dims(), lo, hi, q);
}

Status ServingCube::DrainOnce() {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  std::optional<DeltaBuffer::DrainBatch> batch = buffer_->BeginDrain();
  if (!batch.has_value()) return Status::OK();
  TiledStore* store = cube_->store();
  // Warm the pool with the batch's block set before taking the latch —
  // best-effort, a miss is only slower.
  (void)store->Prefetch(batch->block_ids);

  for (const DeltaBuffer::DrainBlock& block : batch->blocks) {
    // Apply and retire one block in a single exclusive critical section:
    // a query latched before us folds the contributions over the old block,
    // one latched after us reads the new block without them — same bits.
    const auto wait_start = std::chrono::steady_clock::now();
    std::unique_lock<std::shared_mutex> latch(latch_);
    latch_wait_us_.fetch_add(ElapsedUs(wait_start),
                             std::memory_order_relaxed);
    const auto hold_start = std::chrono::steady_clock::now();
    Status status = store->ApplyToBlock(block.block, block.ops);
    if (status.ok()) buffer_->EraseBlockPrefix(block.block, batch->upto);
    latch.unlock();
    const uint64_t held = ElapsedUs(hold_start);
    latch_hold_us_total_.fetch_add(held, std::memory_order_relaxed);
    latch_exclusive_holds_.fetch_add(1, std::memory_order_relaxed);
    uint64_t prev_max = latch_hold_us_max_.load(std::memory_order_relaxed);
    while (held > prev_max &&
           !latch_hold_us_max_.compare_exchange_weak(
               prev_max, held, std::memory_order_relaxed)) {
    }
    if (!status.ok()) {
      // The batch is now part-applied and part-erased; no consistent state
      // remains to serve from.
      Poison(status);
      return status;
    }
  }

  if (meta_block_ != kNoMetaBlock) {
    // Stamp the applied watermark; the guard's release marks the block
    // dirty so the flush below commits batch + watermark atomically.
    Result<PageGuard> guard =
        store->PinBlock(meta_block_, /*for_write=*/true);
    if (!guard.ok()) {
      Poison(guard.status());
      return guard.status();
    }
    guard->span()[0] = std::bit_cast<double>(batch->upto);
  }
  Status status = store->Flush();
  if (!status.ok()) {
    Poison(status);
    return status;
  }
  buffer_->FinishDrain(batch->upto);
  // Retire the log once everything accepted is applied (atomic with the
  // idle check, so a racing Add cannot lose its record).
  return buffer_->TruncateLogIfIdle();
}

ServingCube::ScrubTickResult ServingCube::ScrubTick(uint64_t max_blocks) {
  ScrubTickResult result;
  if (max_blocks == 0 || !CheckHealthy().ok()) return result;
  std::lock_guard<std::mutex> scrub_lock(scrub_mu_);
  TiledStore* store = cube_->store();
  BlockManager& device = store->manager();
  std::vector<double> scratch(device.block_size());
  {
    // Exclusive latch: device reads must not interleave with the pool's own
    // I/O, and an in-place rebuild must not race a query on the same block.
    const auto wait_start = std::chrono::steady_clock::now();
    std::unique_lock<std::shared_mutex> latch(latch_);
    latch_wait_us_.fetch_add(ElapsedUs(wait_start),
                             std::memory_order_relaxed);
    const uint64_t num_blocks = device.num_blocks();
    if (num_blocks == 0) return result;
    if (scrub_cursor_ >= num_blocks) scrub_cursor_ = 0;
    for (uint64_t i = 0; i < max_blocks && scrub_cursor_ < num_blocks; ++i) {
      const uint64_t id = scrub_cursor_++;
      const uint64_t repaired_before =
          device.durability_stats().repaired_blocks;
      // The serving read path repairs a corrupt block from parity before
      // failing; a still-failing read is a double fault for the supervisor.
      const Status read = device.ReadBlock(id, scratch);
      ++result.scanned;
      if (device.durability_stats().repaired_blocks > repaired_before) {
        ++result.repaired;
        // A cached copy of the block predates the rebuild only if it was
        // populated from a degraded zero-fill; drop it (dirty frames are
        // newer than disk and survive).
        const uint64_t one[] = {id};
        store->pool().InvalidateBlocks(one);
      } else if (!read.ok()) {
        ++result.unrepairable;
      }
    }
    if (scrub_cursor_ >= num_blocks) {
      scrub_cursor_ = 0;
      result.wrapped = true;
    }
  }
  scrubbed_blocks_.fetch_add(result.scanned, std::memory_order_relaxed);
  scrub_repairs_.fetch_add(result.repaired, std::memory_order_relaxed);
  scrub_unrepairable_.fetch_add(result.unrepairable,
                                std::memory_order_relaxed);
  parity_repairs_.fetch_add(result.repaired, std::memory_order_relaxed);
  parity_unrepairable_.fetch_add(result.unrepairable,
                                 std::memory_order_relaxed);
  if (result.wrapped) scrub_passes_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

Result<ScrubReport> ServingCube::RepairNow() {
  const Status poison = CheckHealthy();
  const bool checksum_poisoned =
      !poison.ok() && poison.code() == StatusCode::kChecksumMismatch;
  if (!poison.ok() && !checksum_poisoned) {
    return poison;  // not a corruption incident; parity cannot help
  }
  std::lock_guard<std::mutex> scrub_lock(scrub_mu_);
  ScrubReport report;
  {
    const auto wait_start = std::chrono::steady_clock::now();
    std::unique_lock<std::shared_mutex> latch(latch_);
    latch_wait_us_.fetch_add(ElapsedUs(wait_start),
                             std::memory_order_relaxed);
    // A poisoned cube skips the pre-scrub flush: its dirty pages hold an
    // interrupted drain batch whose watermark never committed, and they
    // may only reach disk in the atomic commit ResumeAfterRepair issues.
    SS_ASSIGN_OR_RETURN(report,
                        cube_->store()->ScrubRepair(
                            /*flush_first=*/!checksum_poisoned));
  }
  parity_repairs_.fetch_add(report.repaired.size(),
                            std::memory_order_relaxed);
  parity_unrepairable_.fetch_add(report.unrepairable.size(),
                                 std::memory_order_relaxed);
  if (!report.unrepairable.empty() || !checksum_poisoned) return report;
  {
    // Every block verified or was rebuilt: the corruption incident is
    // over. Clear the poison only if it is still that incident.
    std::lock_guard<std::mutex> lock(failed_mu_);
    if (failed_status_.code() == StatusCode::kChecksumMismatch) {
      failed_status_ = Status::OK();
      poisoned_at_us_ = 0;
    }
  }
  SS_RETURN_IF_ERROR(ResumeAfterRepair());
  MaybeKickWorkers();
  return report;
}

Status ServingCube::ResumeAfterRepair() {
  buffer_->AbortDrain();
  for (;;) {
    const uint64_t applied = buffer_->applied_seq();
    if (applied >= buffer_->last_seq()) break;
    {
      std::lock_guard<std::mutex> drain_lock(drain_mu_);
      // `target` is read before the emptiness check: a delta racing in
      // after the check gets a later sequence number, so the stamped
      // watermark never covers an unapplied contribution.
      const uint64_t target = buffer_->last_seq();
      if (buffer_->pending_slot_entries() == 0) {
        if (buffer_->applied_seq() >= target) break;
        // The poison hit at or after the interrupted batch's final block:
        // every accepted delta is applied to cached pages already. Stamp
        // the watermark and commit pages + watermark in one atomic flush.
        if (meta_block_ != kNoMetaBlock) {
          const auto wait_start = std::chrono::steady_clock::now();
          std::unique_lock<std::shared_mutex> latch(latch_);
          latch_wait_us_.fetch_add(ElapsedUs(wait_start),
                                   std::memory_order_relaxed);
          Result<PageGuard> guard =
              cube_->store()->PinBlock(meta_block_, /*for_write=*/true);
          if (!guard.ok()) {
            Poison(guard.status());
            return guard.status();
          }
          guard->span()[0] = std::bit_cast<double>(target);
        }
        const Status flushed = cube_->store()->Flush();
        if (!flushed.ok()) {
          Poison(flushed);
          return flushed;
        }
        buffer_->FinishDrain(target);
        break;
      }
    }
    // Un-applied contributions remain: drain them the normal way (each
    // batch commits with its own watermark).
    SS_RETURN_IF_ERROR(DrainOnce());
    SS_RETURN_IF_ERROR(CheckHealthy());
    if (buffer_->applied_seq() == applied) {
      return Status::Unavailable(
          "repair resume cannot advance: active snapshots pin the drain "
          "horizon");
    }
  }
  return buffer_->TruncateLogIfIdle();
}

Status ServingCube::DrainAll() {
  SS_RETURN_IF_ERROR(CheckHealthy());
  for (;;) {
    const uint64_t applied_before = buffer_->applied_seq();
    if (buffer_->last_seq() == applied_before) {
      return buffer_->TruncateLogIfIdle();
    }
    SS_RETURN_IF_ERROR(DrainOnce());
    SS_RETURN_IF_ERROR(CheckHealthy());
    if (buffer_->applied_seq() == applied_before) {
      return Status::Unavailable(
          "drain cannot advance: active snapshots pin the horizon");
    }
  }
}

bool ServingCube::ShouldDrain() const {
  if (!CheckHealthy().ok()) return false;
  return buffer_->pending_deltas() >= options_.drain_min_deltas ||
         buffer_->OldestPendingOlderThan(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 options_.max_delta_age));
}

void ServingCube::MaybeKickWorkers() {
  if (!workers_running_.load(std::memory_order_acquire)) return;
  if (buffer_->pending_deltas() < options_.drain_min_deltas) return;
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    kick_ = true;
  }
  worker_cv_.notify_one();
}

void ServingCube::WorkerLoop() {
  const auto poll = std::max<std::chrono::milliseconds>(
      std::chrono::milliseconds(1),
      std::min<std::chrono::milliseconds>(options_.max_delta_age / 2,
                                          std::chrono::milliseconds(20)));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(worker_mu_);
      worker_cv_.wait_for(lock, poll,
                          [this] { return stop_.load() || kick_; });
      if (stop_.load()) return;
      kick_ = false;
    }
    if (ShouldDrain()) {
      (void)DrainOnce();  // failure poisons the cube; the loop idles then
    }
  }
}

void ServingCube::StartWorkers() {
  if (!workers_.empty()) return;
  uint32_t n = options_.num_workers;
  if (!options_.oversubscribe) {
    n = std::min(n, std::max(1u, std::thread::hardware_concurrency()));
  }
  stop_.store(false);
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  workers_running_.store(true, std::memory_order_release);
}

void ServingCube::StopWorkers() {
  if (workers_.empty()) return;
  // Drop the hot-path flag first: a concurrent Add that already passed the
  // check at worst locks worker_mu_ and signals the cv, which is safe while
  // we join; it can no longer see the vector we are about to clear.
  workers_running_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    stop_.store(true);
  }
  worker_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  stop_.store(false);
}

Status ServingCube::Close() {
  StopWorkers();
  if (closed_) return Status::OK();
  closed_ = true;
  Status drain = CheckHealthy();
  if (drain.ok()) drain = DrainAll();
  const Status close = cube_->Close();
  return drain.ok() ? close : drain;
}

Status ServingCube::CrashForTest() {
  StopWorkers();
  SS_RETURN_IF_ERROR(cube_->store()->pool().Discard());
  Poison(Status::Internal("serving cube crashed (CrashForTest)"));
  closed_ = true;  // the destructor must not flush what the crash dropped
  return Status::OK();
}

ServingStats ServingCube::stats() const {
  ServingStats out;
  buffer_->StatsInto(&out);
  out.replayed_deltas = replayed_deltas_;
  out.latch_wait_us_total = latch_wait_us_.load(std::memory_order_relaxed);
  out.latch_hold_us_total =
      latch_hold_us_total_.load(std::memory_order_relaxed);
  out.latch_hold_us_max = latch_hold_us_max_.load(std::memory_order_relaxed);
  out.latch_exclusive_holds =
      latch_exclusive_holds_.load(std::memory_order_relaxed);
  if (log_ != nullptr) {
    out.log_appends = log_->appends();
    out.log_syncs = log_->syncs();
    out.durable_seq = log_->durable_seq();
    out.log_torn_records = log_->torn_records();
  }
  out.log_sync_failures =
      log_sync_failures_.load(std::memory_order_relaxed);
  // Scrub/repair counters come from this layer's own atomics, not a
  // DurabilityStats read: the device counters are plain fields a concurrent
  // drain is mutating. Inline read-path repairs therefore show up in
  // durability_stats() (quiescent callers) but not here.
  out.scrub_passes = scrub_passes_.load(std::memory_order_relaxed);
  out.scrubbed_blocks = scrubbed_blocks_.load(std::memory_order_relaxed);
  out.scrub_repairs = scrub_repairs_.load(std::memory_order_relaxed);
  out.parity_repairs = parity_repairs_.load(std::memory_order_relaxed);
  out.parity_unrepairable =
      parity_unrepairable_.load(std::memory_order_relaxed);
  out.health = health();
  {
    std::lock_guard<std::mutex> lock(failed_mu_);
    if (!failed_status_.ok()) {
      out.poison_code = failed_status_.code();
      out.poison_message = failed_status_.message();
      out.poisoned_at_us = poisoned_at_us_;
      out.health_since_us = poisoned_at_us_;
    }
  }
  return out;
}

}  // namespace shiftsplit
