// Concurrent serving front end over a WaveletCube: writers append cell
// deltas to a journaled in-memory DeltaBuffer, background maintenance
// workers drain the buffer in batches through the tile-batched SHIFT-SPLIT
// path under one atomic flush, and queries fold the still-pending deltas
// into every fetched coefficient — so answers are bit-identical to a store
// that had applied every accepted delta synchronously, at all times.
//
//   auto serving = *ServingCube::OpenOnDisk("/data/cube");
//   serving->Add({16, 20}, +3.5);                  // acked once durable
//   double v = *serving->PointQuery({16, 20});     // sees the delta already
//
// Consistency protocol (see DESIGN.md §7): a query registers a snapshot at
// the newest accepted sequence number, then takes the store latch shared;
// the drain horizon never passes an active snapshot, and a worker erases a
// block's drained contributions in the same exclusive-latch critical
// section that applied them — so every query sees each delta exactly once,
// either from the store or from the buffer, never both or neither.
//
// Durability: each accepted delta is appended to a sidecar DeltaLog and
// fsynced (group commit) before Add acknowledges; the store's applied
// watermark rides in a meta block covered by the same atomic flush as each
// drain batch. Reopening after a crash replays acknowledged-but-unapplied
// deltas back into the buffer (OpenOnDisk). Cubes attached with Attach()
// serve from memory only — no log, no crash-safety for buffered deltas.

#ifndef SHIFTSPLIT_SERVICE_SERVING_CUBE_H_
#define SHIFTSPLIT_SERVICE_SERVING_CUBE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/delta_buffer.h"
#include "shiftsplit/service/serving_stats.h"
#include "shiftsplit/storage/journal.h"
#include "shiftsplit/util/operation_context.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief Serving layer over one standard-form WaveletCube. All public
/// methods are thread-safe; writers, readers and maintenance run
/// concurrently.
class ServingCube {
 public:
  struct Options {
    /// Backpressure bound: writers block (or time out as kUnavailable under
    /// an armed OperationContext deadline) at this many pending cells.
    uint64_t max_pending_deltas = 4096;
    /// Maintenance triggers: drain when this many cells are pending, or
    /// when the oldest pending delta is older than `max_delta_age`.
    uint64_t drain_min_deltas = 256;
    std::chrono::milliseconds max_delta_age{50};
    uint32_t num_workers = 1;
    /// Spawn maintenance workers immediately. With false, nothing drains
    /// until StartWorkers() or an explicit DrainAll().
    bool start_workers = true;
    /// Allow more workers than hardware threads (required for genuine
    /// multi-threading on single-CPU machines; otherwise num_workers is
    /// clamped to the hardware concurrency).
    bool oversubscribe = false;
    /// Acknowledge a delta only after its log record is fsynced (group
    /// commit). With false, Add returns after the in-memory append — faster,
    /// but an OS crash can lose acknowledged-but-unsynced deltas.
    bool durable_acks = true;
  };

  /// \brief Fronts an already-open cube with a volatile (unjournaled)
  /// buffer. The cube must be standard-form and writable.
  static Result<std::unique_ptr<ServingCube>> Attach(
      std::unique_ptr<WaveletCube> cube, const Options& options);
  static Result<std::unique_ptr<ServingCube>> Attach(
      std::unique_ptr<WaveletCube> cube);

  /// \brief Opens a file-backed cube for serving: runs the store's own
  /// crash recovery, then replays acknowledged-but-unapplied deltas from
  /// the sidecar delta log back into the buffer.
  static Result<std::unique_ptr<ServingCube>> OpenOnDisk(
      const std::string& dir, uint64_t pool_blocks,
      const Options& options);
  static Result<std::unique_ptr<ServingCube>> OpenOnDisk(
      const std::string& dir, uint64_t pool_blocks = 256);

  /// \brief Fronts an already-open cube with the full durable machinery of
  /// OpenOnDisk — delta log and applied watermark in `dir` (which must
  /// exist) — without reopening the store. Lets tests wrap the cube's block
  /// device (e.g. in a fault-injection decorator) while keeping journaled
  /// recovery; the device must be resizable (one extra meta block).
  static Result<std::unique_ptr<ServingCube>> AttachDurable(
      std::unique_ptr<WaveletCube> cube, const std::string& dir,
      const Options& options);

  ~ServingCube();
  ServingCube(const ServingCube&) = delete;
  ServingCube& operator=(const ServingCube&) = delete;

  /// \brief Buffers one cell delta (accumulate). Returns once the delta is
  /// accepted and (durable_acks) its log record is fsynced; the store
  /// catches up asynchronously, but queries already see the delta.
  Status Add(std::span<const uint64_t> coords, double delta,
             OperationContext* ctx = nullptr);

  /// \brief Buffers a dense box of deltas anchored at `origin`, cell by
  /// cell in row-major order with one group ack — the serving counterpart
  /// of WaveletCube::Update, and the path an appended slice takes too.
  Status Update(const Tensor& deltas, std::span<const uint64_t> origin,
                OperationContext* ctx = nullptr);

  /// \brief Buffers one cell without the group-commit fsync; queries see
  /// the delta immediately, but it is not acknowledged durable until a
  /// later SyncAcks (or any synced Add) covers its sequence number. The
  /// sharded Update path uses this to batch one fsync per shard per box.
  Status AddBuffered(std::span<const uint64_t> coords, double delta,
                     OperationContext* ctx = nullptr,
                     uint64_t* seq = nullptr);

  /// \brief Fsyncs the delta log through `seq` (no-op for volatile cubes
  /// and durable_acks=false) and kicks maintenance — the group ack closing
  /// a run of AddBuffered calls.
  Status SyncAcks(uint64_t seq);

  /// \brief Point query with pending deltas merged in; bit-identical to the
  /// same query against a store that had applied every accepted delta.
  Result<double> PointQuery(std::span<const uint64_t> point,
                            bool use_scaling_slots = true,
                            OperationContext* ctx = nullptr);

  /// \brief Range sum over the inclusive box [lo, hi], pending deltas
  /// merged in (same exactness contract as PointQuery).
  Result<double> RangeSum(std::span<const uint64_t> lo,
                          std::span<const uint64_t> hi,
                          OperationContext* ctx = nullptr);

  /// \brief Synchronously drains until every accepted delta is applied.
  /// Fails as kUnavailable if concurrent queries pin the drain horizon
  /// indefinitely.
  Status DrainAll();

  /// \brief One rate-limited scrub batch (the Scrubber's work unit): under
  /// the exclusive store latch, verifies up to `max_blocks` device blocks
  /// starting at the internal cursor by reading them through the serving
  /// path — a corrupt block is rebuilt from parity in place (and its stale
  /// cached frame dropped); an unrepairable one is counted and left for
  /// the supervisor. Wraps around at the end of the device, counting one
  /// finished pass. A no-op on a poisoned cube.
  struct ScrubTickResult {
    uint64_t scanned = 0;       ///< blocks verified this tick
    uint64_t repaired = 0;      ///< corrupt blocks rebuilt from parity
    uint64_t unrepairable = 0;  ///< corrupt blocks parity could not rebuild
    bool wrapped = false;       ///< this tick completed a full pass
  };
  ScrubTickResult ScrubTick(uint64_t max_blocks);

  /// \brief Full repair scrub under the exclusive latch (see
  /// TiledStore::ScrubRepair): every corrupt block and stale parity stride
  /// is rewritten in place. When everything repaired — the report has no
  /// unrepairable blocks — a cube poisoned by a checksum failure is
  /// un-poisoned and resumes serving with its buffered deltas intact; the
  /// supervisor uses this to heal a shard in place instead of quarantining
  /// it. Double faults leave the poison (and the store's read-only
  /// degradation) exactly as before.
  Result<ScrubReport> RepairNow();

  /// \brief Orderly shutdown: stops workers, drains everything, retires the
  /// delta log and closes the cube. Idempotent.
  Status Close();

  void StartWorkers();
  void StopWorkers();

  ServingStats stats() const;
  uint64_t pending_deltas() const { return buffer_->pending_deltas(); }
  WaveletCube* cube() { return cube_.get(); }
  /// Test-only access to the buffer (e.g. pinning the drain horizon with an
  /// explicit Snapshot to freeze a genuine mid-apply state).
  DeltaBuffer* buffer_for_test() { return buffer_.get(); }
  /// Test-only access to the delta log (e.g. injecting flush faults with
  /// DeltaLog::set_flush_hook_for_test); null for volatile cubes.
  DeltaLog* log_for_test() { return log_.get(); }

  /// \brief The cube's own health (DESIGN.md §11): kQuarantined once
  /// poisoned (a drain or flush failed; no consistent state remains to
  /// serve), kDegraded while delta-log group commits are failing (acks
  /// bounce with backpressure but reads and already-acked data are fine),
  /// kHealthy otherwise. RECOVERING/FAILED are supervisor-level states of a
  /// shard slot, never reported by the cube itself.
  ShardHealth health() const;

  /// \brief The sticky failure that poisoned the cube (OK while healthy) —
  /// the first error, with code and message, as captured by Poison().
  Status poison_status() const;

  /// \brief Tears the cube down without flushing: stops workers, waits out
  /// in-flight queries (exclusive latch), discards every dirty page and
  /// poisons the cube so stragglers fail instead of reading a half-applied
  /// store. The delta log and journal stay on disk exactly as they were —
  /// the supervisor re-opens the directory through the normal recovery
  /// path (journal replay + deltas.log replay past the applied watermark).
  /// Idempotent; safe on an already-poisoned cube.
  Status Abandon();

  /// \brief Simulates kill -9 for recovery tests: stops workers, discards
  /// every dirty (uncommitted) page without write-back and poisons the
  /// cube. The delta log is left exactly as the crash would — reopen with
  /// OpenOnDisk to exercise recovery.
  Status CrashForTest();

 private:
  ServingCube() = default;

  static Result<std::unique_ptr<ServingCube>> Make(
      std::unique_ptr<WaveletCube> cube, const Options& options,
      const std::string& dir);

  Status CheckHealthy() const;
  void Poison(const Status& status);
  /// Group-commit fsync through `seq`, tracking the DEGRADED health bit: a
  /// failed flush (ENOSPC and friends) counts a log_sync_failure and marks
  /// the cube degraded; the next successful sync clears it. Never poisons —
  /// the delta log retains the unwritten batch, so the records flush with
  /// the next ack once the pressure clears (writer backpressure, not
  /// corruption).
  Status SyncLog(uint64_t seq);
  Status BufferCell(std::span<const uint64_t> coords, double delta,
                    OperationContext* ctx, uint64_t* out_seq);
  /// One drain batch: plan, apply per block under the exclusive latch,
  /// stamp the applied watermark, commit atomically. Poisons on failure.
  Status DrainOnce();
  /// After an in-place repair un-poisoned the cube: abandons the drain the
  /// poison interrupted and re-commits until the applied watermark
  /// converges — each step an atomic flush, so the store is never durable
  /// with applied blocks but a stale watermark (which would double-apply
  /// their deltas on crash replay).
  Status ResumeAfterRepair();
  bool ShouldDrain() const;
  void MaybeKickWorkers();
  void WorkerLoop();

  static constexpr uint64_t kNoMetaBlock = ~0ull;

  Options options_;
  std::unique_ptr<WaveletCube> cube_;
  std::unique_ptr<DeltaLog> log_;  // null for Attach()ed (volatile) cubes
  std::unique_ptr<DeltaBuffer> buffer_;
  uint64_t meta_block_ = kNoMetaBlock;  ///< applied-watermark block id
  uint64_t replayed_deltas_ = 0;

  /// Store latch: queries hold it shared for a whole evaluation; a worker
  /// holds it exclusive per block while applying + erasing that block's
  /// drained contributions. Writers never take it (they touch only the
  /// buffer).
  mutable std::shared_mutex latch_;
  std::mutex drain_mu_;  ///< serializes whole drain batches

  // Latch timing (microseconds): waits on either acquisition mode, plus the
  // exclusive hold per drained block — the read-tail stall budget.
  mutable std::atomic<uint64_t> latch_wait_us_{0};
  std::atomic<uint64_t> latch_hold_us_total_{0};
  std::atomic<uint64_t> latch_hold_us_max_{0};
  std::atomic<uint64_t> latch_exclusive_holds_{0};

  mutable std::mutex failed_mu_;
  Status failed_status_;  ///< OK while healthy; sticky failure otherwise
  uint64_t poisoned_at_us_ = 0;  ///< steady-clock us at Poison()

  // Delta-log backpressure: set while group commits fail, cleared by the
  // next success. Orthogonal to poisoning — reads stay exact throughout.
  std::atomic<bool> log_degraded_{false};
  std::atomic<uint64_t> log_sync_failures_{0};

  // Scrub state: the cursor is owned by one scrubbing thread at a time
  // (scrub_mu_); the counters feed ServingStats.
  std::mutex scrub_mu_;
  uint64_t scrub_cursor_ = 0;
  std::atomic<uint64_t> scrub_passes_{0};
  std::atomic<uint64_t> scrubbed_blocks_{0};
  std::atomic<uint64_t> scrub_repairs_{0};
  std::atomic<uint64_t> scrub_unrepairable_{0};
  // All explicit parity-repair activity (ScrubTick + RepairNow); inline
  // query-path repairs are visible in durability_stats() only.
  std::atomic<uint64_t> parity_repairs_{0};
  std::atomic<uint64_t> parity_unrepairable_{0};

  std::mutex worker_mu_;
  std::condition_variable worker_cv_;
  bool kick_ = false;
  std::atomic<bool> stop_{false};
  /// MaybeKickWorkers() runs on writer threads while the supervisor may be
  /// tearing this cube down (Abandon → StopWorkers) through its own handle;
  /// the hot path checks this flag, never the vector, so the teardown's
  /// workers_.clear() cannot race a concurrent Add.
  std::atomic<bool> workers_running_{false};
  std::vector<std::thread> workers_;  ///< control threads only
  bool closed_ = false;
};

inline Result<std::unique_ptr<ServingCube>> ServingCube::Attach(
    std::unique_ptr<WaveletCube> cube) {
  return Attach(std::move(cube), Options());
}

inline Result<std::unique_ptr<ServingCube>> ServingCube::OpenOnDisk(
    const std::string& dir, uint64_t pool_blocks) {
  return OpenOnDisk(dir, pool_blocks, Options());
}

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_SERVICE_SERVING_CUBE_H_
