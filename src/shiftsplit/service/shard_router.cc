#include "shiftsplit/service/shard_router.h"

#include "shiftsplit/core/query.h"

namespace shiftsplit {

uint32_t ShardRouter::PickSplitDim(std::span<const uint32_t> log_dims) {
  uint32_t best = 0;
  for (uint32_t d = 1; d < log_dims.size(); ++d) {
    if (log_dims[d] > log_dims[best]) best = d;
  }
  return best;
}

Result<ShardRouter> ShardRouter::Make(std::vector<uint32_t> log_dims,
                                      uint32_t num_shards) {
  const uint32_t split = PickSplitDim(log_dims);
  return Make(std::move(log_dims), split, num_shards);
}

Result<ShardRouter> ShardRouter::Make(std::vector<uint32_t> log_dims,
                                      uint32_t split_dim,
                                      uint32_t num_shards) {
  if (log_dims.empty()) {
    return Status::InvalidArgument("sharding needs a non-empty domain");
  }
  if (split_dim >= log_dims.size()) {
    return Status::InvalidArgument("split dimension out of range");
  }
  if (num_shards == 0 || (num_shards & (num_shards - 1)) != 0) {
    return Status::InvalidArgument(
        "shard count must be a power of two, got " +
        std::to_string(num_shards));
  }
  uint32_t prefix_bits = 0;
  while ((uint32_t{1} << prefix_bits) < num_shards) ++prefix_bits;
  if (prefix_bits >= log_dims[split_dim]) {
    return Status::InvalidArgument(
        "cannot split dimension " + std::to_string(split_dim) +
        " (log extent " + std::to_string(log_dims[split_dim]) + ") into " +
        std::to_string(num_shards) +
        " shards: each shard needs at least one level");
  }
  ShardRouter router;
  router.log_dims_ = std::move(log_dims);
  router.shard_log_dims_ = router.log_dims_;
  router.shard_log_dims_[split_dim] -= prefix_bits;
  router.split_dim_ = split_dim;
  router.num_shards_ = num_shards;
  router.prefix_bits_ = prefix_bits;
  router.slab_extent_ = uint64_t{1} << router.shard_log_dims_[split_dim];
  return router;
}

Result<uint32_t> ShardRouter::RoutePoint(
    std::span<const uint64_t> point) const {
  if (point.size() != log_dims_.size()) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  for (uint32_t d = 0; d < log_dims_.size(); ++d) {
    if (point[d] >= (uint64_t{1} << log_dims_[d])) {
      return Status::OutOfRange("point beyond the dataset domain");
    }
  }
  return ShardOf(point);
}

Result<std::vector<ShardRange>> ShardRouter::DecomposeRange(
    std::span<const uint64_t> lo, std::span<const uint64_t> hi) const {
  if (lo.size() != log_dims_.size() || hi.size() != log_dims_.size()) {
    return Status::InvalidArgument("range dimensionality mismatch");
  }
  for (uint32_t d = 0; d < log_dims_.size(); ++d) {
    if (lo[d] > hi[d] || hi[d] >= (uint64_t{1} << log_dims_[d])) {
      return Status::OutOfRange("bad range bounds");
    }
  }
  // Only the shards whose slabs intersect [lo, hi] along the split
  // dimension contribute; their clipped boxes tile the input box exactly.
  const uint32_t first = static_cast<uint32_t>(lo[split_dim_] / slab_extent_);
  const uint32_t last = static_cast<uint32_t>(hi[split_dim_] / slab_extent_);
  std::vector<ShardRange> parts;
  parts.reserve(last - first + 1);
  for (uint32_t shard = first; shard <= last; ++shard) {
    std::vector<uint64_t> clipped_lo;
    std::vector<uint64_t> clipped_hi;
    if (!ClipBoxToSlab(lo, hi, split_dim_, SlabLo(shard), SlabHi(shard),
                       &clipped_lo, &clipped_hi)) {
      continue;  // unreachable for shards in [first, last]; keep it safe
    }
    ShardRange part;
    part.shard = shard;
    part.lo = ToLocal(clipped_lo, shard);
    part.hi = ToLocal(clipped_hi, shard);
    parts.push_back(std::move(part));
  }
  return parts;
}

}  // namespace shiftsplit
