// Observability for the network front-end: connection and frame counters,
// admission-control outcomes and a per-opcode request-latency histogram,
// snapshotted by CubeServer::stats() and exported over the wire by the
// `stats` opcode (wire.h, StatsReply) so a client — or the `stats` CLI —
// sees the same numbers the process sees.

#ifndef SHIFTSPLIT_NET_SERVER_STATS_H_
#define SHIFTSPLIT_NET_SERVER_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace shiftsplit {
namespace net {

/// \brief Logarithmic latency histogram: bucket i counts requests that took
/// at most kLatencyBucketUs[i] microseconds; the last bucket is unbounded.
inline constexpr uint64_t kLatencyBucketUs[] = {
    50, 100, 250, 500, 1'000, 2'500, 5'000, 10'000, 25'000, 50'000, 100'000,
};
inline constexpr size_t kLatencyBuckets =
    std::size(kLatencyBucketUs) + 1;  // + overflow

/// \brief Request opcodes tracked by the per-opcode histograms, in the
/// order their rows appear in the stats export.
enum class TrackedOp : uint8_t {
  kPing = 0,
  kOpenCube,
  kCloseCube,
  kPoint,
  kSum,
  kAdd,
  kUpdate,
  kStats,
};
inline constexpr size_t kTrackedOps = 8;

/// \brief Short lowercase name used in exported counter keys
/// (e.g. "rt_point_le_100us").
const char* TrackedOpName(TrackedOp op);

/// \brief Snapshot of the server's counters (plain struct, like
/// ServingStats).
struct ServerStats {
  // Connections.
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t connections_rejected = 0;  ///< closed at the connection cap

  // Requests.
  uint64_t requests = 0;            ///< well-formed request frames dispatched
  uint64_t responses = 0;           ///< success replies sent
  uint64_t error_responses = 0;     ///< error replies sent
  uint64_t rejected_at_admission = 0;  ///< fast kUnavailable at the cap
  uint64_t deadline_expired_before_dispatch = 0;

  // Frames / bytes, both directions.
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t protocol_errors = 0;  ///< malformed frames (connection closed)

  /// Per-opcode request-latency histogram, parse-to-response-queued.
  std::array<std::array<uint64_t, kLatencyBuckets>, kTrackedOps> latency{};

  /// \brief Flattens every counter into ordered key → value pairs — the
  /// body of the `stats` wire reply. Histogram keys look like
  /// "rt_point_le_1000us" / "rt_point_le_inf"; zero buckets are skipped so
  /// cold opcodes do not bloat the frame.
  std::vector<std::pair<std::string, uint64_t>> Flatten() const;
};

}  // namespace net
}  // namespace shiftsplit

#endif  // SHIFTSPLIT_NET_SERVER_STATS_H_
