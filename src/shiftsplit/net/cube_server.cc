#include "shiftsplit/net/cube_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

// epoll_event.data.u64 tags: connections are pointers (aligned, so never
// these small values).
constexpr uint64_t kTagListen = 0;
constexpr uint64_t kTagWake = 1;

int OpIndex(Opcode op) {
  switch (op) {
    case Opcode::kPing:
      return static_cast<int>(TrackedOp::kPing);
    case Opcode::kOpenCube:
      return static_cast<int>(TrackedOp::kOpenCube);
    case Opcode::kCloseCube:
      return static_cast<int>(TrackedOp::kCloseCube);
    case Opcode::kPoint:
      return static_cast<int>(TrackedOp::kPoint);
    case Opcode::kSum:
      return static_cast<int>(TrackedOp::kSum);
    case Opcode::kAdd:
      return static_cast<int>(TrackedOp::kAdd);
    case Opcode::kUpdate:
      return static_cast<int>(TrackedOp::kUpdate);
    case Opcode::kStats:
      return static_cast<int>(TrackedOp::kStats);
    default:
      return -1;
  }
}

/// ServingStats → flat counters for the per-cube `stats` reply. Keys are
/// stable strings; enums travel as their names' numeric health rank plus a
/// dedicated code counter so the client needs no enum tables.
void FlattenServingStats(const ServingStats& s, StatsReply* out) {
  auto put = [out](const char* key, uint64_t value) {
    out->counters.emplace_back(key, value);
  };
  put("acked_deltas", s.acked_deltas);
  put("coalesced_deltas", s.coalesced_deltas);
  put("pending_deltas", s.pending_deltas);
  put("rejected_unavailable", s.rejected_unavailable);
  put("apply_batches", s.apply_batches);
  put("applied_deltas", s.applied_deltas);
  put("replayed_deltas", s.replayed_deltas);
  put("overlay_probes", s.overlay_probes);
  put("overlay_hits", s.overlay_hits);
  put("latch_wait_us_total", s.latch_wait_us_total);
  put("latch_hold_us_max", s.latch_hold_us_max);
  put("log_appends", s.log_appends);
  put("log_syncs", s.log_syncs);
  put("log_sync_failures", s.log_sync_failures);
  put("last_seq", s.last_seq);
  put("durable_seq", s.durable_seq);
  put("applied_seq", s.applied_seq);
  put("health", static_cast<uint64_t>(s.health));
  put("poison_code", StatusCodeToWire(s.poison_code));
  put("quarantines", s.quarantines);
  put("recoveries", s.recoveries);
  put("parked_writes", s.parked_writes);
  put("scrub_passes", s.scrub_passes);
  put("parity_repairs", s.parity_repairs);
}

}  // namespace

const char* TrackedOpName(TrackedOp op) {
  switch (op) {
    case TrackedOp::kPing:
      return "ping";
    case TrackedOp::kOpenCube:
      return "open";
    case TrackedOp::kCloseCube:
      return "close";
    case TrackedOp::kPoint:
      return "point";
    case TrackedOp::kSum:
      return "sum";
    case TrackedOp::kAdd:
      return "add";
    case TrackedOp::kUpdate:
      return "update";
    case TrackedOp::kStats:
      return "stats";
  }
  return "unknown";
}

std::vector<std::pair<std::string, uint64_t>> ServerStats::Flatten() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  auto put = [&out](std::string key, uint64_t value) {
    out.emplace_back(std::move(key), value);
  };
  put("connections_accepted", connections_accepted);
  put("connections_active", connections_active);
  put("connections_rejected", connections_rejected);
  put("requests", requests);
  put("responses", responses);
  put("error_responses", error_responses);
  put("rejected_at_admission", rejected_at_admission);
  put("deadline_expired_before_dispatch", deadline_expired_before_dispatch);
  put("frames_in", frames_in);
  put("frames_out", frames_out);
  put("bytes_in", bytes_in);
  put("bytes_out", bytes_out);
  put("protocol_errors", protocol_errors);
  for (size_t op = 0; op < kTrackedOps; ++op) {
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      if (latency[op][b] == 0) continue;
      std::string key = "rt_";
      key += TrackedOpName(static_cast<TrackedOp>(op));
      key += "_le_";
      key += b < std::size(kLatencyBucketUs)
                 ? std::to_string(kLatencyBucketUs[b]) + "us"
                 : "inf";
      put(std::move(key), latency[op][b]);
    }
  }
  return out;
}

CubeServer::CubeServer(std::shared_ptr<CubeRegistry> registry,
                       const Options& options)
    : registry_(std::move(registry)), options_(options) {}

CubeServer::~CubeServer() { Stop(); }

Status CubeServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (running_.load()) return Status::OK();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    Status st = Status::IOError(std::string("bind/listen ") + options_.host +
                                ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  uint32_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  stopping_.store(false);
  loops_.clear();
  for (uint32_t i = 0; i < threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      for (auto& l : loops_) {
        if (l->epoll_fd >= 0) ::close(l->epoll_fd);
        if (l->wake_fd >= 0) ::close(l->wake_fd);
      }
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
      if (loop->wake_fd >= 0) ::close(loop->wake_fd);
      loops_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IOError("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagWake;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loops_.push_back(std::move(loop));
  }
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagListen;
    ::epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  running_.store(true);
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { LoopMain(i); });
  }
  return Status::OK();
}

void CubeServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!running_.load()) return;
  stopping_.store(true);
  for (auto& loop : loops_) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(loop->wake_fd, &one, sizeof(one));
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& loop : loops_) {
    ::close(loop->epoll_fd);
    ::close(loop->wake_fd);
  }
  loops_.clear();
  running_.store(false);
}

void CubeServer::LoopMain(size_t index) {
  Loop* loop = loops_[index].get();
  epoll_event events[64];
  bool draining = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    if (stopping_.load(std::memory_order_relaxed) && !draining) {
      draining = true;
      drain_deadline = Clock::now() + options_.drain_timeout;
      // The listener must stop before the drain; only loop 0 owns it, and
      // deregistering (not closing — Stop still owns the fd) is enough.
      if (index == 0 && listen_fd_ >= 0) {
        ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      }
    }
    if (draining) {
      bool pending = false;
      for (const auto& conn : loop->conns) {
        if (conn->fd >= 0 && conn->out_pos < conn->out.size()) {
          pending = true;
          break;
        }
      }
      if (!pending || Clock::now() >= drain_deadline) break;
    }

    const int timeout_ms = draining ? 10 : 200;
    const int n = ::epoll_wait(loop->epoll_fd, events, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kTagListen) {
        if (!draining) AcceptReady();
        continue;
      }
      if (tag == kTagWake) {
        uint64_t buf;
        while (::read(loop->wake_fd, &buf, sizeof(buf)) > 0) {
        }
        AdoptIncoming(loop);
        continue;
      }
      auto* conn = reinterpret_cast<Connection*>(tag);
      if (conn->fd < 0) continue;  // closed earlier in this batch
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(loop, conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) && !OnWritable(loop, conn)) {
        CloseConnection(loop, conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) && !draining &&
          !OnReadable(loop, conn)) {
        CloseConnection(loop, conn);
        continue;
      }
    }
    loop->conns.erase(
        std::remove_if(loop->conns.begin(), loop->conns.end(),
                       [](const auto& c) { return c->fd < 0; }),
        loop->conns.end());
  }

  for (auto& conn : loop->conns) {
    if (conn->fd >= 0) CloseConnection(loop, conn.get());
  }
  loop->conns.clear();
}

void CubeServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient accept failure
    if (connections_active_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    const size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    Loop* loop = loops_[target].get();
    {
      std::lock_guard<std::mutex> lock(loop->mu);
      loop->incoming.push_back(fd);
    }
    const uint64_t kick = 1;
    [[maybe_unused]] ssize_t n =
        ::write(loop->wake_fd, &kick, sizeof(kick));
  }
}

void CubeServer::AdoptIncoming(Loop* loop) {
  std::deque<int> fds;
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    fds.swap(loop->incoming);
  }
  for (int fd : fds) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = reinterpret_cast<uint64_t>(conn.get());
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      connections_active_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    loop->conns.push_back(std::move(conn));
  }
}

bool CubeServer::OnReadable(Loop* loop, Connection* conn) {
  uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->in.insert(conn->in.end(), buf, buf + n);
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) return false;  // peer closed (possibly mid-frame) — clean
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  const auto arrival = Clock::now();
  size_t consumed = 0;
  while (conn->in.size() - consumed >= kHeaderSize) {
    std::span<const uint8_t> avail(conn->in.data() + consumed,
                                   conn->in.size() - consumed);
    auto header = DecodeHeader(avail, options_.max_payload);
    if (!header.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;  // framing is untrustworthy: close without a reply
    }
    const size_t total =
        kHeaderSize + header->payload_len + kTrailerSize;
    if (avail.size() < total) break;  // wait for the rest of the frame
    const std::span<const uint8_t> frame = avail.subspan(0, total);
    if (Status st = VerifyFrame(frame); !st.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(total, std::memory_order_relaxed);
    if (!DispatchFrame(loop, conn, *header,
                       frame.subspan(kHeaderSize, header->payload_len),
                       arrival)) {
      return false;
    }
    consumed += total;
  }
  if (consumed > 0) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<ptrdiff_t>(consumed));
  }
  return true;
}

bool CubeServer::DispatchFrame(Loop* loop, Connection* conn,
                               const FrameHeader& header,
                               std::span<const uint8_t> payload,
                               Clock::time_point arrival) {
  const int op_index = OpIndex(header.opcode);
  if (op_index < 0 || header.opcode == Opcode::kReply ||
      header.opcode == Opcode::kError) {
    // Well-framed but unknown (or response-typed) opcode: the connection
    // is healthy, answer with an error frame and keep serving it.
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    const auto body = EncodeErrorReply(
        Status::InvalidArgument("unknown request opcode"));
    return SendReply(loop, conn, Opcode::kError, header.request_id, body);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Fast-reject admission (the BufferPool ticket pattern, non-blocking
  // flavor): saturation answers kUnavailable immediately so the client's
  // RetryPolicy backs off, instead of queueing unbounded work.
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.max_inflight_requests) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_at_admission_.fetch_add(1, std::memory_order_relaxed);
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    const auto body = EncodeErrorReply(
        Status::Unavailable("server at max in-flight requests"));
    return SendReply(loop, conn, Opcode::kError, header.request_id, body);
  }

  if (options_.dispatch_delay_for_test.count() > 0) {
    std::this_thread::sleep_for(options_.dispatch_delay_for_test);
  }

  OperationContext ctx;
  OperationContext* ctx_ptr = nullptr;
  if (header.deadline_ms > 0) {
    // Anchored at frame arrival, so queueing counts against the budget.
    ctx.set_deadline(arrival + std::chrono::milliseconds(header.deadline_ms));
    ctx_ptr = &ctx;
  }

  Result<std::vector<uint8_t>> reply = [&]() -> Result<std::vector<uint8_t>> {
    if (ctx_ptr != nullptr && ctx_ptr->deadline_exceeded()) {
      deadline_expired_before_dispatch_.fetch_add(1,
                                                  std::memory_order_relaxed);
      return Status::DeadlineExceeded("deadline expired before dispatch");
    }
    return HandleRequest(header, payload, ctx_ptr);
  }();
  inflight_.fetch_sub(1, std::memory_order_acq_rel);

  const uint64_t micros =
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                Clock::now() - arrival)
                                .count());
  RecordLatency(header.opcode, micros);

  if (reply.ok()) {
    responses_.fetch_add(1, std::memory_order_relaxed);
    return SendReply(loop, conn, Opcode::kReply, header.request_id, *reply);
  }
  error_responses_.fetch_add(1, std::memory_order_relaxed);
  const auto body = EncodeErrorReply(reply.status());
  return SendReply(loop, conn, Opcode::kError, header.request_id, body);
}

Result<std::vector<uint8_t>> CubeServer::HandleRequest(
    const FrameHeader& header, std::span<const uint8_t> payload,
    OperationContext* ctx) {
  switch (header.opcode) {
    case Opcode::kPing: {
      if (!payload.empty()) {
        return Status::InvalidArgument("ping carries no payload");
      }
      return std::vector<uint8_t>{};
    }
    case Opcode::kOpenCube: {
      SS_ASSIGN_OR_RETURN(const auto req, DecodeCubeNameRequest(payload));
      SS_RETURN_IF_ERROR(registry_->Open(req.cube).status());
      return std::vector<uint8_t>{};
    }
    case Opcode::kCloseCube: {
      SS_ASSIGN_OR_RETURN(const auto req, DecodeCubeNameRequest(payload));
      SS_RETURN_IF_ERROR(registry_->CloseCube(req.cube));
      return std::vector<uint8_t>{};
    }
    case Opcode::kPoint: {
      SS_ASSIGN_OR_RETURN(const auto req, DecodePointRequest(payload));
      SS_ASSIGN_OR_RETURN(const auto handle, registry_->Find(req.cube));
      SS_ASSIGN_OR_RETURN(
          const DegradedResult result,
          handle->PointQuery(req.point, req.max_error, ctx));
      return EncodeQueryReply(QueryReply::Degraded(result));
    }
    case Opcode::kSum: {
      SS_ASSIGN_OR_RETURN(const auto req, DecodeSumRequest(payload));
      SS_ASSIGN_OR_RETURN(const auto handle, registry_->Find(req.cube));
      SS_ASSIGN_OR_RETURN(
          const DegradedResult result,
          handle->RangeSum(req.lo, req.hi, req.max_error, ctx));
      return EncodeQueryReply(QueryReply::Degraded(result));
    }
    case Opcode::kAdd: {
      SS_ASSIGN_OR_RETURN(const auto req, DecodeAddRequest(payload));
      SS_ASSIGN_OR_RETURN(const auto handle, registry_->Find(req.cube));
      SS_RETURN_IF_ERROR(handle->Add(req.coords, req.delta, ctx));
      return std::vector<uint8_t>{};
    }
    case Opcode::kUpdate: {
      SS_ASSIGN_OR_RETURN(const auto req,
                          DecodeUpdateRequest(payload, options_.max_payload));
      SS_ASSIGN_OR_RETURN(const auto handle, registry_->Find(req.cube));
      Tensor deltas{TensorShape(req.dims)};
      std::copy(req.values.begin(), req.values.end(), deltas.data().begin());
      SS_RETURN_IF_ERROR(handle->Update(deltas, req.origin, ctx));
      return std::vector<uint8_t>{};
    }
    case Opcode::kStats:
      return HandleStats(payload);
    default:
      return Status::InvalidArgument("unknown request opcode");
  }
}

Result<std::vector<uint8_t>> CubeServer::HandleStats(
    std::span<const uint8_t> payload) {
  SS_ASSIGN_OR_RETURN(const auto req, DecodeCubeNameRequest(payload));
  StatsReply reply;
  if (req.cube.empty()) {
    for (auto& pair : stats().Flatten()) {
      reply.counters.push_back(std::move(pair));
    }
    reply.counters.emplace_back("open_cubes", registry_->Names().size());
  } else {
    SS_ASSIGN_OR_RETURN(const auto handle, registry_->Find(req.cube));
    FlattenServingStats(handle->stats(), &reply);
    reply.counters.emplace_back("num_shards", handle->num_shards());
  }
  return EncodeStatsReply(reply);
}

bool CubeServer::SendReply(Loop* loop, Connection* conn, Opcode opcode,
                           uint64_t request_id,
                           std::span<const uint8_t> body) {
  FrameHeader header;
  header.opcode = opcode;
  header.request_id = request_id;
  const auto frame = EncodeFrame(header, body);
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  bytes_out_.fetch_add(frame.size(), std::memory_order_relaxed);
  conn->out.insert(conn->out.end(), frame.begin(), frame.end());
  if (!FlushWrites(conn)) return false;
  ArmWritable(loop, conn, conn->out_pos < conn->out.size());
  return true;
}

bool CubeServer::FlushWrites(Connection* conn) {
  while (conn->out_pos < conn->out.size()) {
    const ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_pos,
                              conn->out.size() - conn->out_pos);
    if (n > 0) {
      conn->out_pos += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  if (conn->out_pos >= conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
  }
  return true;
}

void CubeServer::ArmWritable(Loop* loop, Connection* conn, bool want_out) {
  if (want_out == conn->writable_armed) return;
  epoll_event ev{};
  ev.events =
      EPOLLIN | (want_out ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = reinterpret_cast<uint64_t>(conn);
  if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->writable_armed = want_out;
  }
}

bool CubeServer::OnWritable(Loop* loop, Connection* conn) {
  if (!FlushWrites(conn)) return false;
  ArmWritable(loop, conn, conn->out_pos < conn->out.size());
  return true;
}

void CubeServer::CloseConnection(Loop* loop, Connection* conn) {
  (void)loop;
  if (conn->fd < 0) return;
  ::close(conn->fd);  // closing also deregisters from epoll
  conn->fd = -1;
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

void CubeServer::RecordLatency(Opcode opcode, uint64_t micros) {
  const int op = OpIndex(opcode);
  if (op < 0) return;
  size_t bucket = std::size(kLatencyBucketUs);
  for (size_t b = 0; b < std::size(kLatencyBucketUs); ++b) {
    if (micros <= kLatencyBucketUs[b]) {
      bucket = b;
      break;
    }
  }
  latency_[static_cast<size_t>(op)][bucket].fetch_add(
      1, std::memory_order_relaxed);
}

ServerStats CubeServer::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_active = connections_active_.load();
  s.connections_rejected = connections_rejected_.load();
  s.requests = requests_.load();
  s.responses = responses_.load();
  s.error_responses = error_responses_.load();
  s.rejected_at_admission = rejected_at_admission_.load();
  s.deadline_expired_before_dispatch =
      deadline_expired_before_dispatch_.load();
  s.frames_in = frames_in_.load();
  s.frames_out = frames_out_.load();
  s.bytes_in = bytes_in_.load();
  s.bytes_out = bytes_out_.load();
  s.protocol_errors = protocol_errors_.load();
  for (size_t op = 0; op < kTrackedOps; ++op) {
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      s.latency[op][b] = latency_[op][b].load(std::memory_order_relaxed);
    }
  }
  return s;
}

}  // namespace net
}  // namespace shiftsplit
