#include "shiftsplit/net/cube_registry.h"

#include <utility>

namespace shiftsplit {
namespace net {

// ---------------------------------------------------------------------------
// ServeHandle.

Result<std::shared_ptr<ServeHandle>> ServeHandle::Open(
    const std::string& dir, uint64_t pool_blocks,
    const ServingCube::Options& options) {
  auto handle = std::shared_ptr<ServeHandle>(new ServeHandle());
  if (ShardedCube::IsShardedDir(dir)) {
    ShardedCube::Options sharded_options;
    sharded_options.serving = options;
    sharded_options.pool_blocks_per_shard = pool_blocks;
    SS_ASSIGN_OR_RETURN(auto cube,
                        ShardedCube::OpenOnDisk(dir, sharded_options));
    handle->log_dims_ = cube->router().log_dims();
    handle->sharded_ = std::move(cube);
    return handle;
  }
  SS_ASSIGN_OR_RETURN(auto cube,
                      ServingCube::OpenOnDisk(dir, pool_blocks, options));
  handle->log_dims_ = cube->cube()->log_dims();
  handle->mono_ = std::move(cube);
  return handle;
}

std::shared_ptr<ServeHandle> ServeHandle::Wrap(
    std::shared_ptr<ServingCube> cube) {
  auto handle = std::shared_ptr<ServeHandle>(new ServeHandle());
  handle->log_dims_ = cube->cube()->log_dims();
  handle->mono_ = std::move(cube);
  return handle;
}

std::shared_ptr<ServeHandle> ServeHandle::Wrap(
    std::shared_ptr<ShardedCube> cube) {
  auto handle = std::shared_ptr<ServeHandle>(new ServeHandle());
  handle->log_dims_ = cube->router().log_dims();
  handle->sharded_ = std::move(cube);
  return handle;
}

Status ServeHandle::Add(std::span<const uint64_t> coords, double delta,
                        OperationContext* ctx) {
  return sharded_ ? sharded_->Add(coords, delta, ctx)
                  : mono_->Add(coords, delta, ctx);
}

Status ServeHandle::Update(const Tensor& deltas,
                           std::span<const uint64_t> origin,
                           OperationContext* ctx) {
  return sharded_ ? sharded_->Update(deltas, origin, ctx)
                  : mono_->Update(deltas, origin, ctx);
}

Result<DegradedResult> ServeHandle::PointQuery(std::span<const uint64_t> point,
                                               double max_error,
                                               OperationContext* ctx) {
  if (sharded_ && max_error > 0.0) {
    QueryOptions options;
    options.context = ctx;
    options.max_error = max_error;
    return sharded_->PointQuery(point, options);
  }
  auto exact = sharded_
                   ? sharded_->PointQuery(point, /*use_scaling_slots=*/true,
                                          ctx)
                   : mono_->PointQuery(point, /*use_scaling_slots=*/true, ctx);
  SS_RETURN_IF_ERROR(exact.status());
  DegradedResult result;
  result.value = *exact;
  return result;
}

Result<DegradedResult> ServeHandle::RangeSum(std::span<const uint64_t> lo,
                                             std::span<const uint64_t> hi,
                                             double max_error,
                                             OperationContext* ctx) {
  if (sharded_ && max_error > 0.0) {
    QueryOptions options;
    options.context = ctx;
    options.max_error = max_error;
    return sharded_->RangeSum(lo, hi, options);
  }
  auto exact = sharded_ ? sharded_->RangeSum(lo, hi, ctx)
                        : mono_->RangeSum(lo, hi, ctx);
  SS_RETURN_IF_ERROR(exact.status());
  DegradedResult result;
  result.value = *exact;
  return result;
}

ServingStats ServeHandle::stats() const {
  return sharded_ ? sharded_->stats() : mono_->stats();
}

Status ServeHandle::DrainAll() {
  return sharded_ ? sharded_->DrainAll() : mono_->DrainAll();
}

Status ServeHandle::Close() {
  return sharded_ ? sharded_->Close() : mono_->Close();
}

// ---------------------------------------------------------------------------
// CubeRegistry.

void CubeRegistry::Configure(const std::string& name,
                             const std::string& dir) {
  std::unique_lock lock(mu_);
  configured_[name] = dir;
}

Result<std::shared_ptr<ServeHandle>> CubeRegistry::Open(
    const std::string& name, const std::string& dir) {
  std::string open_dir = dir;
  {
    std::unique_lock lock(mu_);
    auto it = open_.find(name);
    if (it != open_.end()) return it->second;
    if (open_dir.empty()) {
      auto conf = configured_.find(name);
      if (conf == configured_.end()) {
        return Status::NotFound("cube \"" + name +
                                "\" is not configured; pass a directory");
      }
      open_dir = conf->second;
    }
  }
  // The open itself runs unlocked (it replays logs — possibly seconds);
  // concurrent opens of the same name race benignly: the loser's instance
  // is closed and the winner's handle returned.
  SS_ASSIGN_OR_RETURN(
      auto handle,
      ServeHandle::Open(open_dir, options_.pool_blocks, options_.serving));
  std::unique_lock lock(mu_);
  auto [it, inserted] = open_.emplace(name, handle);
  if (!inserted) {
    lock.unlock();
    (void)handle->Close();
    return it->second;
  }
  configured_[name] = open_dir;
  return handle;
}

Status CubeRegistry::Insert(const std::string& name,
                            std::shared_ptr<ServeHandle> handle) {
  std::unique_lock lock(mu_);
  auto [it, inserted] = open_.emplace(name, std::move(handle));
  if (!inserted) {
    return Status::AlreadyExists("cube \"" + name + "\" is already open");
  }
  return Status::OK();
}

Result<std::shared_ptr<ServeHandle>> CubeRegistry::Find(
    const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = open_.find(name);
  if (it == open_.end()) {
    return Status::NotFound("cube \"" + name + "\" is not open");
  }
  return it->second;
}

Status CubeRegistry::CloseCube(const std::string& name) {
  std::shared_ptr<ServeHandle> handle;
  {
    std::unique_lock lock(mu_);
    auto it = open_.find(name);
    if (it == open_.end()) {
      return Status::NotFound("cube \"" + name + "\" is not open");
    }
    handle = std::move(it->second);
    open_.erase(it);
  }
  return handle->Close();
}

Status CubeRegistry::CloseAll() {
  std::map<std::string, std::shared_ptr<ServeHandle>> victims;
  {
    std::unique_lock lock(mu_);
    victims.swap(open_);
  }
  Status first;
  for (auto& [name, handle] : victims) {
    Status st = handle->Close();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

std::vector<std::string> CubeRegistry::Names() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(open_.size());
  for (const auto& [name, handle] : open_) names.push_back(name);
  return names;
}

}  // namespace net
}  // namespace shiftsplit
