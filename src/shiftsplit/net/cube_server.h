// Thread-per-core epoll TCP front-end for the serving layer (DESIGN.md §13).
//
// Loop 0 owns the listening socket; accepted connections are handed to the
// event loops round-robin (each loop has its own epoll instance and an
// eventfd wakeup), so a connection lives on exactly one thread and needs no
// per-connection locking. Request handlers run inline on the loop thread
// against the shared CubeRegistry — the serving layer underneath is the
// concurrent part (ServingCube/ShardedCube are thread-safe), the socket
// layer just frames bytes.
//
// Admission control mirrors the BufferPool ticket pattern in fast-reject
// form (an event loop must never block): a connection beyond
// `max_connections` is accepted and immediately closed (counted); a request
// beyond `max_inflight_requests` gets an immediate kUnavailable error frame
// and the connection stays healthy — the client's RetryPolicy backs off and
// retries, exactly like a writer bounced by buffer backpressure.
//
// Deadlines: a nonzero deadline_ms in the frame header becomes a per-request
// OperationContext whose deadline is anchored at frame arrival (parse
// completion), so queueing delay counts against the budget. A request whose
// deadline passed before its handler ran is answered kDeadlineExceeded
// without touching the cube (deadline_expired_before_dispatch).
//
// Malformed frames — bad magic, unsupported version, nonzero flags,
// oversized payload_len, CRC mismatch — poison only the connection: it is
// closed (protocol_errors) without a reply, since framing can no longer be
// trusted. An unknown opcode inside a well-framed request is answered
// kInvalidArgument and the connection lives on. A mid-frame disconnect is a
// clean close. None of these touch any cube.
//
// Shutdown (Stop) is a graceful drain: the listener closes first, in-flight
// handlers finish, pending response bytes flush (bounded by drain_timeout),
// then connections close and the loops join. Stop does not close registry
// cubes — the owner decides (the CLI calls registry->CloseAll() after Stop).

#ifndef SHIFTSPLIT_NET_CUBE_SERVER_H_
#define SHIFTSPLIT_NET_CUBE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "shiftsplit/net/cube_registry.h"
#include "shiftsplit/net/server_stats.h"
#include "shiftsplit/net/wire.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {
namespace net {

class CubeServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;       ///< 0 binds an ephemeral port (see port())
    uint32_t num_threads = 0;  ///< 0 = hardware concurrency (min 1)
    uint32_t max_connections = 1024;
    uint32_t max_inflight_requests = 256;
    uint32_t max_payload = kDefaultMaxPayload;
    std::chrono::milliseconds drain_timeout{2000};
    /// Test hook: sleep this long between frame arrival and handler
    /// dispatch — deterministic queueing for the deadline/admission tests.
    std::chrono::milliseconds dispatch_delay_for_test{0};
  };

  /// \brief The registry is shared, not owned: tests (and the bench) keep a
  /// handle to query the same cubes in-process and compare bit-for-bit.
  CubeServer(std::shared_ptr<CubeRegistry> registry, const Options& options);
  ~CubeServer();
  CubeServer(const CubeServer&) = delete;
  CubeServer& operator=(const CubeServer&) = delete;

  /// \brief Binds, listens and spawns the event loops. Fails without
  /// side effects (no threads) when the bind/listen fails.
  Status Start();

  /// \brief Graceful drain; idempotent. Safe to call from any thread
  /// except an event loop.
  void Stop();

  /// \brief The bound TCP port (after Start; the ephemeral port when
  /// options.port was 0).
  uint16_t port() const { return port_; }

  ServerStats stats() const;
  CubeRegistry* registry() { return registry_.get(); }

 private:
  struct Connection {
    int fd = -1;
    std::vector<uint8_t> in;    ///< bytes read, not yet framed
    std::vector<uint8_t> out;   ///< encoded frames not yet written
    size_t out_pos = 0;
    bool writable_armed = false;
  };

  struct Loop {
    int epoll_fd = -1;
    int wake_fd = -1;           ///< eventfd: new connections / stop
    std::mutex mu;
    std::deque<int> incoming;   ///< fds handed off by the acceptor
    std::vector<std::unique_ptr<Connection>> conns;
    std::thread thread;
  };

  void LoopMain(size_t index);
  void AcceptReady();
  void AdoptIncoming(Loop* loop);
  /// Drains readable bytes and dispatches every complete frame. False:
  /// close the connection.
  bool OnReadable(Loop* loop, Connection* conn);
  bool OnWritable(Loop* loop, Connection* conn);
  /// One complete, CRC-valid frame. False: close the connection.
  bool DispatchFrame(Loop* loop, Connection* conn, const FrameHeader& header,
                     std::span<const uint8_t> payload,
                     std::chrono::steady_clock::time_point arrival);
  /// Runs the opcode handler; returns the reply body (or an error Status).
  Result<std::vector<uint8_t>> HandleRequest(const FrameHeader& header,
                                             std::span<const uint8_t> payload,
                                             OperationContext* ctx);
  Result<std::vector<uint8_t>> HandleStats(std::span<const uint8_t> payload);
  /// Frames and queues a reply, flushing what the socket accepts and
  /// arming EPOLLOUT for the rest. False: hard write error, close.
  bool SendReply(Loop* loop, Connection* conn, Opcode opcode,
                 uint64_t request_id, std::span<const uint8_t> body);
  void CloseConnection(Loop* loop, Connection* conn);
  bool FlushWrites(Connection* conn);
  void ArmWritable(Loop* loop, Connection* conn, bool want_out);
  void RecordLatency(Opcode opcode, uint64_t micros);

  std::shared_ptr<CubeRegistry> registry_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<size_t> next_loop_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex lifecycle_mu_;  ///< serializes Start/Stop

  // Counters (relaxed atomics; stats() snapshots).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> error_responses_{0};
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> rejected_at_admission_{0};
  std::atomic<uint64_t> deadline_expired_before_dispatch_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::array<std::array<std::atomic<uint64_t>, kLatencyBuckets>, kTrackedOps>
      latency_{};
};

}  // namespace net
}  // namespace shiftsplit

#endif  // SHIFTSPLIT_NET_CUBE_SERVER_H_
