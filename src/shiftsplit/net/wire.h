// The shiftsplit binary wire protocol (DESIGN.md §13): length-prefixed
// frames with a fixed little-endian header and a CRC32C trailer computed
// over header + payload via the dispatched kernel (kernels::Active().crc32c
// through util/crc32c.h), so a hardware-CRC server and a scalar client
// agree bit-for-bit.
//
//   offset  size  field
//        0     4  magic        0x53534e31 ("SSN1")
//        4     2  version      protocol version, currently 1
//        6     1  opcode       Opcode
//        7     1  flags        reserved, must be 0
//        8     8  request_id   echoed verbatim in the response frame
//       16     4  deadline_ms  request budget; 0 = no deadline
//       20     4  payload_len  bytes following the header, before the CRC
//       24     …  payload      opcode-specific body (see codecs below)
//   24+len     4  crc32c       over bytes [0, 24+len)
//
// Doubles travel as their raw IEEE-754 bit patterns (bit_cast through
// uint64_t), so a value decoded from a reply is bit-identical to the value
// the handler computed — the end-to-end exactness contract of the serving
// layer extends across the socket.
//
// Error replies carry StatusCodeToWire(code) (util/status.h) — explicit
// stable values, exhaustively round-trip tested — plus the message text, so
// a client reconstructs the server-side Status without collapsing codes.

#ifndef SHIFTSPLIT_NET_WIRE_H_
#define SHIFTSPLIT_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "shiftsplit/core/query.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {
namespace net {

inline constexpr uint32_t kWireMagic = 0x53534e31;  // "SSN1"
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kHeaderSize = 24;
inline constexpr size_t kTrailerSize = 4;
/// Default ceiling on payload_len; a larger advertised length is a protocol
/// error (the connection is closed before any allocation).
inline constexpr uint32_t kDefaultMaxPayload = 1u << 20;

/// \brief Frame opcodes. Requests < 64; responses >= 64.
enum class Opcode : uint8_t {
  kPing = 1,       ///< empty payload; reply is empty
  kOpenCube = 2,   ///< open (or look up) a named cube in the registry
  kCloseCube = 3,  ///< close a named cube
  kPoint = 4,      ///< point query
  kSum = 5,        ///< range sum
  kAdd = 6,        ///< one-cell delta
  kUpdate = 7,     ///< dense box of deltas
  kStats = 8,      ///< server or per-cube counters

  kReply = 64,     ///< success; payload is the opcode-specific reply body
  kError = 65,     ///< failure; payload is {status wire code, message}
};

/// \brief True for opcode values this build knows (either direction).
bool IsKnownOpcode(uint8_t raw);

/// \brief The fixed frame header, in decoded (host) form.
struct FrameHeader {
  Opcode opcode = Opcode::kPing;
  uint64_t request_id = 0;
  uint32_t deadline_ms = 0;  ///< 0 = no deadline
  uint32_t payload_len = 0;
};

/// \brief Serializes header + payload + CRC trailer into one contiguous
/// frame ready to write to a socket.
std::vector<uint8_t> EncodeFrame(const FrameHeader& header,
                                 std::span<const uint8_t> payload);

/// \brief Decodes and validates the fixed header from `bytes` (which must
/// hold at least kHeaderSize). Checks magic, version, flags and the
/// payload-length ceiling — everything that can be validated before the
/// payload arrives. The CRC is checked later by VerifyFrame.
Result<FrameHeader> DecodeHeader(std::span<const uint8_t> bytes,
                                 uint32_t max_payload = kDefaultMaxPayload);

/// \brief Verifies the CRC trailer of a complete frame (header + payload +
/// trailer, exactly kHeaderSize + payload_len + kTrailerSize bytes).
Status VerifyFrame(std::span<const uint8_t> frame);

/// \brief Bounds-checked little-endian payload writer.
class PayloadWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// IEEE-754 bit pattern, so the value round-trips bit-identically.
  void PutF64(double v);
  /// u16 length prefix + raw bytes (length-checked: at most 65535).
  void PutString(std::string_view s);
  /// u8 dimension count + one u64 per coordinate.
  void PutCoords(std::span<const uint64_t> coords);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// \brief Bounds-checked little-endian payload reader: every getter fails
/// with kInvalidArgument instead of reading past the end, so a hostile
/// payload cannot walk the parser out of bounds.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<double> GetF64();
  Result<std::string> GetString();
  Result<std::vector<uint64_t>> GetCoords();

  size_t remaining() const { return bytes_.size() - pos_; }
  /// Trailing junk after a parsed body is itself a protocol error.
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Request bodies.

/// kOpenCube / kCloseCube / kStats: just a cube name (kStats with an empty
/// name asks for the server's own counters).
struct CubeNameRequest {
  std::string cube;
};

/// kPoint: `max_error` > 0 opts into a degraded answer within that bound
/// (QueryOptions::max_error); 0 demands exactness.
struct PointRequest {
  std::string cube;
  std::vector<uint64_t> point;
  double max_error = 0.0;
};

/// kSum over the inclusive box [lo, hi]; same max_error contract.
struct SumRequest {
  std::string cube;
  std::vector<uint64_t> lo;
  std::vector<uint64_t> hi;
  double max_error = 0.0;
};

/// kAdd: one accumulate delta.
struct AddRequest {
  std::string cube;
  std::vector<uint64_t> coords;
  double delta = 0.0;
};

/// kUpdate: a dense row-major box of deltas anchored at `origin`.
struct UpdateRequest {
  std::string cube;
  std::vector<uint64_t> origin;
  std::vector<uint64_t> dims;    ///< box extents, row-major values follow
  std::vector<double> values;    ///< Π dims entries
};

std::vector<uint8_t> EncodeCubeNameRequest(const CubeNameRequest& req);
Result<CubeNameRequest> DecodeCubeNameRequest(std::span<const uint8_t> body);
std::vector<uint8_t> EncodePointRequest(const PointRequest& req);
Result<PointRequest> DecodePointRequest(std::span<const uint8_t> body);
std::vector<uint8_t> EncodeSumRequest(const SumRequest& req);
Result<SumRequest> DecodeSumRequest(std::span<const uint8_t> body);
std::vector<uint8_t> EncodeAddRequest(const AddRequest& req);
Result<AddRequest> DecodeAddRequest(std::span<const uint8_t> body);
std::vector<uint8_t> EncodeUpdateRequest(const UpdateRequest& req);
Result<UpdateRequest> DecodeUpdateRequest(std::span<const uint8_t> body,
                                          uint32_t max_payload =
                                              kDefaultMaxPayload);

// ---------------------------------------------------------------------------
// Reply bodies.

/// kPoint/kSum reply: either an exact value or a full DegradedResult —
/// value, hard error bound, skipped blocks/shards and the reason — so a
/// degraded answer's bound survives the wire bit-identically too.
struct QueryReply {
  bool degraded = false;
  double value = 0.0;
  double error_bound = 0.0;
  uint64_t blocks_missing = 0;
  DegradedReason reason = DegradedReason::kNone;
  std::vector<uint32_t> shards_missing;

  static QueryReply Exact(double v) {
    QueryReply r;
    r.value = v;
    return r;
  }
  static QueryReply Degraded(const DegradedResult& d);
  DegradedResult ToDegradedResult() const;
};

/// kStats reply: ordered key → counter pairs (flat, so the schema can grow
/// without a protocol bump; clients print what they get).
struct StatsReply {
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// kError reply body: the Status, with its code as the stable wire value.
struct ErrorReply {
  Status status;
};

std::vector<uint8_t> EncodeQueryReply(const QueryReply& reply);
Result<QueryReply> DecodeQueryReply(std::span<const uint8_t> body);
std::vector<uint8_t> EncodeStatsReply(const StatsReply& reply);
Result<StatsReply> DecodeStatsReply(std::span<const uint8_t> body);
std::vector<uint8_t> EncodeErrorReply(const Status& status);
/// Decodes an error body back to the original Status. A wire code this
/// build does not know maps to kInternal with the peer's code preserved in
/// the message — never silently collapsed onto a real code.
Result<ErrorReply> DecodeErrorReply(std::span<const uint8_t> body);

/// \brief Stable wire value of a DegradedReason (protocol surface, like
/// StatusCodeToWire).
uint8_t DegradedReasonToWire(DegradedReason reason);
Result<DegradedReason> DegradedReasonFromWire(uint8_t wire);

}  // namespace net
}  // namespace shiftsplit

#endif  // SHIFTSPLIT_NET_WIRE_H_
