#include "shiftsplit/net/wire.h"

#include <bit>

#include "shiftsplit/util/crc32c.h"

namespace shiftsplit {
namespace net {

namespace {

void PutLE16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutLE32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutLE64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t ReadLE16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (uint16_t{p[1]} << 8));
}

uint32_t ReadLE32(const uint8_t* p) {
  return p[0] | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}

uint64_t ReadLE64(const uint8_t* p) {
  return ReadLE32(p) | (uint64_t{ReadLE32(p + 4)} << 32);
}

}  // namespace

bool IsKnownOpcode(uint8_t raw) {
  switch (static_cast<Opcode>(raw)) {
    case Opcode::kPing:
    case Opcode::kOpenCube:
    case Opcode::kCloseCube:
    case Opcode::kPoint:
    case Opcode::kSum:
    case Opcode::kAdd:
    case Opcode::kUpdate:
    case Opcode::kStats:
    case Opcode::kReply:
    case Opcode::kError:
      return true;
  }
  return false;
}

std::vector<uint8_t> EncodeFrame(const FrameHeader& header,
                                 std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderSize + payload.size() + kTrailerSize);
  PutLE32(&frame, kWireMagic);
  PutLE16(&frame, kWireVersion);
  frame.push_back(static_cast<uint8_t>(header.opcode));
  frame.push_back(0);  // flags
  PutLE64(&frame, header.request_id);
  PutLE32(&frame, header.deadline_ms);
  PutLE32(&frame, static_cast<uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32c(frame.data(), frame.size());
  PutLE32(&frame, crc);
  return frame;
}

Result<FrameHeader> DecodeHeader(std::span<const uint8_t> bytes,
                                 uint32_t max_payload) {
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("wire: truncated frame header");
  }
  const uint8_t* p = bytes.data();
  if (ReadLE32(p) != kWireMagic) {
    return Status::InvalidArgument("wire: bad magic");
  }
  if (ReadLE16(p + 4) != kWireVersion) {
    return Status::InvalidArgument("wire: unsupported protocol version");
  }
  if (p[7] != 0) {
    return Status::InvalidArgument("wire: nonzero reserved flags");
  }
  FrameHeader header;
  header.opcode = static_cast<Opcode>(p[6]);
  header.request_id = ReadLE64(p + 8);
  header.deadline_ms = ReadLE32(p + 16);
  header.payload_len = ReadLE32(p + 20);
  if (header.payload_len > max_payload) {
    return Status::InvalidArgument("wire: payload length exceeds limit");
  }
  return header;
}

Status VerifyFrame(std::span<const uint8_t> frame) {
  if (frame.size() < kHeaderSize + kTrailerSize) {
    return Status::InvalidArgument("wire: frame shorter than header+trailer");
  }
  const size_t body = frame.size() - kTrailerSize;
  const uint32_t stored = ReadLE32(frame.data() + body);
  const uint32_t computed = Crc32c(frame.data(), body);
  if (stored != computed) {
    return Status::ChecksumMismatch("wire: frame CRC mismatch");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PayloadWriter / PayloadReader.

void PayloadWriter::PutU16(uint16_t v) { PutLE16(&bytes_, v); }
void PayloadWriter::PutU32(uint32_t v) { PutLE32(&bytes_, v); }
void PayloadWriter::PutU64(uint64_t v) { PutLE64(&bytes_, v); }

void PayloadWriter::PutF64(double v) {
  PutLE64(&bytes_, std::bit_cast<uint64_t>(v));
}

void PayloadWriter::PutString(std::string_view s) {
  PutU16(static_cast<uint16_t>(s.size() <= 0xffff ? s.size() : 0xffff));
  const size_t n = s.size() <= 0xffff ? s.size() : 0xffff;
  bytes_.insert(bytes_.end(), s.begin(), s.begin() + n);
}

void PayloadWriter::PutCoords(std::span<const uint64_t> coords) {
  PutU8(static_cast<uint8_t>(coords.size()));
  for (uint64_t c : coords) PutU64(c);
}

Status PayloadReader::Need(size_t n) const {
  if (bytes_.size() - pos_ < n) {
    return Status::InvalidArgument("wire: payload truncated");
  }
  return Status::OK();
}

Result<uint8_t> PayloadReader::GetU8() {
  SS_RETURN_IF_ERROR(Need(1));
  return bytes_[pos_++];
}

Result<uint16_t> PayloadReader::GetU16() {
  SS_RETURN_IF_ERROR(Need(2));
  const uint16_t v = ReadLE16(bytes_.data() + pos_);
  pos_ += 2;
  return v;
}

Result<uint32_t> PayloadReader::GetU32() {
  SS_RETURN_IF_ERROR(Need(4));
  const uint32_t v = ReadLE32(bytes_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> PayloadReader::GetU64() {
  SS_RETURN_IF_ERROR(Need(8));
  const uint64_t v = ReadLE64(bytes_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<double> PayloadReader::GetF64() {
  SS_ASSIGN_OR_RETURN(const uint64_t bits, GetU64());
  return std::bit_cast<double>(bits);
}

Result<std::string> PayloadReader::GetString() {
  SS_ASSIGN_OR_RETURN(const uint16_t len, GetU16());
  SS_RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
  pos_ += len;
  return s;
}

Result<std::vector<uint64_t>> PayloadReader::GetCoords() {
  SS_ASSIGN_OR_RETURN(const uint8_t ndim, GetU8());
  std::vector<uint64_t> coords(ndim);
  for (uint8_t d = 0; d < ndim; ++d) {
    SS_ASSIGN_OR_RETURN(coords[d], GetU64());
  }
  return coords;
}

Status PayloadReader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::InvalidArgument("wire: trailing bytes after payload body");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Request codecs.

std::vector<uint8_t> EncodeCubeNameRequest(const CubeNameRequest& req) {
  PayloadWriter w;
  w.PutString(req.cube);
  return w.Take();
}

Result<CubeNameRequest> DecodeCubeNameRequest(std::span<const uint8_t> body) {
  PayloadReader r(body);
  CubeNameRequest req;
  SS_ASSIGN_OR_RETURN(req.cube, r.GetString());
  SS_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

std::vector<uint8_t> EncodePointRequest(const PointRequest& req) {
  PayloadWriter w;
  w.PutString(req.cube);
  w.PutF64(req.max_error);
  w.PutCoords(req.point);
  return w.Take();
}

Result<PointRequest> DecodePointRequest(std::span<const uint8_t> body) {
  PayloadReader r(body);
  PointRequest req;
  SS_ASSIGN_OR_RETURN(req.cube, r.GetString());
  SS_ASSIGN_OR_RETURN(req.max_error, r.GetF64());
  SS_ASSIGN_OR_RETURN(req.point, r.GetCoords());
  SS_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

std::vector<uint8_t> EncodeSumRequest(const SumRequest& req) {
  PayloadWriter w;
  w.PutString(req.cube);
  w.PutF64(req.max_error);
  w.PutCoords(req.lo);
  w.PutCoords(req.hi);
  return w.Take();
}

Result<SumRequest> DecodeSumRequest(std::span<const uint8_t> body) {
  PayloadReader r(body);
  SumRequest req;
  SS_ASSIGN_OR_RETURN(req.cube, r.GetString());
  SS_ASSIGN_OR_RETURN(req.max_error, r.GetF64());
  SS_ASSIGN_OR_RETURN(req.lo, r.GetCoords());
  SS_ASSIGN_OR_RETURN(req.hi, r.GetCoords());
  if (req.lo.size() != req.hi.size()) {
    return Status::InvalidArgument("wire: sum bounds dimensionality mismatch");
  }
  SS_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

std::vector<uint8_t> EncodeAddRequest(const AddRequest& req) {
  PayloadWriter w;
  w.PutString(req.cube);
  w.PutF64(req.delta);
  w.PutCoords(req.coords);
  return w.Take();
}

Result<AddRequest> DecodeAddRequest(std::span<const uint8_t> body) {
  PayloadReader r(body);
  AddRequest req;
  SS_ASSIGN_OR_RETURN(req.cube, r.GetString());
  SS_ASSIGN_OR_RETURN(req.delta, r.GetF64());
  SS_ASSIGN_OR_RETURN(req.coords, r.GetCoords());
  SS_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

std::vector<uint8_t> EncodeUpdateRequest(const UpdateRequest& req) {
  PayloadWriter w;
  w.PutString(req.cube);
  w.PutCoords(req.origin);
  w.PutCoords(req.dims);
  w.PutU32(static_cast<uint32_t>(req.values.size()));
  for (double v : req.values) w.PutF64(v);
  return w.Take();
}

Result<UpdateRequest> DecodeUpdateRequest(std::span<const uint8_t> body,
                                          uint32_t max_payload) {
  PayloadReader r(body);
  UpdateRequest req;
  SS_ASSIGN_OR_RETURN(req.cube, r.GetString());
  SS_ASSIGN_OR_RETURN(req.origin, r.GetCoords());
  SS_ASSIGN_OR_RETURN(req.dims, r.GetCoords());
  if (req.origin.size() != req.dims.size()) {
    return Status::InvalidArgument(
        "wire: update origin/dims dimensionality mismatch");
  }
  SS_ASSIGN_OR_RETURN(const uint32_t count, r.GetU32());
  // The value count must both match Π dims and fit the payload it arrived
  // in — the size is validated against real bytes, never trusted alone.
  uint64_t cells = 1;
  for (uint64_t d : req.dims) {
    if (d == 0 || cells > max_payload / d) {
      return Status::InvalidArgument("wire: update box too large");
    }
    cells *= d;
  }
  if (count != cells) {
    return Status::InvalidArgument("wire: update value count != box volume");
  }
  req.values.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    SS_ASSIGN_OR_RETURN(req.values[i], r.GetF64());
  }
  SS_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

// ---------------------------------------------------------------------------
// Reply codecs.

uint8_t DegradedReasonToWire(DegradedReason reason) {
  switch (reason) {
    case DegradedReason::kNone:
      return 0;
    case DegradedReason::kQuarantined:
      return 1;
    case DegradedReason::kPinExhaustion:
      return 2;
    case DegradedReason::kDeadline:
      return 3;
    case DegradedReason::kUnavailable:
      return 4;
    case DegradedReason::kShardUnavailable:
      return 5;
  }
  return 4;  // corrupt enum value: report as Unavailable
}

Result<DegradedReason> DegradedReasonFromWire(uint8_t wire) {
  switch (wire) {
    case 0:
      return DegradedReason::kNone;
    case 1:
      return DegradedReason::kQuarantined;
    case 2:
      return DegradedReason::kPinExhaustion;
    case 3:
      return DegradedReason::kDeadline;
    case 4:
      return DegradedReason::kUnavailable;
    case 5:
      return DegradedReason::kShardUnavailable;
  }
  return Status::InvalidArgument("wire: unknown degraded-reason value");
}

QueryReply QueryReply::Degraded(const DegradedResult& d) {
  QueryReply r;
  r.degraded = !d.exact();
  r.value = d.value;
  r.error_bound = d.error_bound;
  r.blocks_missing = d.blocks_missing;
  r.reason = d.reason;
  r.shards_missing = d.shards_missing;
  return r;
}

DegradedResult QueryReply::ToDegradedResult() const {
  DegradedResult d;
  d.value = value;
  d.error_bound = error_bound;
  d.blocks_missing = blocks_missing;
  d.reason = reason;
  d.shards_missing = shards_missing;
  return d;
}

std::vector<uint8_t> EncodeQueryReply(const QueryReply& reply) {
  PayloadWriter w;
  if (!reply.degraded) {
    w.PutU8(0);
    w.PutF64(reply.value);
    return w.Take();
  }
  w.PutU8(1);
  w.PutF64(reply.value);
  w.PutF64(reply.error_bound);
  w.PutU64(reply.blocks_missing);
  w.PutU8(DegradedReasonToWire(reply.reason));
  w.PutU16(static_cast<uint16_t>(reply.shards_missing.size()));
  for (uint32_t s : reply.shards_missing) w.PutU32(s);
  return w.Take();
}

Result<QueryReply> DecodeQueryReply(std::span<const uint8_t> body) {
  PayloadReader r(body);
  QueryReply reply;
  SS_ASSIGN_OR_RETURN(const uint8_t kind, r.GetU8());
  if (kind == 0) {
    reply.degraded = false;
    SS_ASSIGN_OR_RETURN(reply.value, r.GetF64());
    SS_RETURN_IF_ERROR(r.ExpectEnd());
    return reply;
  }
  if (kind != 1) {
    return Status::InvalidArgument("wire: unknown query-reply kind");
  }
  reply.degraded = true;
  SS_ASSIGN_OR_RETURN(reply.value, r.GetF64());
  SS_ASSIGN_OR_RETURN(reply.error_bound, r.GetF64());
  SS_ASSIGN_OR_RETURN(reply.blocks_missing, r.GetU64());
  SS_ASSIGN_OR_RETURN(const uint8_t reason_wire, r.GetU8());
  SS_ASSIGN_OR_RETURN(reply.reason, DegradedReasonFromWire(reason_wire));
  SS_ASSIGN_OR_RETURN(const uint16_t nshards, r.GetU16());
  reply.shards_missing.resize(nshards);
  for (uint16_t i = 0; i < nshards; ++i) {
    SS_ASSIGN_OR_RETURN(reply.shards_missing[i], r.GetU32());
  }
  SS_RETURN_IF_ERROR(r.ExpectEnd());
  return reply;
}

std::vector<uint8_t> EncodeStatsReply(const StatsReply& reply) {
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(reply.counters.size()));
  for (const auto& [key, value] : reply.counters) {
    w.PutString(key);
    w.PutU64(value);
  }
  return w.Take();
}

Result<StatsReply> DecodeStatsReply(std::span<const uint8_t> body) {
  PayloadReader r(body);
  StatsReply reply;
  SS_ASSIGN_OR_RETURN(const uint32_t count, r.GetU32());
  // Each counter needs at least 2 (empty string) + 8 bytes, bounding the
  // count against the bytes actually present before reserving anything.
  if (uint64_t{count} * 10 > body.size()) {
    return Status::InvalidArgument("wire: stats counter count exceeds body");
  }
  reply.counters.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SS_ASSIGN_OR_RETURN(std::string key, r.GetString());
    SS_ASSIGN_OR_RETURN(const uint64_t value, r.GetU64());
    reply.counters.emplace_back(std::move(key), value);
  }
  SS_RETURN_IF_ERROR(r.ExpectEnd());
  return reply;
}

std::vector<uint8_t> EncodeErrorReply(const Status& status) {
  PayloadWriter w;
  w.PutU32(StatusCodeToWire(status.code()));
  w.PutString(status.message());
  return w.Take();
}

Result<ErrorReply> DecodeErrorReply(std::span<const uint8_t> body) {
  PayloadReader r(body);
  SS_ASSIGN_OR_RETURN(const uint32_t wire_code, r.GetU32());
  SS_ASSIGN_OR_RETURN(std::string message, r.GetString());
  SS_RETURN_IF_ERROR(r.ExpectEnd());
  ErrorReply reply;
  const auto code = StatusCodeFromWire(wire_code);
  if (!code.has_value()) {
    reply.status = Status::Internal("wire: peer sent unknown status code " +
                                    std::to_string(wire_code) + ": " +
                                    message);
    return reply;
  }
  reply.status = Status(*code, std::move(message));
  return reply;
}

}  // namespace net
}  // namespace shiftsplit
