// Blocking client for the shiftsplit wire protocol (DESIGN.md §13).
//
// One CubeClient wraps one TCP connection (lazily connected, transparently
// reconnected) and is NOT thread-safe — give each client thread its own
// instance, like the load generator does.
//
// Retries follow util/operation_context.h's RetryPolicy with its jittered
// capped backoff, but only where a retry cannot double-apply: connects,
// and requests that are idempotent (ping/point/sum/stats/open/close). A
// write (add/update) is retried only when the failure happened before any
// request byte reached the socket — once bytes are out, an ambiguous
// failure surfaces to the caller (kUnavailable/kIOError) instead of
// guessing, because replaying an accumulate delta that was in fact applied
// would corrupt the cube.
//
// Deadlines: `deadline_ms` rides in the frame header (the server anchors it
// at frame arrival) and also bounds the client-side receive wait, with
// slack for the response to travel back.

#ifndef SHIFTSPLIT_NET_CUBE_CLIENT_H_
#define SHIFTSPLIT_NET_CUBE_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "shiftsplit/core/query.h"
#include "shiftsplit/net/wire.h"
#include "shiftsplit/util/operation_context.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {
namespace net {

class CubeClient {
 public:
  struct Options {
    RetryPolicy retry;  ///< connect + idempotent-request retries
    uint32_t max_payload = kDefaultMaxPayload;
    /// Receive-wait ceiling for requests without a deadline; with one, the
    /// wait is deadline_ms + receive_slack.
    std::chrono::milliseconds default_recv_timeout{10'000};
    std::chrono::milliseconds receive_slack{500};
  };

  CubeClient(std::string host, uint16_t port, const Options& options);
  CubeClient(std::string host, uint16_t port);
  ~CubeClient();
  CubeClient(const CubeClient&) = delete;
  CubeClient& operator=(const CubeClient&) = delete;

  Status Ping(uint32_t deadline_ms = 0);
  Status OpenCube(const std::string& cube, uint32_t deadline_ms = 0);
  Status CloseCube(const std::string& cube, uint32_t deadline_ms = 0);

  /// Exact point query; kUnavailable and friends surface verbatim.
  Result<double> Point(const std::string& cube,
                       std::span<const uint64_t> point,
                       uint32_t deadline_ms = 0);
  /// Degradable point query: max_error > 0 accepts a bounded-error answer
  /// (the DegradedResult's bound travels back bit-identically).
  Result<DegradedResult> PointDegraded(const std::string& cube,
                                       std::span<const uint64_t> point,
                                       double max_error,
                                       uint32_t deadline_ms = 0);
  Result<double> Sum(const std::string& cube, std::span<const uint64_t> lo,
                     std::span<const uint64_t> hi, uint32_t deadline_ms = 0);
  Result<DegradedResult> SumDegraded(const std::string& cube,
                                     std::span<const uint64_t> lo,
                                     std::span<const uint64_t> hi,
                                     double max_error,
                                     uint32_t deadline_ms = 0);

  /// One-cell accumulate; acked only after the server's durability contract
  /// (group-commit fsync) held. Never retried past first byte sent.
  Status Add(const std::string& cube, std::span<const uint64_t> coords,
             double delta, uint32_t deadline_ms = 0);
  /// Dense row-major box of deltas anchored at `origin`.
  Status Update(const std::string& cube, std::span<const uint64_t> origin,
                std::span<const uint64_t> dims,
                std::span<const double> values, uint32_t deadline_ms = 0);

  /// Server counters (empty cube name) or one cube's ServingStats counters.
  Result<StatsReply> Stats(const std::string& cube = "",
                           uint32_t deadline_ms = 0);

  /// \brief Drops the connection; the next request reconnects.
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

 private:
  /// Sends one request frame and reads the matching response. Idempotent
  /// requests retry per the policy; non-idempotent ones only until the
  /// first byte is sent.
  Result<std::vector<uint8_t>> Roundtrip(Opcode opcode,
                                         std::span<const uint8_t> payload,
                                         uint32_t deadline_ms,
                                         bool idempotent);
  Result<std::vector<uint8_t>> RoundtripOnce(Opcode opcode,
                                             std::span<const uint8_t> payload,
                                             uint32_t deadline_ms,
                                             bool* sent_bytes,
                                             bool* app_error);
  Status Connect();
  Status SendAll(std::span<const uint8_t> bytes, bool* sent_bytes);
  Status RecvAll(uint8_t* buf, size_t size);
  Result<QueryReply> QueryRoundtrip(Opcode opcode,
                                    std::span<const uint8_t> payload,
                                    uint32_t deadline_ms);

  std::string host_;
  uint16_t port_ = 0;
  Options options_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  uint64_t jitter_state_ = 0x636c69656e74ull;
};

}  // namespace net
}  // namespace shiftsplit

#endif  // SHIFTSPLIT_NET_CUBE_CLIENT_H_
