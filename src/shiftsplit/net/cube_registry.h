// Multi-tenant cube registry for the network front-end (DESIGN.md §13):
// maps cube names to open serving instances — monolithic ServingCubes or
// ShardedCubes, auto-detected from the store directory — so one server
// process serves many datasets concurrently.
//
// Lifecycle: names are Configure()d (bound to a directory, e.g. from the
// CLI's --cube NAME=DIR list) and opened lazily or eagerly; Open() on an
// unconfigured name requires an explicit directory. CloseCube drains and
// closes one tenant; CloseAll is the graceful-drain path the server runs on
// shutdown. Handles are shared_ptrs, so an in-flight request on a cube
// being closed finishes against the live instance — the close drains after
// the map drops the name, and stragglers fail cleanly on the closed cube
// rather than dangling.

#ifndef SHIFTSPLIT_NET_CUBE_REGISTRY_H_
#define SHIFTSPLIT_NET_CUBE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "shiftsplit/core/query.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/service/sharded_cube.h"
#include "shiftsplit/util/operation_context.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {
namespace net {

/// \brief Uniform serving interface over one tenant: either a monolithic
/// ServingCube or a ShardedCube, with the same operations the wire handlers
/// need. Thread-safe (both wrapped types are).
class ServeHandle {
 public:
  /// \brief Opens the store under `dir`, auto-detecting sharded layouts
  /// (ShardedCube::IsShardedDir). `pool_blocks` is per store (per shard for
  /// sharded stores).
  static Result<std::shared_ptr<ServeHandle>> Open(
      const std::string& dir, uint64_t pool_blocks,
      const ServingCube::Options& options);

  /// \brief Wraps an already-open cube (tests compare in-process answers
  /// against the same instance the server serves).
  static std::shared_ptr<ServeHandle> Wrap(std::shared_ptr<ServingCube> cube);
  static std::shared_ptr<ServeHandle> Wrap(std::shared_ptr<ShardedCube> cube);

  Status Add(std::span<const uint64_t> coords, double delta,
             OperationContext* ctx);
  Status Update(const Tensor& deltas, std::span<const uint64_t> origin,
                OperationContext* ctx);

  /// Exact point query (max_error == 0) — wrapped as an exact
  /// DegradedResult; with max_error > 0 on a sharded store the degradable
  /// router path answers within the bound. Monolithic stores always answer
  /// exactly (there is no shard to skip).
  Result<DegradedResult> PointQuery(std::span<const uint64_t> point,
                                    double max_error, OperationContext* ctx);
  Result<DegradedResult> RangeSum(std::span<const uint64_t> lo,
                                  std::span<const uint64_t> hi,
                                  double max_error, OperationContext* ctx);

  ServingStats stats() const;
  Status DrainAll();
  Status Close();

  const std::vector<uint32_t>& log_dims() const { return log_dims_; }
  bool sharded() const { return sharded_ != nullptr; }
  uint32_t num_shards() const {
    return sharded_ ? sharded_->num_shards() : 1;
  }

 private:
  ServeHandle() = default;

  std::shared_ptr<ServingCube> mono_;
  std::shared_ptr<ShardedCube> sharded_;
  std::vector<uint32_t> log_dims_;
};

/// \brief Name → ServeHandle map behind a shared_mutex; lookups are
/// shared-locked (the per-request hot path), open/close exclusive.
class CubeRegistry {
 public:
  struct Options {
    uint64_t pool_blocks = 256;  ///< per store (per shard when sharded)
    ServingCube::Options serving;
  };

  CubeRegistry() = default;
  explicit CubeRegistry(const Options& options) : options_(options) {}

  /// \brief Binds `name` to a store directory without opening it; a later
  /// Open(name) (or the first wire `open` request) opens it lazily.
  void Configure(const std::string& name, const std::string& dir);

  /// \brief Opens (or returns the already-open) cube `name`. With an empty
  /// `dir` the name must have been Configure()d. AlreadyExists is not an
  /// error — opening an open cube returns the live handle.
  Result<std::shared_ptr<ServeHandle>> Open(const std::string& name,
                                            const std::string& dir = "");

  /// \brief Registers an externally built handle under `name` (tests).
  Status Insert(const std::string& name, std::shared_ptr<ServeHandle> handle);

  /// \brief The open handle for `name`, or NotFound.
  Result<std::shared_ptr<ServeHandle>> Find(const std::string& name) const;

  /// \brief Drains and closes one tenant; the name becomes NotFound first,
  /// so no new request lands on the closing cube.
  Status CloseCube(const std::string& name);

  /// \brief Drains and closes every tenant (graceful shutdown); returns the
  /// first failure but closes all.
  Status CloseAll();

  std::vector<std::string> Names() const;

 private:
  Options options_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<ServeHandle>> open_;
  std::map<std::string, std::string> configured_;  ///< name → dir
};

}  // namespace net
}  // namespace shiftsplit

#endif  // SHIFTSPLIT_NET_CUBE_REGISTRY_H_
