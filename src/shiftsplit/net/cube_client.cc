#include "shiftsplit/net/cube_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace shiftsplit {
namespace net {

CubeClient::CubeClient(std::string host, uint16_t port,
                       const Options& options)
    : host_(std::move(host)), port_(port), options_(options) {}

CubeClient::CubeClient(std::string host, uint16_t port)
    : CubeClient(std::move(host), port, Options()) {}

CubeClient::~CubeClient() { Disconnect(); }

void CubeClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status CubeClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server host: " + host_);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Unavailable(std::string("connect ") + host_ + ":" +
                                    std::to_string(port_) + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

Status CubeClient::SendAll(std::span<const uint8_t> bytes, bool* sent_bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      *sent_bytes = true;
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status CubeClient::RecvAll(uint8_t* buf, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd_, buf + off, size - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("timed out waiting for the response");
    }
    if (errno == ECONNRESET) {
      // The close beat our request's arrival, so the kernel answered with a
      // reset instead of a clean FIN — same signal as an orderly close.
      return Status::Unavailable("server reset the connection");
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> CubeClient::RoundtripOnce(
    Opcode opcode, std::span<const uint8_t> payload, uint32_t deadline_ms,
    bool* sent_bytes, bool* app_error) {
  SS_RETURN_IF_ERROR(Connect());

  // Bound the receive wait: the request's own budget plus return slack, or
  // the default ceiling for unbounded requests.
  std::chrono::milliseconds wait =
      deadline_ms > 0
          ? std::chrono::milliseconds(deadline_ms) + options_.receive_slack
          : options_.default_recv_timeout;
  timeval tv{};
  tv.tv_sec = wait.count() / 1000;
  tv.tv_usec = static_cast<suseconds_t>((wait.count() % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  FrameHeader header;
  header.opcode = opcode;
  header.request_id = next_request_id_++;
  header.deadline_ms = deadline_ms;
  const auto frame = EncodeFrame(header, payload);
  SS_RETURN_IF_ERROR(SendAll(frame, sent_bytes));

  // Read the response: header, then payload + trailer, then verify.
  std::vector<uint8_t> reply(kHeaderSize);
  SS_RETURN_IF_ERROR(RecvAll(reply.data(), kHeaderSize));
  SS_ASSIGN_OR_RETURN(const FrameHeader reply_header,
                      DecodeHeader(reply, options_.max_payload));
  reply.resize(kHeaderSize + reply_header.payload_len + kTrailerSize);
  SS_RETURN_IF_ERROR(RecvAll(reply.data() + kHeaderSize,
                             reply_header.payload_len + kTrailerSize));
  SS_RETURN_IF_ERROR(VerifyFrame(reply));
  if (reply_header.request_id != header.request_id) {
    return Status::Internal("response request-id mismatch");
  }
  std::vector<uint8_t> body(
      reply.begin() + kHeaderSize,
      reply.begin() + kHeaderSize + reply_header.payload_len);
  if (reply_header.opcode == Opcode::kError) {
    SS_ASSIGN_OR_RETURN(const ErrorReply remote, DecodeErrorReply(body));
    *app_error = true;
    return remote.status;
  }
  if (reply_header.opcode != Opcode::kReply) {
    return Status::Internal("response frame is not a reply");
  }
  return body;
}

Result<std::vector<uint8_t>> CubeClient::Roundtrip(
    Opcode opcode, std::span<const uint8_t> payload, uint32_t deadline_ms,
    bool idempotent) {
  const auto overall_start = std::chrono::steady_clock::now();
  for (uint32_t attempt = 0;; ++attempt) {
    bool sent_bytes = false;
    bool app_error = false;
    auto result =
        RoundtripOnce(opcode, payload, deadline_ms, &sent_bytes, &app_error);
    if (result.ok()) return result;

    // A transport failure leaves the stream unusable; drop it so the next
    // attempt (or next call) reconnects. Application errors decoded from an
    // error frame keep the connection — the stream is still in sync.
    if (!app_error) Disconnect();

    // Retry gates: budget, retryability of the error, idempotence, and the
    // caller's deadline. An error frame means the server definitively did
    // NOT apply the operation, so even a write may retry on it; a transport
    // failure after bytes went out is ambiguous — the server may have
    // applied the write before the stream died — so a non-idempotent
    // request surfaces it instead of risking a double-apply.
    if (attempt >= options_.retry.max_retries) return result;
    if (!IsTransientError(result.status())) return result;
    if (!idempotent && sent_bytes && !app_error) return result;
    if (deadline_ms > 0) {
      const auto elapsed = std::chrono::steady_clock::now() - overall_start;
      if (elapsed >= std::chrono::milliseconds(deadline_ms)) return result;
    }
    const uint64_t delay_us =
        BackoffDelayUs(options_.retry, attempt, &jitter_state_);
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
  }
}

Status CubeClient::Ping(uint32_t deadline_ms) {
  return Roundtrip(Opcode::kPing, {}, deadline_ms, /*idempotent=*/true)
      .status();
}

Status CubeClient::OpenCube(const std::string& cube, uint32_t deadline_ms) {
  const auto payload = EncodeCubeNameRequest({cube});
  return Roundtrip(Opcode::kOpenCube, payload, deadline_ms,
                   /*idempotent=*/true)
      .status();
}

Status CubeClient::CloseCube(const std::string& cube, uint32_t deadline_ms) {
  const auto payload = EncodeCubeNameRequest({cube});
  return Roundtrip(Opcode::kCloseCube, payload, deadline_ms,
                   /*idempotent=*/true)
      .status();
}

Result<QueryReply> CubeClient::QueryRoundtrip(
    Opcode opcode, std::span<const uint8_t> payload, uint32_t deadline_ms) {
  SS_ASSIGN_OR_RETURN(
      const auto body,
      Roundtrip(opcode, payload, deadline_ms, /*idempotent=*/true));
  return DecodeQueryReply(body);
}

Result<double> CubeClient::Point(const std::string& cube,
                                 std::span<const uint64_t> point,
                                 uint32_t deadline_ms) {
  PointRequest req;
  req.cube = cube;
  req.point.assign(point.begin(), point.end());
  SS_ASSIGN_OR_RETURN(const QueryReply reply,
                      QueryRoundtrip(Opcode::kPoint, EncodePointRequest(req),
                                     deadline_ms));
  return reply.value;
}

Result<DegradedResult> CubeClient::PointDegraded(
    const std::string& cube, std::span<const uint64_t> point,
    double max_error, uint32_t deadline_ms) {
  PointRequest req;
  req.cube = cube;
  req.point.assign(point.begin(), point.end());
  req.max_error = max_error;
  SS_ASSIGN_OR_RETURN(const QueryReply reply,
                      QueryRoundtrip(Opcode::kPoint, EncodePointRequest(req),
                                     deadline_ms));
  return reply.ToDegradedResult();
}

Result<double> CubeClient::Sum(const std::string& cube,
                               std::span<const uint64_t> lo,
                               std::span<const uint64_t> hi,
                               uint32_t deadline_ms) {
  SumRequest req;
  req.cube = cube;
  req.lo.assign(lo.begin(), lo.end());
  req.hi.assign(hi.begin(), hi.end());
  SS_ASSIGN_OR_RETURN(
      const QueryReply reply,
      QueryRoundtrip(Opcode::kSum, EncodeSumRequest(req), deadline_ms));
  return reply.value;
}

Result<DegradedResult> CubeClient::SumDegraded(const std::string& cube,
                                               std::span<const uint64_t> lo,
                                               std::span<const uint64_t> hi,
                                               double max_error,
                                               uint32_t deadline_ms) {
  SumRequest req;
  req.cube = cube;
  req.lo.assign(lo.begin(), lo.end());
  req.hi.assign(hi.begin(), hi.end());
  req.max_error = max_error;
  SS_ASSIGN_OR_RETURN(
      const QueryReply reply,
      QueryRoundtrip(Opcode::kSum, EncodeSumRequest(req), deadline_ms));
  return reply.ToDegradedResult();
}

Status CubeClient::Add(const std::string& cube,
                       std::span<const uint64_t> coords, double delta,
                       uint32_t deadline_ms) {
  AddRequest req;
  req.cube = cube;
  req.coords.assign(coords.begin(), coords.end());
  req.delta = delta;
  return Roundtrip(Opcode::kAdd, EncodeAddRequest(req), deadline_ms,
                   /*idempotent=*/false)
      .status();
}

Status CubeClient::Update(const std::string& cube,
                          std::span<const uint64_t> origin,
                          std::span<const uint64_t> dims,
                          std::span<const double> values,
                          uint32_t deadline_ms) {
  UpdateRequest req;
  req.cube = cube;
  req.origin.assign(origin.begin(), origin.end());
  req.dims.assign(dims.begin(), dims.end());
  req.values.assign(values.begin(), values.end());
  return Roundtrip(Opcode::kUpdate, EncodeUpdateRequest(req), deadline_ms,
                   /*idempotent=*/false)
      .status();
}

Result<StatsReply> CubeClient::Stats(const std::string& cube,
                                     uint32_t deadline_ms) {
  const auto payload = EncodeCubeNameRequest({cube});
  SS_ASSIGN_OR_RETURN(
      const auto body,
      Roundtrip(Opcode::kStats, payload, deadline_ms, /*idempotent=*/true));
  return DecodeStatsReply(body);
}

}  // namespace net
}  // namespace shiftsplit
