#include "shiftsplit/baseline/naive_update.h"

#include <cmath>

#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

double ForwardPointWeight(uint32_t n, uint64_t index, uint64_t t,
                          Normalization norm) {
  const int sign = ReconstructionSign(n, index, t);
  if (sign == 0) return 0.0;
  const double atten = ScalingAttenuation(norm);
  const uint32_t level = (index == 0) ? n : CoordOfIndex(n, index).level;
  return sign * std::pow(atten, static_cast<double>(level));
}

Status NaivePointUpdate(TiledStore* store, std::span<const uint32_t> log_dims,
                        std::span<const uint64_t> point, double delta,
                        Normalization norm) {
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  if (point.size() != d) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  std::vector<std::vector<uint64_t>> paths(d);
  std::vector<std::vector<double>> weights(d);
  for (uint32_t i = 0; i < d; ++i) {
    if (point[i] >= (uint64_t{1} << log_dims[i])) {
      return Status::OutOfRange("point beyond the domain");
    }
    paths[i] = PathToRoot(log_dims[i], point[i]);
    weights[i].reserve(paths[i].size());
    for (uint64_t idx : paths[i]) {
      weights[i].push_back(ForwardPointWeight(log_dims[i], idx, point[i],
                                              norm));
    }
  }
  std::vector<size_t> pick(d, 0);
  std::vector<uint64_t> address(d);
  for (;;) {
    double w = delta;
    for (uint32_t i = 0; i < d; ++i) {
      address[i] = paths[i][pick[i]];
      w *= weights[i][pick[i]];
    }
    SS_RETURN_IF_ERROR(store->Add(address, w));
    uint32_t i = d;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < paths[i].size()) {
        advanced = true;
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  return Status::OK();
}

Status NaiveRangeUpdate(TiledStore* store, std::span<const uint32_t> log_dims,
                        const Tensor& deltas,
                        std::span<const uint64_t> origin, Normalization norm) {
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  if (deltas.shape().ndim() != d || origin.size() != d) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  std::vector<uint64_t> local(d, 0);
  std::vector<uint64_t> point(d);
  do {
    for (uint32_t i = 0; i < d; ++i) point[i] = origin[i] + local[i];
    SS_RETURN_IF_ERROR(
        NaivePointUpdate(store, log_dims, point, deltas.At(local), norm));
  } while (deltas.shape().Next(local));
  return store->Flush();
}

}  // namespace shiftsplit
