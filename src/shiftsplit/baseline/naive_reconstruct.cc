#include "shiftsplit/baseline/naive_reconstruct.h"

#include "shiftsplit/core/query.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/standard_transform.h"

namespace shiftsplit {

namespace {

Status ValidateBox(std::span<const uint32_t> log_dims,
                   std::span<const uint64_t> lo, std::span<const uint64_t> hi) {
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  if (lo.size() != d || hi.size() != d) {
    return Status::InvalidArgument("box dimensionality mismatch");
  }
  for (uint32_t i = 0; i < d; ++i) {
    if (lo[i] > hi[i] || hi[i] >= (uint64_t{1} << log_dims[i])) {
      return Status::OutOfRange("bad box bounds");
    }
  }
  return Status::OK();
}

TensorShape BoxShape(std::span<const uint64_t> lo,
                     std::span<const uint64_t> hi) {
  std::vector<uint64_t> dims(lo.size());
  for (uint32_t i = 0; i < lo.size(); ++i) {
    dims[i] = NextPowerOfTwo(hi[i] - lo[i] + 1);
  }
  return TensorShape(dims);
}

}  // namespace

Result<Tensor> PointwiseReconstructStandard(TiledStore* store,
                                            std::span<const uint32_t> log_dims,
                                            std::span<const uint64_t> lo,
                                            std::span<const uint64_t> hi,
                                            Normalization norm) {
  SS_RETURN_IF_ERROR(ValidateBox(log_dims, lo, hi));
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  Tensor out(BoxShape(lo, hi));
  QueryOptions options;
  options.norm = norm;
  std::vector<uint64_t> point(d);
  std::vector<uint64_t> local(d, 0);
  do {
    bool in_box = true;
    for (uint32_t i = 0; i < d; ++i) {
      point[i] = lo[i] + local[i];
      in_box = in_box && point[i] <= hi[i];
    }
    if (in_box) {
      SS_ASSIGN_OR_RETURN(const double v,
                          PointQueryStandard(store, log_dims, point, options));
      out.At(local) = v;
    }
  } while (out.shape().Next(local));
  return out;
}

Result<Tensor> FullReconstructExtractStandard(
    TiledStore* store, std::span<const uint32_t> log_dims,
    std::span<const uint64_t> lo, std::span<const uint64_t> hi,
    Normalization norm) {
  SS_RETURN_IF_ERROR(ValidateBox(log_dims, lo, hi));
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  // Read the entire transform into memory and invert it.
  std::vector<uint64_t> dims(d);
  for (uint32_t i = 0; i < d; ++i) dims[i] = uint64_t{1} << log_dims[i];
  Tensor full{TensorShape(dims)};
  std::vector<uint64_t> address(d, 0);
  do {
    SS_ASSIGN_OR_RETURN(const double v, store->Get(address));
    full.At(address) = v;
  } while (full.shape().Next(address));
  SS_RETURN_IF_ERROR(InverseStandard(&full, norm));

  Tensor out(BoxShape(lo, hi));
  std::vector<uint64_t> local(d, 0);
  std::vector<uint64_t> point(d);
  do {
    bool in_box = true;
    for (uint32_t i = 0; i < d; ++i) {
      point[i] = lo[i] + local[i];
      in_box = in_box && point[i] <= hi[i];
    }
    if (in_box) out.At(local) = full.At(point);
  } while (out.shape().Next(local));
  return out;
}

}  // namespace shiftsplit
