#include "shiftsplit/baseline/gilbert_stream.h"

#include <algorithm>

#include "shiftsplit/baseline/naive_update.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

GilbertStreamSynopsis::GilbertStreamSynopsis(uint32_t n, uint64_t k,
                                             Normalization norm)
    : n_(n), norm_(norm), synopsis_(k) {}

Status GilbertStreamSynopsis::Push(double value) {
  if (finished_) return Status::InvalidArgument("stream already finished");
  if (items_ >= (uint64_t{1} << n_)) {
    return Status::OutOfRange("stream exceeded its declared domain size");
  }
  const uint64_t t = items_;
  const auto path = PathToRoot(n_, t);
  // Finalize crest coefficients whose support the stream has passed: the
  // new item's path shares only a suffix (towards the root) with the old
  // crest; anything not on the new path is done.
  for (auto it = crest_.begin(); it != crest_.end();) {
    const bool still_open =
        std::find(path.begin(), path.end(), it->first) != path.end();
    if (still_open) {
      ++it;
    } else {
      synopsis_.Offer(it->first, it->second);
      it = crest_.erase(it);
    }
  }
  // Add the item's contribution to every coefficient on its path.
  for (uint64_t idx : path) {
    crest_[idx] += value * ForwardPointWeight(n_, idx, t, norm_);
    ++coeff_touches_;
  }
  ++items_;
  return Status::OK();
}

Status GilbertStreamSynopsis::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  for (const auto& [index, value] : crest_) {
    synopsis_.Offer(index, value);
  }
  crest_.clear();
  return Status::OK();
}

}  // namespace shiftsplit
