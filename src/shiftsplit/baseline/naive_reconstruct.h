// Naive region extraction baselines (paper §5.4's dilemma): either
// reconstruct the requested box point by point (each point reads its full
// path cross product), or decompress the entire dataset and cut the box out.
// Result 6's SHIFT-SPLIT reconstruction is compared against both.

#ifndef SHIFTSPLIT_BASELINE_NAIVE_RECONSTRUCT_H_
#define SHIFTSPLIT_BASELINE_NAIVE_RECONSTRUCT_H_

#include <span>

#include "shiftsplit/tile/tiled_store.h"
#include "shiftsplit/wavelet/haar.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Point-by-point reconstruction of the inclusive box [lo, hi] from a
/// standard-form store: O(M^d log^d N) coefficient reads.
Result<Tensor> PointwiseReconstructStandard(TiledStore* store,
                                            std::span<const uint32_t> log_dims,
                                            std::span<const uint64_t> lo,
                                            std::span<const uint64_t> hi,
                                            Normalization norm);

/// \brief Full decompression followed by box extraction: O(N^d) coefficient
/// reads regardless of the box size.
Result<Tensor> FullReconstructExtractStandard(
    TiledStore* store, std::span<const uint32_t> log_dims,
    std::span<const uint64_t> lo, std::span<const uint64_t> hi,
    Normalization norm);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_BASELINE_NAIVE_RECONSTRUCT_H_
