// Naive per-point maintenance of a standard-form transform — the comparator
// of Example 2 and the update ablation: each changed cell individually
// updates the full cross product of its per-dimension root paths, costing
// O(prod_i (log N_i + 1)) coefficient writes per cell versus SHIFT-SPLIT's
// batched O(M^d + path) for a whole region.

#ifndef SHIFTSPLIT_BASELINE_NAIVE_UPDATE_H_
#define SHIFTSPLIT_BASELINE_NAIVE_UPDATE_H_

#include <span>

#include "shiftsplit/tile/tiled_store.h"
#include "shiftsplit/wavelet/haar.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Adds `delta` to the single cell `point` of a standard-form store
/// by updating every coefficient covering it.
Status NaivePointUpdate(TiledStore* store, std::span<const uint32_t> log_dims,
                        std::span<const uint64_t> point, double delta,
                        Normalization norm);

/// \brief Adds a tensor of deltas anchored at `origin` cell by cell (the
/// naive batch: M^d point updates).
Status NaiveRangeUpdate(TiledStore* store, std::span<const uint32_t> log_dims,
                        const Tensor& deltas,
                        std::span<const uint64_t> origin, Normalization norm);

/// \brief The forward weight with which a delta at data position t feeds the
/// 1-d coefficient at `index`: sign * atten^level for details,
/// atten^n for the overall average (atten = ScalingAttenuation(norm)).
double ForwardPointWeight(uint32_t n, uint64_t index, uint64_t t,
                          Normalization norm);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_BASELINE_NAIVE_UPDATE_H_
