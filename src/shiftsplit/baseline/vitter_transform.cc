#include "shiftsplit/baseline/vitter_transform.h"

#include "shiftsplit/tile/naive_tiling.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/haar.h"

namespace shiftsplit {

Result<TransformResult> VitterTransformStandard(ChunkSource* source,
                                                TiledStore* store,
                                                Normalization norm) {
  if (dynamic_cast<const NaiveTiling*>(&store->layout()) == nullptr) {
    return Status::InvalidArgument(
        "the Vitter baseline operates on a row-major (naive) layout");
  }
  const TensorShape& shape = source->shape();
  const uint32_t d = shape.ndim();
  TransformResult result;
  const IoStats before = store->stats();
  const uint64_t cells_before = source->cells_read();

  // Phase 1: materialize the raw data onto the device, one row at a time
  // (rows are contiguous in the row-major layout).
  {
    std::vector<uint64_t> row_dims(shape.dims());
    row_dims[d - 1] = 1;  // iterate over all rows
    TensorShape rows(row_dims);
    std::vector<uint64_t> chunk_dims(d, 1);
    chunk_dims[d - 1] = shape.dim(d - 1);
    Tensor row{TensorShape(chunk_dims)};
    std::vector<uint64_t> pos(d, 0);
    std::vector<uint64_t> address(d);
    do {
      SS_RETURN_IF_ERROR(source->ReadChunk(pos, &row));
      address = pos;
      for (uint64_t x = 0; x < shape.dim(d - 1); ++x) {
        address[d - 1] = x;
        SS_RETURN_IF_ERROR(store->Set(address, row[x]));
      }
      ++result.chunks;
    } while (rows.Next(pos));
  }

  // Phase 2: one full decomposition pass per dimension. One scratch buffer
  // serves every fiber of the pass — no per-fiber allocation.
  std::vector<double> fiber;
  std::vector<double> scratch;
  for (uint32_t dim = 0; dim < d; ++dim) {
    fiber.resize(shape.dim(dim));
    scratch.resize(shape.dim(dim));
    std::vector<uint64_t> base_dims(shape.dims());
    base_dims[dim] = 1;
    TensorShape bases(base_dims);
    std::vector<uint64_t> base(d, 0);
    std::vector<uint64_t> address(d);
    do {
      address = base;
      for (uint64_t x = 0; x < shape.dim(dim); ++x) {
        address[dim] = x;
        SS_ASSIGN_OR_RETURN(fiber[x], store->Get(address));
      }
      SS_RETURN_IF_ERROR(ForwardHaar1DLevels(
          fiber, Log2(fiber.size()), norm, scratch));
      for (uint64_t x = 0; x < shape.dim(dim); ++x) {
        address[dim] = x;
        SS_RETURN_IF_ERROR(store->Set(address, fiber[x]));
      }
    } while (bases.Next(base));
  }
  SS_RETURN_IF_ERROR(store->Flush());
  result.store_io = store->stats() - before;
  result.cells_read = source->cells_read() - cells_before;
  return result;
}

}  // namespace shiftsplit
