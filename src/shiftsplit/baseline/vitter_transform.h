// Baseline transformation in the style of Vitter et al. [12, 13] — the
// comparator of Table 2 and Figure 11.
//
// The dataset is first materialized in its row-major block layout, then the
// standard decomposition is computed dimension after dimension: every fiber
// along the current dimension is read through the (budget-bounded) buffer
// pool, fully decomposed, and written back. The coefficient I/O is
// Theta(d * N^d) regardless of the memory budget — matching the flat,
// memory-insensitive Vitter et al. curve of the paper's Figure 11 — and the
// block I/O additionally carries the published log factor whenever the pool
// cannot hold a full slab of fibers, because consecutive fibers re-touch the
// same blocks.

#ifndef SHIFTSPLIT_BASELINE_VITTER_TRANSFORM_H_
#define SHIFTSPLIT_BASELINE_VITTER_TRANSFORM_H_

#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/data/dataset.h"
#include "shiftsplit/tile/tiled_store.h"

namespace shiftsplit {

/// \brief Transforms `source` into the standard form on a row-major
/// (NaiveTiling) store, level-by-level. The store must use NaiveTiling with
/// the source's shape.
Result<TransformResult> VitterTransformStandard(ChunkSource* source,
                                                TiledStore* store,
                                                Normalization norm);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_BASELINE_VITTER_TRANSFORM_H_
