// Per-item K-term stream synopsis maintenance in the style of Gilbert et
// al. [5] — the comparator of Result 3.
//
// Every arriving item updates all log N + 1 coefficients on its path to the
// root (the "wavelet crest" of [8]); a crest coefficient is finalized — and
// offered to the top-K synopsis — when the stream advances past its support.
// Space: O(K + log N). Per-item cost: O(log N) coefficient touches, which
// Result 3's buffered SHIFT-SPLIT maintainer reduces to
// O(1 + (1/B) log(N/B)).

#ifndef SHIFTSPLIT_BASELINE_GILBERT_STREAM_H_
#define SHIFTSPLIT_BASELINE_GILBERT_STREAM_H_

#include <unordered_map>

#include "shiftsplit/core/synopsis.h"
#include "shiftsplit/wavelet/haar.h"

namespace shiftsplit {

/// \brief Gilbert-style per-item stream maintainer.
class GilbertStreamSynopsis {
 public:
  GilbertStreamSynopsis(uint32_t n, uint64_t k,
                        Normalization norm = Normalization::kOrthonormal);

  /// \brief Appends the next stream item, updating its full root path.
  Status Push(double value);

  /// \brief Finalizes all open coefficients.
  Status Finish();

  const TopKSynopsis& synopsis() const { return synopsis_; }
  uint64_t items() const { return items_; }
  uint64_t coeff_touches() const { return coeff_touches_; }
  uint64_t open_coefficients() const { return crest_.size(); }

 private:
  uint32_t n_;
  Normalization norm_;
  TopKSynopsis synopsis_;
  uint64_t items_ = 0;
  uint64_t coeff_touches_ = 0;
  bool finished_ = false;
  std::unordered_map<uint64_t, double> crest_;  // flat index -> value
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_BASELINE_GILBERT_STREAM_H_
