#include "shiftsplit/core/approx.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "shiftsplit/core/query.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

CompressedSynopsis::CompressedSynopsis(std::vector<uint32_t> log_dims,
                                       uint64_t k, Normalization norm)
    : log_dims_(std::move(log_dims)), k_(k), norm_(norm) {
  strides_.resize(log_dims_.size());
  uint64_t stride = 1;
  for (size_t i = log_dims_.size(); i-- > 0;) {
    strides_[i] = stride;
    stride <<= log_dims_[i];
  }
}

uint64_t CompressedSynopsis::FlatIndex(
    std::span<const uint64_t> address) const {
  uint64_t flat = 0;
  for (size_t i = 0; i < address.size(); ++i) {
    flat += address[i] * strides_[i];
  }
  return flat;
}

double CompressedSynopsis::L2Weight(std::span<const uint64_t> address) const {
  if (norm_ == Normalization::kOrthonormal) return 1.0;
  // A kAverage coefficient at per-dim level j corresponds to an orthonormal
  // coefficient scaled by 2^(j/2) per dimension (root: 2^(n/2)).
  double weight = 1.0;
  for (size_t i = 0; i < address.size(); ++i) {
    const uint32_t n = log_dims_[i];
    const uint32_t level =
        address[i] == 0 ? n : CoordOfIndex(n, address[i]).level;
    weight *= std::pow(2.0, 0.5 * static_cast<double>(level));
  }
  return weight;
}

void CompressedSynopsis::Insert(std::span<const uint64_t> address,
                                double value) {
  coefficients_[FlatIndex(address)] = value;
}

Result<CompressedSynopsis> CompressedSynopsis::Build(
    TiledStore* store, std::vector<uint32_t> log_dims, uint64_t k,
    Normalization norm) {
  CompressedSynopsis synopsis(std::move(log_dims), k, norm);
  const uint32_t d = static_cast<uint32_t>(synopsis.log_dims_.size());
  std::vector<uint64_t> dims(d);
  for (uint32_t i = 0; i < d; ++i) dims[i] = uint64_t{1} << synopsis.log_dims_[i];
  TensorShape shape(dims);

  // Rank all coefficients by orthonormal magnitude; keep the top K.
  std::set<std::pair<double, uint64_t>> top;  // (magnitude, flat)
  std::unordered_map<uint64_t, double> values;
  double total_energy = 0.0;
  std::vector<uint64_t> address(d, 0);
  do {
    SS_ASSIGN_OR_RETURN(const double value, store->Get(address));
    const double magnitude = std::abs(value) * synopsis.L2Weight(address);
    total_energy += magnitude * magnitude;
    const uint64_t flat = synopsis.FlatIndex(address);
    if (top.size() < k) {
      top.emplace(magnitude, flat);
      values[flat] = value;
    } else if (!top.empty() && magnitude > top.begin()->first) {
      values.erase(top.begin()->second);
      top.erase(top.begin());
      top.emplace(magnitude, flat);
      values[flat] = value;
    }
  } while (shape.Next(address));

  double kept_energy = 0.0;
  for (const auto& [magnitude, flat] : top) kept_energy += magnitude * magnitude;
  synopsis.energy_fraction_ =
      total_energy > 0.0 ? kept_energy / total_energy : 1.0;
  synopsis.total_energy_ = total_energy;
  synopsis.coefficients_ = std::move(values);
  return synopsis;
}

CompressedSynopsis CompressedSynopsis::FromTensor(const Tensor& transformed,
                                                  uint64_t k,
                                                  Normalization norm) {
  CompressedSynopsis synopsis(transformed.shape().LogDims(), k, norm);
  std::set<std::pair<double, uint64_t>> top;
  double total_energy = 0.0;
  std::vector<uint64_t> address(transformed.shape().ndim(), 0);
  do {
    const double value = transformed.At(address);
    const double magnitude = std::abs(value) * synopsis.L2Weight(address);
    total_energy += magnitude * magnitude;
    const uint64_t flat = synopsis.FlatIndex(address);
    if (top.size() < k) {
      top.emplace(magnitude, flat);
      synopsis.coefficients_[flat] = value;
    } else if (!top.empty() && magnitude > top.begin()->first) {
      synopsis.coefficients_.erase(top.begin()->second);
      top.erase(top.begin());
      top.emplace(magnitude, flat);
      synopsis.coefficients_[flat] = value;
    }
  } while (transformed.shape().Next(address));
  double kept_energy = 0.0;
  for (const auto& [magnitude, flat] : top) kept_energy += magnitude * magnitude;
  synopsis.energy_fraction_ =
      total_energy > 0.0 ? kept_energy / total_energy : 1.0;
  synopsis.total_energy_ = total_energy;
  return synopsis;
}

double CompressedSynopsis::RangeSumErrorBound(
    std::span<const uint64_t> lo, std::span<const uint64_t> hi) const {
  double cells = 1.0;
  for (size_t i = 0; i < lo.size(); ++i) {
    cells *= static_cast<double>(hi[i] - lo[i] + 1);
  }
  const double residual = (1.0 - energy_fraction_) * total_energy_;
  return std::sqrt(std::max(0.0, residual) * cells);
}

double CompressedSynopsis::PointEstimate(
    std::span<const uint64_t> point) const {
  const uint32_t d = static_cast<uint32_t>(log_dims_.size());
  std::vector<std::vector<uint64_t>> paths(d);
  std::vector<std::vector<double>> weights(d);
  for (uint32_t i = 0; i < d; ++i) {
    paths[i] = PathToRoot(log_dims_[i], point[i]);
    weights[i].reserve(paths[i].size());
    for (uint64_t idx : paths[i]) {
      weights[i].push_back(
          ReconstructionWeight(log_dims_[i], idx, point[i], norm_));
    }
  }
  std::vector<size_t> pick(d, 0);
  std::vector<uint64_t> address(d);
  double value = 0.0;
  for (;;) {
    double w = 1.0;
    for (uint32_t i = 0; i < d; ++i) {
      address[i] = paths[i][pick[i]];
      w *= weights[i][pick[i]];
    }
    auto it = coefficients_.find(FlatIndex(address));
    if (it != coefficients_.end()) value += w * it->second;
    uint32_t i = d;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < paths[i].size()) {
        advanced = true;
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  return value;
}

double CompressedSynopsis::RangeSumEstimate(
    std::span<const uint64_t> lo, std::span<const uint64_t> hi) const {
  const uint32_t d = static_cast<uint32_t>(log_dims_.size());
  double sum = 0.0;
  std::vector<uint64_t> address(d);
  for (const auto& [flat, value] : coefficients_) {
    uint64_t rest = flat;
    double weight = 1.0;
    for (uint32_t i = 0; i < d && weight != 0.0; ++i) {
      address[i] = rest / strides_[i];
      rest %= strides_[i];
      weight *= RangeSumWeight(log_dims_[i], address[i], lo[i], hi[i], norm_);
    }
    sum += weight * value;
  }
  return sum;
}

}  // namespace shiftsplit
