#include "shiftsplit/core/chunked_transform.h"

#include <algorithm>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/util/morton.h"

namespace shiftsplit {

namespace {

// Enumerates the chunk-grid positions, row-major or z-order.
std::vector<std::vector<uint64_t>> ChunkOrder(const TensorShape& grid,
                                              bool zorder) {
  std::vector<std::vector<uint64_t>> order;
  order.reserve(grid.num_elements());
  if (!zorder) {
    std::vector<uint64_t> pos(grid.ndim(), 0);
    do {
      order.push_back(pos);
    } while (grid.Next(pos));
    return order;
  }
  // Z-order: enumerate morton codes over the bounding cube and keep the
  // positions inside the (possibly non-cubic) grid.
  uint32_t bits = 0;
  for (uint32_t i = 0; i < grid.ndim(); ++i) {
    bits = std::max(bits, Log2(grid.dim(i)));
  }
  const uint64_t codes = uint64_t{1} << (bits * grid.ndim());
  for (uint64_t code = 0; code < codes; ++code) {
    auto pos = MortonDecode(code, grid.ndim(), bits);
    bool inside = true;
    for (uint32_t i = 0; i < grid.ndim(); ++i) {
      inside = inside && pos[i] < grid.dim(i);
    }
    if (inside) order.push_back(std::move(pos));
  }
  return order;
}

bool AllZero(const Tensor& chunk) {
  for (double x : chunk.data()) {
    if (x != 0.0) return false;
  }
  return true;
}

}  // namespace

Result<TransformResult> TransformDatasetStandard(
    ChunkSource* source, uint32_t log_chunk, TiledStore* store,
    const TransformOptions& options) {
  const TensorShape& shape = source->shape();
  const uint32_t d = shape.ndim();
  std::vector<uint32_t> log_dims = shape.LogDims();
  std::vector<uint64_t> chunk_dims(d), grid_dims(d);
  for (uint32_t i = 0; i < d; ++i) {
    const uint32_t m = std::min(log_chunk, log_dims[i]);
    chunk_dims[i] = uint64_t{1} << m;
    grid_dims[i] = shape.dim(i) >> m;
  }
  TensorShape chunk_shape(chunk_dims);
  TensorShape grid(grid_dims);

  ApplyOptions apply;
  apply.mode = ApplyMode::kConstruct;
  apply.maintain_scaling_slots = options.maintain_scaling_slots;
  apply.skip_zero_writes = options.sparse;

  TransformResult result;
  const IoStats before = store->stats();
  const uint64_t cells_before = source->cells_read();
  Tensor chunk(chunk_shape);
  for (const auto& pos : ChunkOrder(grid, options.zorder)) {
    SS_RETURN_IF_ERROR(source->ReadChunk(pos, &chunk));
    if (options.sparse && AllZero(chunk)) continue;
    SS_RETURN_IF_ERROR(ApplyChunkStandard(chunk, pos, log_dims, store,
                                          options.norm, apply));
    ++result.chunks;
  }
  SS_RETURN_IF_ERROR(store->Flush());
  result.store_io = store->stats() - before;
  result.cells_read = source->cells_read() - cells_before;
  return result;
}

Result<TransformResult> TransformDatasetNonstandard(
    ChunkSource* source, uint32_t log_chunk, TiledStore* store,
    const TransformOptions& options) {
  const TensorShape& shape = source->shape();
  const uint32_t d = shape.ndim();
  if (!shape.IsCube()) {
    return Status::InvalidArgument(
        "non-standard transformation requires a hypercube dataset");
  }
  const uint32_t n = Log2(shape.dim(0));
  const uint32_t m = std::min(log_chunk, n);
  TensorShape chunk_shape = TensorShape::Cube(d, uint64_t{1} << m);
  TensorShape grid = TensorShape::Cube(d, uint64_t{1} << (n - m));

  ApplyOptions apply;
  apply.mode = ApplyMode::kConstruct;
  apply.maintain_scaling_slots = options.maintain_scaling_slots;
  apply.skip_zero_writes = options.sparse;

  TransformResult result;
  const IoStats before = store->stats();
  const uint64_t cells_before = source->cells_read();
  Tensor chunk(chunk_shape);
  for (const auto& pos : ChunkOrder(grid, options.zorder)) {
    SS_RETURN_IF_ERROR(source->ReadChunk(pos, &chunk));
    if (options.sparse && AllZero(chunk)) continue;
    SS_RETURN_IF_ERROR(
        ApplyChunkNonstandard(chunk, pos, n, store, options.norm, apply));
    ++result.chunks;
  }
  SS_RETURN_IF_ERROR(store->Flush());
  result.store_io = store->stats() - before;
  result.cells_read = source->cells_read() - cells_before;
  return result;
}

}  // namespace shiftsplit
