#include "shiftsplit/core/chunked_transform.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/util/bitops.h"

namespace shiftsplit {

namespace {

// Enumerates the chunk-grid positions, row-major or z-order.
std::vector<std::vector<uint64_t>> ChunkOrder(const TensorShape& grid,
                                              bool zorder) {
  std::vector<std::vector<uint64_t>> order;
  order.reserve(grid.num_elements());
  if (!zorder) {
    std::vector<uint64_t> pos(grid.ndim(), 0);
    do {
      order.push_back(pos);
    } while (grid.Next(pos));
    return order;
  }
  // Z-order: distribute each rank's bits over the (bit, dim) pairs of the
  // Morton code, least significant first, skipping pairs beyond a
  // dimension's extent. This is the ascending Morton enumeration restricted
  // to the (possibly non-cubic) grid — identical order to filtering the
  // bounding cube's codes, but O(grid cells) instead of O(cube cells).
  const uint32_t d = grid.ndim();
  const std::vector<uint32_t> log_dims = grid.LogDims();
  uint32_t max_bits = 0;
  for (uint32_t i = 0; i < d; ++i) max_bits = std::max(max_bits, log_dims[i]);
  for (uint64_t rank = 0; rank < grid.num_elements(); ++rank) {
    std::vector<uint64_t> pos(d, 0);
    uint64_t rest = rank;
    for (uint32_t bit = 0; bit < max_bits && rest != 0; ++bit) {
      for (uint32_t dim = 0; dim < d; ++dim) {
        if (bit >= log_dims[dim]) continue;
        pos[dim] |= (rest & 1u) << bit;
        rest >>= 1;
      }
    }
    order.push_back(std::move(pos));
  }
  return order;
}

bool AllZero(const Tensor& chunk) {
  for (double x : chunk.data()) {
    if (x != 0.0) return false;
  }
  return true;
}

// Parallel ingest: workers claim chunk indices, read the chunk (concurrently
// when the source allows it, serialized otherwise), transform and plan it
// concurrently, then commit plans to the store strictly in chunk order — so
// the store ends up byte-identical to a single-threaded run (floating-point
// accumulation order is preserved). A chunk that fails (or is skipped as
// all-zero) still takes its commit turn, so the turn chain never stalls; the
// error surfaced is the one of the lowest-index failing chunk.
template <typename PlanFn>
Status ParallelIngest(ChunkSource* source, const TensorShape& chunk_shape,
                      const std::vector<std::vector<uint64_t>>& order,
                      TiledStore* store, const TransformOptions& options,
                      uint32_t threads, const PlanFn& plan_chunk,
                      uint64_t* chunks_applied) {
  const bool lock_source = !source->thread_safe_reads();
  std::mutex source_mu;  // serializes thread-compatible sources only
  std::mutex commit_mu;  // guards commit_turn, first_error, committed
  std::condition_variable commit_cv;
  std::atomic<uint64_t> next_index{0};
  std::atomic<bool> failed{false};
  uint64_t commit_turn = 0;
  uint64_t committed = 0;
  Status first_error;

  // The pool's frame table is shared across workers from here on. Writes go
  // through ApplyChunkPlan under the ordered commit, so pinned spans are
  // never touched concurrently.
  store->pool().set_thread_safe(true);

  auto work = [&]() {
    Tensor chunk(chunk_shape);
    for (;;) {
      const uint64_t idx = next_index.fetch_add(1);
      if (idx >= order.size()) return;
      Status status;
      ChunkApplyPlan plan;
      bool have_plan = false;
      if (!failed.load(std::memory_order_relaxed)) {
        {
          std::unique_lock<std::mutex> lock;
          if (lock_source) lock = std::unique_lock(source_mu);
          status = source->ReadChunk(order[idx], &chunk);
        }
        if (status.ok() && !(options.sparse && AllZero(chunk))) {
          Result<ChunkApplyPlan> planned = plan_chunk(chunk, order[idx]);
          if (planned.ok()) {
            plan = std::move(planned).value();
            have_plan = true;
          } else {
            status = planned.status();
          }
        }
      }
      std::unique_lock lock(commit_mu);
      commit_cv.wait(lock, [&] { return commit_turn == idx; });
      if (first_error.ok()) {
        if (!status.ok()) {
          first_error = status;
          failed.store(true, std::memory_order_relaxed);
        } else if (have_plan) {
          const Status applied = ApplyChunkPlan(plan, store, options.prefetch);
          if (applied.ok()) {
            ++committed;
          } else {
            first_error = applied;
            failed.store(true, std::memory_order_relaxed);
          }
        }
      }
      ++commit_turn;
      commit_cv.notify_all();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) workers.emplace_back(work);
  for (std::thread& w : workers) w.join();
  store->pool().set_thread_safe(false);

  SS_RETURN_IF_ERROR(first_error);
  *chunks_applied = committed;
  return Status::OK();
}

// Shared driver of both transform forms: serial per-chunk apply for one
// thread, the ordered-commit pipeline otherwise.
template <typename PlanFn, typename ApplyFn>
Result<TransformResult> DriveTransform(
    ChunkSource* source, const TensorShape& chunk_shape,
    const std::vector<std::vector<uint64_t>>& order, TiledStore* store,
    const TransformOptions& options, const PlanFn& plan_chunk,
    const ApplyFn& apply_chunk) {
  if (options.num_threads > 1 && !options.batched) {
    return Status::InvalidArgument(
        "num_threads > 1 requires the batched apply path");
  }
  // Clamp the worker count to the work available and (unless the caller
  // forces oversubscription) to the hardware concurrency; a clamped count of
  // one takes the cheaper serial path below.
  uint32_t threads = static_cast<uint32_t>(
      std::min<uint64_t>(options.num_threads, order.size()));
  if (!options.oversubscribe) {
    threads = std::min(threads,
                       std::max(1u, std::thread::hardware_concurrency()));
  }
  TransformResult result;
  const IoStats before = store->stats();
  const uint64_t cells_before = source->cells_read();
  if (threads > 1) {
    SS_RETURN_IF_ERROR(ParallelIngest(source, chunk_shape, order, store,
                                      options, threads, plan_chunk,
                                      &result.chunks));
  } else {
    Tensor chunk(chunk_shape);
    for (const auto& pos : order) {
      SS_RETURN_IF_ERROR(source->ReadChunk(pos, &chunk));
      if (options.sparse && AllZero(chunk)) continue;
      SS_RETURN_IF_ERROR(apply_chunk(chunk, pos));
      ++result.chunks;
    }
  }
  SS_RETURN_IF_ERROR(store->Flush());
  result.store_io = store->stats() - before;
  result.cells_read = source->cells_read() - cells_before;
  return result;
}

ApplyOptions MakeApplyOptions(const TransformOptions& options) {
  ApplyOptions apply;
  apply.mode = ApplyMode::kConstruct;
  apply.maintain_scaling_slots = options.maintain_scaling_slots;
  apply.skip_zero_writes = options.sparse;
  apply.batched = options.batched;
  apply.prefetch = options.prefetch;
  return apply;
}

}  // namespace

Result<TransformResult> TransformDatasetStandard(
    ChunkSource* source, uint32_t log_chunk, TiledStore* store,
    const TransformOptions& options) {
  const TensorShape& shape = source->shape();
  const uint32_t d = shape.ndim();
  std::vector<uint32_t> log_dims = shape.LogDims();
  std::vector<uint64_t> chunk_dims(d), grid_dims(d);
  for (uint32_t i = 0; i < d; ++i) {
    const uint32_t m = std::min(log_chunk, log_dims[i]);
    chunk_dims[i] = uint64_t{1} << m;
    grid_dims[i] = shape.dim(i) >> m;
  }
  TensorShape chunk_shape(chunk_dims);
  TensorShape grid(grid_dims);

  const ApplyOptions apply = MakeApplyOptions(options);
  const auto order = ChunkOrder(grid, options.zorder);
  return DriveTransform(
      source, chunk_shape, order, store, options,
      [&](const Tensor& chunk, const std::vector<uint64_t>& pos) {
        return PlanChunkStandard(chunk, pos, log_dims, store->layout(),
                                 options.norm, apply);
      },
      [&](const Tensor& chunk, const std::vector<uint64_t>& pos) {
        return ApplyChunkStandard(chunk, pos, log_dims, store, options.norm,
                                  apply);
      });
}

Result<TransformResult> TransformDatasetNonstandard(
    ChunkSource* source, uint32_t log_chunk, TiledStore* store,
    const TransformOptions& options) {
  const TensorShape& shape = source->shape();
  const uint32_t d = shape.ndim();
  if (!shape.IsCube()) {
    return Status::InvalidArgument(
        "non-standard transformation requires a hypercube dataset");
  }
  const uint32_t n = Log2(shape.dim(0));
  const uint32_t m = std::min(log_chunk, n);
  TensorShape chunk_shape = TensorShape::Cube(d, uint64_t{1} << m);
  TensorShape grid = TensorShape::Cube(d, uint64_t{1} << (n - m));

  const ApplyOptions apply = MakeApplyOptions(options);
  const auto order = ChunkOrder(grid, options.zorder);
  return DriveTransform(
      source, chunk_shape, order, store, options,
      [&](const Tensor& chunk, const std::vector<uint64_t>& pos) {
        return PlanChunkNonstandard(chunk, pos, n, store->layout(),
                                    options.norm, apply);
      },
      [&](const Tensor& chunk, const std::vector<uint64_t>& pos) {
        return ApplyChunkNonstandard(chunk, pos, n, store, options.norm,
                                     apply);
      });
}

}  // namespace shiftsplit
