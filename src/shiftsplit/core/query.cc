#include "shiftsplit/core/query.h"

#include <cmath>
#include <algorithm>
#include <set>
#include <vector>

#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/tile/tree_tiling.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/nonstandard_transform.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

namespace {

// One per-dimension read with its reconstruction weight: either a regular
// coefficient address or a pre-located physical slot.
struct DimRead {
  uint64_t index = 0;  // regular 1-d address (when !slot_based)
  BlockSlot part;      // per-dim (tile, slot) (when slot_based)
  double weight = 1.0;
};

// Full-path expansion of a point along one dimension (Lemma 1).
std::vector<DimRead> PointPathReads(uint32_t n, uint64_t t,
                                    Normalization norm) {
  std::vector<DimRead> reads;
  reads.reserve(n + 1);
  for (uint64_t idx : PathToRoot(n, t)) {
    reads.push_back({idx, {}, ReconstructionWeight(n, idx, t, norm)});
  }
  return reads;
}

// Deepest-tile expansion of a point along one dimension: the in-tile path
// details plus the tile's slot-0 scaling; all reads hit one tile.
std::vector<DimRead> PointSlotReads(const TreeTiling& tiling, uint64_t t,
                                    Normalization norm) {
  const uint32_t n = tiling.n();
  std::vector<DimRead> reads;
  // Deepest band root level.
  const uint32_t root_level = n - tiling.BandRootRow(tiling.num_bands() - 1);
  const double g = ReconstructionAttenuation(norm);
  // In-tile details: levels 1..root_level on the path.
  for (uint32_t j = 1; j <= root_level; ++j) {
    const uint64_t idx = DetailIndex(n, j, t >> j);
    DimRead r;
    r.part = tiling.Locate(idx);
    const double sign = ((t >> (j - 1)) & 1u) == 0 ? 1.0 : -1.0;
    r.weight = sign * std::pow(g, static_cast<double>(j));
    reads.push_back(r);
  }
  // The tile-root scaling.
  DimRead r;
  auto at = tiling.LocateScaling(root_level, t >> root_level);
  r.part = *at;  // root_level is a band root by construction
  r.weight = std::pow(g, static_cast<double>(root_level));
  reads.push_back(r);
  return reads;
}

// Cross-product evaluation of per-dimension read lists. In slot-based mode
// the per-dimension parts are combined by `tiling` when present (the
// standard cross-product layout) or used directly (the 1-d tree layout).
// A non-null overlay folds pending contributions into every fetched
// coefficient; the address-mode fetch then goes through Locate + GetAt
// (exactly what Get does internally) so the physical slot is known.
Result<double> EvaluateCrossProduct(
    TiledStore* store, const StandardTiling* tiling, bool slot_based,
    const std::vector<std::vector<DimRead>>& reads, OperationContext* ctx,
    const CoefficientOverlay* overlay) {
  const uint32_t d = static_cast<uint32_t>(reads.size());
  std::vector<size_t> pick(d, 0);
  std::vector<uint64_t> address(d);
  std::vector<BlockSlot> parts(d);
  double value = 0.0;
  for (;;) {
    double weight = 1.0;
    for (uint32_t i = 0; i < d; ++i) {
      const DimRead& r = reads[i][pick[i]];
      weight *= r.weight;
      if (slot_based) {
        parts[i] = r.part;
      } else {
        address[i] = r.index;
      }
    }
    if (weight != 0.0) {
      double coeff;
      if (slot_based) {
        const BlockSlot at =
            tiling != nullptr ? tiling->Combine(parts) : parts[0];
        SS_ASSIGN_OR_RETURN(coeff, store->GetAt(at, ctx));
        if (overlay != nullptr) coeff = overlay->Adjust(at, coeff);
      } else if (overlay != nullptr) {
        SS_ASSIGN_OR_RETURN(const BlockSlot at,
                            store->layout().Locate(address));
        SS_ASSIGN_OR_RETURN(coeff, store->GetAt(at, ctx));
        coeff = overlay->Adjust(at, coeff);
      } else {
        SS_ASSIGN_OR_RETURN(coeff, store->Get(address, ctx));
      }
      value += weight * coeff;
    }
    uint32_t i = d;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < reads[i].size()) {
        advanced = true;
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  return value;
}

// Errors a resilient query absorbs by skipping the term: corruption,
// pool-pin exhaustion, transient I/O that outlasted its retries, and the
// deadline itself. Cancellation and argument/layout errors propagate.
bool IsDegradableError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kChecksumMismatch:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIOError:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

DegradedReason ReasonFor(StatusCode code) {
  switch (code) {
    case StatusCode::kChecksumMismatch:
      return DegradedReason::kQuarantined;
    case StatusCode::kResourceExhausted:
      return DegradedReason::kPinExhaustion;
    case StatusCode::kDeadlineExceeded:
      return DegradedReason::kDeadline;
    default:
      return DegradedReason::kUnavailable;
  }
}

// Degrading twin of EvaluateCrossProduct. Terms are enumerated in the SAME
// order, and fetched coefficients accumulate identically — with no faults
// the value is bit-identical to the exact evaluator. A degradable fetch
// failure marks the term's block missing and adds |weight| × sqrt(E_block)
// to the error bound; later terms on a missing block are skipped without
// touching the store (so a dead block costs one failed fetch, not many).
Result<DegradedResult> EvaluateCrossProductResilient(
    TiledStore* store, const StandardTiling* tiling, bool slot_based,
    const std::vector<std::vector<DimRead>>& reads, OperationContext* ctx,
    const CoefficientOverlay* overlay) {
  const uint32_t d = static_cast<uint32_t>(reads.size());
  std::vector<size_t> pick(d, 0);
  std::vector<uint64_t> address(d);
  std::vector<BlockSlot> parts(d);
  DegradedResult out;
  std::set<uint64_t> missing;
  for (;;) {
    double weight = 1.0;
    for (uint32_t i = 0; i < d; ++i) {
      const DimRead& r = reads[i][pick[i]];
      weight *= r.weight;
      if (slot_based) {
        parts[i] = r.part;
      } else {
        address[i] = r.index;
      }
    }
    if (weight != 0.0) {
      BlockSlot at;
      if (slot_based) {
        at = tiling != nullptr ? tiling->Combine(parts) : parts[0];
      } else {
        SS_ASSIGN_OR_RETURN(at, store->layout().Locate(address));
      }
      if (missing.contains(at.block)) {
        out.error_bound +=
            std::abs(weight) * store->BlockEnergyCeiling(at.block);
      } else {
        const Result<double> coeff = store->GetAt(at, ctx);
        if (coeff.ok()) {
          const double merged =
              overlay != nullptr ? overlay->Adjust(at, *coeff) : *coeff;
          out.value += weight * merged;
        } else if (IsDegradableError(coeff.status())) {
          missing.insert(at.block);
          if (out.reason == DegradedReason::kNone) {
            out.reason = ReasonFor(coeff.status().code());
          }
          out.error_bound +=
              std::abs(weight) * store->BlockEnergyCeiling(at.block);
        } else {
          return coeff.status();
        }
      }
    }
    uint32_t i = d;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < reads[i].size()) {
        advanced = true;
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  out.blocks_missing = missing.size();
  return out;
}

}  // namespace

const char* DegradedReasonToString(DegradedReason reason) {
  switch (reason) {
    case DegradedReason::kNone:
      return "None";
    case DegradedReason::kQuarantined:
      return "Quarantined";
    case DegradedReason::kPinExhaustion:
      return "PinExhaustion";
    case DegradedReason::kDeadline:
      return "Deadline";
    case DegradedReason::kUnavailable:
      return "Unavailable";
    case DegradedReason::kShardUnavailable:
      return "ShardUnavailable";
  }
  return "Unknown";
}

double RangeWeightNormSquared(uint32_t n, uint64_t lo, uint64_t hi,
                              Normalization norm) {
  // Candidates with nonzero aggregate weight: the overall scaling
  // coefficient (index 0) and, per level, the details whose support
  // contains lo or hi — a detail fully inside or outside [lo, hi] sums to
  // zero (Lemma 2's vanishing moment), so everything else drops out.
  double sum = 0.0;
  const double w0 = RangeSumWeight(n, 0, lo, hi, norm);
  sum += w0 * w0;
  for (uint32_t level = 0; level < n; ++level) {
    const uint32_t shift = n - level;
    const uint64_t k_lo = lo >> shift;
    const uint64_t k_hi = hi >> shift;
    const double wl =
        RangeSumWeight(n, (uint64_t{1} << level) + k_lo, lo, hi, norm);
    sum += wl * wl;
    if (k_hi != k_lo) {
      const double wh =
          RangeSumWeight(n, (uint64_t{1} << level) + k_hi, lo, hi, norm);
      sum += wh * wh;
    }
  }
  return sum;
}

namespace {

// Shared setup of PointQueryStandard{,Resilient}: validates the point and
// builds the per-dimension read lists.
Status BuildPointReads(TiledStore* store, std::span<const uint32_t> log_dims,
                       std::span<const uint64_t> point,
                       const QueryOptions& options,
                       const StandardTiling** tiling_out, bool* slots_out,
                       std::vector<std::vector<DimRead>>* reads) {
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  if (point.size() != d) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  for (uint32_t i = 0; i < d; ++i) {
    if (point[i] >= (uint64_t{1} << log_dims[i])) {
      return Status::OutOfRange("point beyond the dataset domain");
    }
  }
  const auto* tiling = dynamic_cast<const StandardTiling*>(&store->layout());
  const auto* tree_layout =
      d == 1 ? dynamic_cast<const TreeTilingLayout*>(&store->layout())
             : nullptr;
  const bool slots = options.use_scaling_slots &&
                     (tiling != nullptr || tree_layout != nullptr);
  reads->assign(d, {});
  for (uint32_t i = 0; i < d; ++i) {
    if (!slots) {
      (*reads)[i] = PointPathReads(log_dims[i], point[i], options.norm);
    } else {
      const TreeTiling& dim_tiling =
          tiling != nullptr ? tiling->dim_tiling(i) : tree_layout->tiling();
      (*reads)[i] = PointSlotReads(dim_tiling, point[i], options.norm);
    }
  }
  *tiling_out = tiling;
  *slots_out = slots;
  return Status::OK();
}

// Shared setup of RangeSumStandard{,Resilient}: validates the box and
// builds the per-dimension boundary-path read lists (Lemma 2).
Status BuildRangeReads(std::span<const uint32_t> log_dims,
                       std::span<const uint64_t> lo,
                       std::span<const uint64_t> hi,
                       const QueryOptions& options,
                       std::vector<std::vector<DimRead>>* reads) {
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  if (lo.size() != d || hi.size() != d) {
    return Status::InvalidArgument("range dimensionality mismatch");
  }
  reads->assign(d, {});
  for (uint32_t i = 0; i < d; ++i) {
    const uint32_t n = log_dims[i];
    if (lo[i] > hi[i] || hi[i] >= (uint64_t{1} << n)) {
      return Status::OutOfRange("bad range bounds");
    }
    // Candidate indices: union of the two boundary paths (all other details
    // have zero aggregate weight by the vanishing moment).
    std::vector<uint64_t> candidates = PathToRoot(n, lo[i]);
    for (uint64_t idx : PathToRoot(n, hi[i])) {
      if (std::find(candidates.begin(), candidates.end(), idx) ==
          candidates.end()) {
        candidates.push_back(idx);
      }
    }
    for (uint64_t idx : candidates) {
      const double w = RangeSumWeight(n, idx, lo[i], hi[i], options.norm);
      if (w != 0.0) (*reads)[i].push_back({idx, {}, w});
    }
  }
  return Status::OK();
}

}  // namespace

Result<double> PointQueryStandard(TiledStore* store,
                                  std::span<const uint32_t> log_dims,
                                  std::span<const uint64_t> point,
                                  const QueryOptions& options) {
  const StandardTiling* tiling = nullptr;
  bool slots = false;
  std::vector<std::vector<DimRead>> reads;
  SS_RETURN_IF_ERROR(BuildPointReads(store, log_dims, point, options,
                                     &tiling, &slots, &reads));
  return EvaluateCrossProduct(store, tiling, slots, reads, options.context,
                              options.overlay);
}

Result<DegradedResult> PointQueryStandardResilient(
    TiledStore* store, std::span<const uint32_t> log_dims,
    std::span<const uint64_t> point, const QueryOptions& options) {
  const StandardTiling* tiling = nullptr;
  bool slots = false;
  std::vector<std::vector<DimRead>> reads;
  SS_RETURN_IF_ERROR(BuildPointReads(store, log_dims, point, options,
                                     &tiling, &slots, &reads));
  return EvaluateCrossProductResilient(store, tiling, slots, reads,
                                       options.context, options.overlay);
}

Result<double> PointQueryNonstandard(TiledStore* store, uint32_t n,
                                     std::span<const uint64_t> point,
                                     const QueryOptions& options) {
  const uint32_t d = static_cast<uint32_t>(point.size());
  for (uint64_t p : point) {
    if (p >= (uint64_t{1} << n)) {
      return Status::OutOfRange("point beyond the dataset domain");
    }
  }
  const auto* tiling =
      dynamic_cast<const NonstandardTiling*>(&store->layout());
  const bool slots = options.use_scaling_slots && tiling != nullptr;
  const uint64_t corners = uint64_t{1} << d;
  const double g = ReconstructionAttenuation(options.norm);
  const double g_d = std::pow(g, static_cast<double>(d));

  // Start from either the overall average (full path) or the deepest tile's
  // root-node scaling (slot mode), then add detail contributions downward.
  uint32_t top_level;
  double value;
  NsCoeffId id;
  id.node.assign(d, 0);
  if (slots) {
    top_level = n - tiling->BandRootRow(tiling->num_bands() - 1);
    std::vector<uint64_t> node(d);
    for (uint32_t i = 0; i < d; ++i) node[i] = point[i] >> top_level;
    SS_ASSIGN_OR_RETURN(const BlockSlot at,
                        tiling->LocateScaling(top_level, node));
    SS_ASSIGN_OR_RETURN(const double scaling,
                        store->GetAt(at, options.context));
    value = scaling * std::pow(g_d, static_cast<double>(top_level));
  } else {
    top_level = n;
    std::vector<uint64_t> zero(d, 0);
    SS_ASSIGN_OR_RETURN(const double root, store->Get(zero, options.context));
    value = root * std::pow(g_d, static_cast<double>(n));
  }
  std::vector<uint64_t> address(d);
  for (uint32_t level = top_level; level >= 1; --level) {
    uint64_t corner = 0;
    id.level = level;
    for (uint32_t i = 0; i < d; ++i) {
      id.node[i] = point[i] >> level;
      corner |= ((point[i] >> (level - 1)) & 1u) << i;
    }
    const double magnitude = std::pow(g_d, static_cast<double>(level));
    for (uint64_t sigma = 1; sigma < corners; ++sigma) {
      id.subband = sigma;
      address = NsAddress(n, id);
      SS_ASSIGN_OR_RETURN(const double coeff,
                          store->Get(address, options.context));
      value += NsSign(sigma, corner) * magnitude * coeff;
    }
  }
  return value;
}

namespace {

// Shared front end of BatchPointQueryStandard{,Resilient}: validates EVERY
// point (dimensionality and domain) before any I/O — a bad point fails the
// batch up front without disturbing the store or evaluating a prefix — then
// computes the block-locality evaluation order.
Result<std::vector<size_t>> BatchPointOrder(
    TiledStore* store, std::span<const uint32_t> log_dims,
    const std::vector<std::vector<uint64_t>>& points,
    const QueryOptions& options) {
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  for (const std::vector<uint64_t>& point : points) {
    if (point.size() != d) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
    for (uint32_t i = 0; i < d; ++i) {
      if (point[i] >= (uint64_t{1} << log_dims[i])) {
        return Status::OutOfRange("point beyond the dataset domain");
      }
    }
  }
  const auto* tiling = dynamic_cast<const StandardTiling*>(&store->layout());
  std::vector<size_t> order(points.size());
  for (size_t i = 0; i < points.size(); ++i) order[i] = i;
  if (options.use_scaling_slots && tiling != nullptr) {
    // Schedule by the deepest-tile block each point reads from.
    std::vector<uint64_t> home(points.size());
    std::vector<BlockSlot> parts(d);
    for (size_t i = 0; i < points.size(); ++i) {
      for (uint32_t j = 0; j < d; ++j) {
        const TreeTiling& dt = tiling->dim_tiling(j);
        const uint32_t root_level =
            dt.n() - dt.BandRootRow(dt.num_bands() - 1);
        SS_ASSIGN_OR_RETURN(
            parts[j],
            dt.LocateScaling(root_level, points[i][j] >> root_level));
      }
      home[i] = tiling->Combine(parts).block;
    }
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return home[a] < home[b]; });
  }
  return order;
}

}  // namespace

Result<std::vector<double>> BatchPointQueryStandard(
    TiledStore* store, std::span<const uint32_t> log_dims,
    const std::vector<std::vector<uint64_t>>& points,
    const QueryOptions& options) {
  SS_ASSIGN_OR_RETURN(const std::vector<size_t> order,
                      BatchPointOrder(store, log_dims, points, options));
  std::vector<double> out(points.size());
  for (size_t i : order) {
    SS_ASSIGN_OR_RETURN(
        out[i], PointQueryStandard(store, log_dims, points[i], options));
  }
  return out;
}

Result<std::vector<DegradedResult>> BatchPointQueryStandardResilient(
    TiledStore* store, std::span<const uint32_t> log_dims,
    const std::vector<std::vector<uint64_t>>& points,
    const QueryOptions& options) {
  SS_ASSIGN_OR_RETURN(const std::vector<size_t> order,
                      BatchPointOrder(store, log_dims, points, options));
  std::vector<DegradedResult> out(points.size());
  for (size_t i : order) {
    SS_ASSIGN_OR_RETURN(out[i], PointQueryStandardResilient(
                                    store, log_dims, points[i], options));
  }
  return out;
}

double RangeSumWeight(uint32_t n, uint64_t index, uint64_t lo, uint64_t hi,
                      Normalization norm) {
  const uint64_t count = hi - lo + 1;
  if (index == 0) {
    const double w = (norm == Normalization::kAverage)
                         ? 1.0
                         : std::pow(2.0, -0.5 * static_cast<double>(n));
    return w * static_cast<double>(count);
  }
  const WaveletCoord c = CoordOfIndex(n, index);
  const DyadicInterval support{c.level, c.pos};
  const uint64_t s_lo = support.begin();
  const uint64_t s_mid = s_lo + support.length() / 2;  // first right-half cell
  const uint64_t s_hi = support.last();
  if (hi < s_lo || lo > s_hi) return 0.0;
  const auto overlap = [&](uint64_t a, uint64_t b) -> uint64_t {
    const uint64_t x = std::max(lo, a), y = std::min(hi, b);
    return x <= y ? (y - x + 1) : 0;
  };
  const double left = static_cast<double>(overlap(s_lo, s_mid - 1));
  const double right = static_cast<double>(overlap(s_mid, s_hi));
  const double w = (norm == Normalization::kAverage)
                       ? 1.0
                       : std::pow(2.0, -0.5 * static_cast<double>(c.level));
  return w * (left - right);
}

Result<double> RangeSumStandard(TiledStore* store,
                                std::span<const uint32_t> log_dims,
                                std::span<const uint64_t> lo,
                                std::span<const uint64_t> hi,
                                const QueryOptions& options) {
  std::vector<std::vector<DimRead>> reads;
  SS_RETURN_IF_ERROR(BuildRangeReads(log_dims, lo, hi, options, &reads));
  return EvaluateCrossProduct(store, nullptr, false, reads,
                              options.context, options.overlay);
}

Result<DegradedResult> RangeSumStandardResilient(
    TiledStore* store, std::span<const uint32_t> log_dims,
    std::span<const uint64_t> lo, std::span<const uint64_t> hi,
    const QueryOptions& options) {
  std::vector<std::vector<DimRead>> reads;
  SS_RETURN_IF_ERROR(BuildRangeReads(log_dims, lo, hi, options, &reads));
  return EvaluateCrossProductResilient(store, nullptr, false, reads,
                                       options.context, options.overlay);
}

Result<std::vector<ProgressiveEstimate>> ProgressiveRangeSumStandard(
    TiledStore* store, std::span<const uint32_t> log_dims,
    std::span<const uint64_t> lo, std::span<const uint64_t> hi,
    const QueryOptions& options) {
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  if (lo.size() != d || hi.size() != d) {
    return Status::InvalidArgument("range dimensionality mismatch");
  }
  // Per-dimension candidates with their depth (n - level; the root is 0).
  struct Candidate {
    uint64_t index;
    double weight;
    uint32_t depth;
  };
  std::vector<std::vector<Candidate>> reads(d);
  for (uint32_t i = 0; i < d; ++i) {
    const uint32_t n = log_dims[i];
    if (lo[i] > hi[i] || hi[i] >= (uint64_t{1} << n)) {
      return Status::OutOfRange("bad range bounds");
    }
    std::vector<uint64_t> candidates = PathToRoot(n, lo[i]);
    for (uint64_t idx : PathToRoot(n, hi[i])) {
      if (std::find(candidates.begin(), candidates.end(), idx) ==
          candidates.end()) {
        candidates.push_back(idx);
      }
    }
    for (uint64_t idx : candidates) {
      const double w = RangeSumWeight(n, idx, lo[i], hi[i], options.norm);
      if (w == 0.0) continue;
      const uint32_t depth = idx == 0 ? 0 : (n - CoordOfIndex(n, idx).level);
      reads[i].push_back({idx, w, depth});
    }
  }
  // Bucket the cross-product terms by total depth, then evaluate
  // coarse-to-fine.
  uint32_t max_depth = 0;
  std::vector<size_t> pick(d, 0);
  std::vector<uint64_t> address(d);
  struct Term {
    std::vector<uint64_t> address;
    double weight;
  };
  std::vector<std::vector<Term>> by_depth(1);
  for (;;) {
    double weight = 1.0;
    uint32_t depth = 0;
    for (uint32_t i = 0; i < d; ++i) {
      const Candidate& c = reads[i][pick[i]];
      address[i] = c.index;
      weight *= c.weight;
      depth += c.depth;
    }
    if (depth > max_depth) {
      max_depth = depth;
      by_depth.resize(max_depth + 1);
    }
    by_depth[depth].push_back({address, weight});
    uint32_t i = d;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < reads[i].size()) {
        advanced = true;
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  std::vector<ProgressiveEstimate> rounds;
  double estimate = 0.0;
  uint64_t read = 0;
  for (uint32_t depth = 0; depth <= max_depth; ++depth) {
    for (const Term& term : by_depth[depth]) {
      SS_ASSIGN_OR_RETURN(const double coeff,
                          store->Get(term.address, options.context));
      estimate += term.weight * coeff;
      ++read;
    }
    if (!by_depth[depth].empty() || depth == max_depth) {
      rounds.push_back({depth, estimate, read});
    }
  }
  return rounds;
}

namespace {

// 1-d aggregate weight of a level-j basis factor over [lo, hi], for a
// scaling factor (sigma bit 0) or wavelet factor (sigma bit 1) at node p.
double NsFactorWeight(uint32_t level, uint64_t p, bool wavelet, uint64_t lo,
                      uint64_t hi, Normalization norm) {
  const DyadicInterval support{level, p};
  const uint64_t s_lo = support.begin();
  const uint64_t s_hi = support.last();
  if (hi < s_lo || lo > s_hi) return 0.0;
  const auto overlap = [&](uint64_t a, uint64_t b) -> uint64_t {
    const uint64_t x = std::max(lo, a), y = std::min(hi, b);
    return x <= y ? (y - x + 1) : 0;
  };
  const double mag = (norm == Normalization::kAverage)
                         ? 1.0
                         : std::pow(2.0, -0.5 * static_cast<double>(level));
  if (!wavelet) {
    return mag * static_cast<double>(overlap(s_lo, s_hi));
  }
  const uint64_t s_mid = s_lo + support.length() / 2;
  return mag * (static_cast<double>(overlap(s_lo, s_mid - 1)) -
                static_cast<double>(overlap(s_mid, s_hi)));
}

struct NsRangeSumState {
  TiledStore* store;
  uint32_t n;
  uint32_t d;
  std::span<const uint64_t> lo;
  std::span<const uint64_t> hi;
  Normalization norm;
  OperationContext* ctx;
  // Per-depth accumulators (depth = n - level); sized n + 1.
  std::vector<double>* sum_by_depth;
  std::vector<uint64_t>* reads_by_depth;
};

// Visits node (level, p): adds its subband contributions and recurses into
// children whose support intersects the range and crosses its boundary.
Status VisitNode(const NsRangeSumState& st, uint32_t level,
                 const std::vector<uint64_t>& p) {
  const uint64_t corners = uint64_t{1} << st.d;
  const uint32_t depth = st.n - level;
  // Subband contributions of this node.
  NsCoeffId id;
  id.level = level;
  id.node = p;
  for (uint64_t sigma = 1; sigma < corners; ++sigma) {
    double w = 1.0;
    for (uint32_t i = 0; i < st.d && w != 0.0; ++i) {
      w *= NsFactorWeight(level, p[i], ((sigma >> i) & 1u) != 0, st.lo[i],
                          st.hi[i], st.norm);
    }
    if (w == 0.0) continue;
    id.subband = sigma;
    const auto address = NsAddress(st.n, id);
    SS_ASSIGN_OR_RETURN(const double coeff,
                        st.store->Get(address, st.ctx));
    (*st.sum_by_depth)[depth] += w * coeff;
    ++(*st.reads_by_depth)[depth];
  }
  if (level == 1) return Status::OK();
  // Recurse into children that intersect the range but are not fully inside
  // (fully-inside subtrees contribute nothing: every subband has a wavelet
  // factor whose aggregate weight vanishes).
  std::vector<uint64_t> child(st.d);
  for (uint64_t eps = 0; eps < corners; ++eps) {
    bool intersects = true;
    bool fully_inside = true;
    for (uint32_t i = 0; i < st.d; ++i) {
      child[i] = 2 * p[i] + ((eps >> i) & 1u);
      const DyadicInterval support{level - 1, child[i]};
      if (st.hi[i] < support.begin() || st.lo[i] > support.last()) {
        intersects = false;
        break;
      }
      if (st.lo[i] > support.begin() || st.hi[i] < support.last()) {
        fully_inside = false;
      }
    }
    if (!intersects || fully_inside) continue;
    SS_RETURN_IF_ERROR(VisitNode(st, level - 1, child));
  }
  return Status::OK();
}

// Shared driver: fills per-depth sums/reads (depth 0 = the root round).
Status NsRangeSumByDepth(TiledStore* store, uint32_t n,
                         std::span<const uint64_t> lo,
                         std::span<const uint64_t> hi,
                         const QueryOptions& options,
                         std::vector<double>* sum_by_depth,
                         std::vector<uint64_t>* reads_by_depth) {
  const uint32_t d = static_cast<uint32_t>(lo.size());
  if (hi.size() != d) {
    return Status::InvalidArgument("range dimensionality mismatch");
  }
  for (uint32_t i = 0; i < d; ++i) {
    if (lo[i] > hi[i] || hi[i] >= (uint64_t{1} << n)) {
      return Status::OutOfRange("bad range bounds");
    }
  }
  sum_by_depth->assign(n + 1, 0.0);
  reads_by_depth->assign(n + 1, 0);
  // Root scaling contribution (depth 0).
  std::vector<uint64_t> zero(d, 0);
  SS_ASSIGN_OR_RETURN(const double root, store->Get(zero, options.context));
  double w = 1.0;
  for (uint32_t i = 0; i < d; ++i) {
    w *= NsFactorWeight(n, 0, false, lo[i], hi[i], options.norm);
  }
  (*sum_by_depth)[0] += root * w;
  ++(*reads_by_depth)[0];
  if (n == 0) return Status::OK();
  NsRangeSumState st{store,           n,
                     d,               lo,
                     hi,              options.norm,
                     options.context, sum_by_depth,
                     reads_by_depth};
  std::vector<uint64_t> p(d, 0);
  return VisitNode(st, n, p);
}

}  // namespace

Result<double> RangeSumNonstandard(TiledStore* store, uint32_t n,
                                   std::span<const uint64_t> lo,
                                   std::span<const uint64_t> hi,
                                   const QueryOptions& options) {
  std::vector<double> sums;
  std::vector<uint64_t> reads;
  SS_RETURN_IF_ERROR(
      NsRangeSumByDepth(store, n, lo, hi, options, &sums, &reads));
  double sum = 0.0;
  for (double s : sums) sum += s;
  return sum;
}

Result<std::vector<ProgressiveEstimate>> ProgressiveRangeSumNonstandard(
    TiledStore* store, uint32_t n, std::span<const uint64_t> lo,
    std::span<const uint64_t> hi, const QueryOptions& options) {
  std::vector<double> sums;
  std::vector<uint64_t> reads;
  SS_RETURN_IF_ERROR(
      NsRangeSumByDepth(store, n, lo, hi, options, &sums, &reads));
  std::vector<ProgressiveEstimate> rounds;
  double estimate = 0.0;
  uint64_t read = 0;
  for (uint32_t depth = 0; depth < sums.size(); ++depth) {
    estimate += sums[depth];
    read += reads[depth];
    if (reads[depth] > 0 || depth + 1 == sums.size()) {
      rounds.push_back({depth, estimate, read});
    }
  }
  return rounds;
}

bool ClipBoxToSlab(std::span<const uint64_t> lo, std::span<const uint64_t> hi,
                   uint32_t dim, uint64_t slab_lo, uint64_t slab_hi,
                   std::vector<uint64_t>* clipped_lo,
                   std::vector<uint64_t>* clipped_hi) {
  if (lo[dim] > slab_hi || hi[dim] < slab_lo) return false;
  clipped_lo->assign(lo.begin(), lo.end());
  clipped_hi->assign(hi.begin(), hi.end());
  (*clipped_lo)[dim] = std::max(lo[dim], slab_lo);
  (*clipped_hi)[dim] = std::min(hi[dim], slab_hi);
  return true;
}

}  // namespace shiftsplit
