// Query processing over wavelet-transformed tile stores: point queries
// (Lemma 1) and range-sum queries (Lemma 2), for both decomposition forms.
//
// Two point-query strategies are provided:
//  * path mode — walk the full per-dimension root paths; touches one tile
//    per band and dimension (the allocation strategy's guarantee);
//  * scaling-slot mode — exploit the redundant subtree-root scaling stored
//    at slot 0 of every tile (paper §3): the reconstruction needs only the
//    deepest tile per dimension, i.e. a single block for a point query.

#ifndef SHIFTSPLIT_CORE_QUERY_H_
#define SHIFTSPLIT_CORE_QUERY_H_

#include <cstdint>
#include <span>

#include "shiftsplit/tile/tiled_store.h"
#include "shiftsplit/wavelet/haar.h"

namespace shiftsplit {

/// \brief Read-side merge hook: folds pending (buffered but not yet applied)
/// contributions into a fetched coefficient. Implemented by the serving
/// layer's DeltaBuffer; a query evaluated with a non-null overlay answers as
/// if every pending delta were already applied to the store.
///
/// Adjust must reproduce the store's own accumulation arithmetic: starting
/// from `stored`, add each pending contribution for the physical slot `at`
/// with `+=` in arrival order — the same floating-point chain ApplyToBlock
/// would execute — so merged answers are bit-identical to a fully-applied
/// store. Implementations must be safe to call from the querying thread
/// while writers keep buffering (the serving DeltaBuffer locks internally).
class CoefficientOverlay {
 public:
  virtual ~CoefficientOverlay() = default;

  /// \brief Returns `stored` with the slot's pending contributions folded in.
  virtual double Adjust(BlockSlot at, double stored) const = 0;
};

/// \brief Options shared by the query entry points.
struct QueryOptions {
  Normalization norm = Normalization::kAverage;
  /// Use the redundant tile-root scaling slots (requires the matching tree
  /// tiling layout and maintained slots). Falls back to path mode when the
  /// store's layout has no such slots.
  bool use_scaling_slots = false;
  /// Deadline / cancellation / retry budget for the query (not owned; may
  /// be null). Checked between block fetches, so a query past its deadline
  /// unwinds within one block read. Null: unbounded, as before.
  OperationContext* context = nullptr;
  /// Pending-delta merge hook (not owned; may be null). Applied to every
  /// fetched coefficient of the standard-form point/range/batch evaluators
  /// (exact and resilient alike); null keeps the store-only semantics.
  const CoefficientOverlay* overlay = nullptr;
  /// Approximation tolerance: 0 demands an exact answer (any unavailable
  /// shard/block fails the query), a positive value lets degradable entry
  /// points (ShardedCube's DegradedResult overloads) skip unavailable parts
  /// as long as the accumulated error bound stays within `max_error`. Use
  /// +infinity for "any degraded answer beats no answer".
  double max_error = 0.0;

  /// True when the caller opted into approximate answers.
  bool approx_ok() const { return max_error > 0.0; }
};

/// \brief Why a resilient query fell back to an approximate answer.
enum class DegradedReason {
  kNone = 0,        ///< the answer is exact
  kQuarantined,     ///< blocks failed checksum verification
  kPinExhaustion,   ///< the buffer pool was full of pinned frames
  kDeadline,        ///< the deadline passed mid-query
  kUnavailable,     ///< transient I/O or admission failures outlasted retries
  kShardUnavailable,  ///< whole shards were QUARANTINED/RECOVERING/FAILED
};

/// \brief Human-readable name of a DegradedReason (e.g. "Deadline").
const char* DegradedReasonToString(DegradedReason reason);

/// \brief Answer of a resilient query: exact when no block was skipped,
/// otherwise the partial reconstruction plus a hard error bound.
///
/// Every skipped cross-product term contributes |term weight| × sqrt(E_b)
/// to `error_bound`, where E_b is the skipped block's tracked energy
/// (TiledStore::EnableEnergyTracking) — sqrt(E_b) bounds the magnitude of
/// any coefficient in the block, the same Parseval argument behind
/// CompressedSynopsis error bounds. Without energy tracking the bound is
/// +infinity (degradation still answers, but unquantified).
struct DegradedResult {
  double value = 0.0;
  double error_bound = 0.0;     ///< |true answer − value| ≤ error_bound
  uint64_t blocks_missing = 0;  ///< distinct blocks skipped
  DegradedReason reason = DegradedReason::kNone;
  /// Shards skipped whole (sharded serving only; see
  /// ShardedCube::RangeSum(lo, hi, QueryOptions)). Each skipped shard's
  /// contribution to `error_bound` is the Cauchy–Schwarz bound
  /// sqrt(Π_d RangeWeightNormSquared) × sqrt(shard energy) plus the
  /// absolute mass of its unapplied deltas.
  std::vector<uint32_t> shards_missing;

  bool exact() const { return reason == DegradedReason::kNone; }
};

/// \brief Value of the data point `point` from a standard-form store.
Result<double> PointQueryStandard(TiledStore* store,
                                  std::span<const uint32_t> log_dims,
                                  std::span<const uint64_t> point,
                                  const QueryOptions& options = {});

/// \brief Value of the data point from a non-standard-form store (cube of
/// edge 2^n).
Result<double> PointQueryNonstandard(TiledStore* store, uint32_t n,
                                     std::span<const uint64_t> point,
                                     const QueryOptions& options = {});

/// \brief Batch of point queries with block-locality scheduling: in
/// scaling-slot mode the points are evaluated grouped by their deepest
/// tile, so each data block is fetched once per group regardless of the
/// input order. Results are returned in input order.
Result<std::vector<double>> BatchPointQueryStandard(
    TiledStore* store, std::span<const uint32_t> log_dims,
    const std::vector<std::vector<uint64_t>>& points,
    const QueryOptions& options = {});

/// \brief Sum of the data over the inclusive box [lo, hi] from a
/// standard-form store, touching O((2 log N + 1)^d) coefficients (Lemma 2).
Result<double> RangeSumStandard(TiledStore* store,
                                std::span<const uint32_t> log_dims,
                                std::span<const uint64_t> lo,
                                std::span<const uint64_t> hi,
                                const QueryOptions& options = {});

/// \brief Range-sum from a non-standard-form store: recursive descent over
/// the quadtree, visiting only nodes whose support crosses the box boundary.
Result<double> RangeSumNonstandard(TiledStore* store, uint32_t n,
                                   std::span<const uint64_t> lo,
                                   std::span<const uint64_t> hi,
                                   const QueryOptions& options = {});

/// \brief Resilient point query (standard form): like PointQueryStandard,
/// but degradable failures — quarantined blocks (ChecksumMismatch), pin
/// exhaustion (ResourceExhausted), transient I/O that outlasts the retry
/// budget (IOError/Unavailable) and mid-query deadlines — skip the affected
/// term instead of failing, accumulating an error bound (see
/// DegradedResult). Cancellation and argument errors still propagate. With
/// no faults the result is bit-identical to PointQueryStandard (same term
/// enumeration order).
Result<DegradedResult> PointQueryStandardResilient(
    TiledStore* store, std::span<const uint32_t> log_dims,
    std::span<const uint64_t> point, const QueryOptions& options = {});

/// \brief Resilient range sum (standard form); see
/// PointQueryStandardResilient for the degradation contract.
Result<DegradedResult> RangeSumStandardResilient(
    TiledStore* store, std::span<const uint32_t> log_dims,
    std::span<const uint64_t> lo, std::span<const uint64_t> hi,
    const QueryOptions& options = {});

/// \brief Resilient batch point query: every point is validated up front
/// (dimensionality and domain) before any I/O, then evaluated with the
/// per-point degradation contract of PointQueryStandardResilient. Results
/// are in input order; a degradable failure degrades only its own point.
Result<std::vector<DegradedResult>> BatchPointQueryStandardResilient(
    TiledStore* store, std::span<const uint32_t> log_dims,
    const std::vector<std::vector<uint64_t>>& points,
    const QueryOptions& options = {});

/// \brief Clips the inclusive box [lo, hi] to the slab
/// `slab_lo <= x[dim] <= slab_hi` along dimension `dim`. Returns false when
/// the box and the slab are disjoint; otherwise writes the clipped inclusive
/// bounds (equal to the input bounds in every other dimension). The serving
/// layer's shard router uses this to decompose a range sum into exact
/// per-shard sub-ranges: a box clipped to a dyadic sub-domain lies entirely
/// inside that sub-domain, so the sub-domain's self-contained transform
/// answers it exactly and the global sum is the sum of the parts.
bool ClipBoxToSlab(std::span<const uint64_t> lo, std::span<const uint64_t> hi,
                   uint32_t dim, uint64_t slab_lo, uint64_t slab_hi,
                   std::vector<uint64_t>* clipped_lo,
                   std::vector<uint64_t>* clipped_hi);

/// \brief The per-dimension aggregate weight with which the 1-d coefficient
/// at `index` contributes to the sum over [lo, hi] (inclusive): the sum of
/// its reconstruction weights over the interval. Zero for details fully
/// inside or outside the range (the 0-th vanishing moment of Lemma 2).
double RangeSumWeight(uint32_t n, uint64_t index, uint64_t lo, uint64_t hi,
                      Normalization norm);

/// \brief Σ w² of every 1-d coefficient's aggregate Lemma-2 weight over
/// [lo, hi] (inclusive, lo == hi gives the point-reconstruction weights).
/// Only the overall scaling coefficient and the ≤2 boundary-crossing
/// details per level have nonzero weight (0-th vanishing moment), so this
/// is O(log N) — no I/O.
///
/// Powers the skipped-shard error bound of degraded cross-shard queries:
/// a standard-form range sum is Σ over cross-product terms of
/// (Π_d w_d) × c_term, so by Cauchy–Schwarz its magnitude is at most
/// sqrt(Π_d RangeWeightNormSquared(n_d, lo_d, hi_d)) × sqrt(Σ c²) — the
/// per-dimension weight norms times the store's total coefficient energy
/// (TiledStore::TotalEnergyCeiling).
double RangeWeightNormSquared(uint32_t n, uint64_t lo, uint64_t hi,
                              Normalization norm);

/// \brief One refinement step of a progressive range sum.
struct ProgressiveEstimate {
  uint32_t depth = 0;            ///< coefficients down to this tree depth
  double estimate = 0.0;         ///< running estimate after this round
  uint64_t coefficients_read = 0;  ///< cumulative coefficient reads
};

/// \brief Progressive range-sum evaluation (the "progressive answers" use
/// of wavelets the paper's introduction cites): the Lemma-2 contributions
/// are consumed coarse-to-fine (by total tree depth of the coefficient
/// tuple), and the running estimate is reported after each depth. The last
/// estimate equals RangeSumStandard exactly.
Result<std::vector<ProgressiveEstimate>> ProgressiveRangeSumStandard(
    TiledStore* store, std::span<const uint32_t> log_dims,
    std::span<const uint64_t> lo, std::span<const uint64_t> hi,
    const QueryOptions& options = {});

/// \brief Non-standard-form progressive range sum: the quadtree descent of
/// RangeSumNonstandard reported level by level (depth = n - level), exact
/// after the last round.
Result<std::vector<ProgressiveEstimate>> ProgressiveRangeSumNonstandard(
    TiledStore* store, uint32_t n, std::span<const uint64_t> lo,
    std::span<const uint64_t> hi, const QueryOptions& options = {});

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_QUERY_H_
