#include "shiftsplit/core/synopsis.h"

#include <cassert>
#include <cmath>

namespace shiftsplit {

bool TopKSynopsis::Offer(uint64_t key, double value) {
  ++offers_;
  if (k_ == 0) return false;
  assert(!values_.contains(key) && "coefficient keys may be offered once");
  const double magnitude = std::abs(value);
  if (values_.size() < k_) {
    order_.emplace(magnitude, key);
    values_[key] = value;
    return true;
  }
  auto weakest = order_.begin();
  if (magnitude <= weakest->first) return false;
  values_.erase(weakest->second);
  order_.erase(weakest);
  order_.emplace(magnitude, key);
  values_[key] = value;
  return true;
}

double TopKSynopsis::ValueOrZero(uint64_t key) const {
  auto it = values_.find(key);
  return it == values_.end() ? 0.0 : it->second;
}

double TopKSynopsis::MinMagnitude() const {
  if (values_.size() < k_ || order_.empty()) return 0.0;
  return order_.begin()->first;
}

std::vector<std::pair<uint64_t, double>> TopKSynopsis::Extract() const {
  std::vector<std::pair<uint64_t, double>> out;
  out.reserve(values_.size());
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    out.emplace_back(it->second, values_.at(it->second));
  }
  return out;
}

}  // namespace shiftsplit
