#include "shiftsplit/core/aggregate.h"

#include <cmath>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/tile/standard_tiling.h"

namespace shiftsplit {

AggregateCube::AggregateCube(std::vector<uint32_t> log_dims, Options options)
    : log_dims_(std::move(log_dims)), options_(options) {}

Result<std::unique_ptr<AggregateCube>> AggregateCube::Build(
    ChunkSource* source, const Options& options) {
  const TensorShape& shape = source->shape();
  std::unique_ptr<AggregateCube> cube(
      new AggregateCube(shape.LogDims(), options));

  auto make_store = [&](std::unique_ptr<MemoryBlockManager>* device,
                        std::unique_ptr<TiledStore>* store) -> Status {
    auto layout = std::make_unique<StandardTiling>(cube->log_dims_,
                                                   options.b);
    *device = std::make_unique<MemoryBlockManager>(layout->block_capacity());
    SS_ASSIGN_OR_RETURN(*store,
                        TiledStore::Create(std::move(layout), device->get(),
                                           options.pool_blocks));
    return Status::OK();
  };
  SS_RETURN_IF_ERROR(make_store(&cube->values_device_, &cube->values_));
  SS_RETURN_IF_ERROR(make_store(&cube->squares_device_, &cube->squares_));

  // Stream the source once; each chunk feeds both transforms.
  const uint32_t d = shape.ndim();
  std::vector<uint64_t> chunk_dims(d), grid_dims(d);
  for (uint32_t i = 0; i < d; ++i) {
    const uint32_t m = std::min(options.log_chunk, cube->log_dims_[i]);
    chunk_dims[i] = uint64_t{1} << m;
    grid_dims[i] = shape.dim(i) >> m;
  }
  TensorShape chunk_shape(chunk_dims);
  TensorShape grid(grid_dims);
  Tensor chunk(chunk_shape);
  Tensor squared(chunk_shape);
  std::vector<uint64_t> pos(d, 0);
  do {
    SS_RETURN_IF_ERROR(source->ReadChunk(pos, &chunk));
    for (uint64_t i = 0; i < chunk.size(); ++i) {
      squared[i] = chunk[i] * chunk[i];
    }
    SS_RETURN_IF_ERROR(ApplyChunkStandard(chunk, pos, cube->log_dims_,
                                          cube->values_.get(), options.norm));
    SS_RETURN_IF_ERROR(ApplyChunkStandard(squared, pos, cube->log_dims_,
                                          cube->squares_.get(),
                                          options.norm));
  } while (grid.Next(pos));
  SS_RETURN_IF_ERROR(cube->values_->Flush());
  SS_RETURN_IF_ERROR(cube->squares_->Flush());
  return cube;
}

Result<AggregateCube::RangeAggregates> AggregateCube::Query(
    std::span<const uint64_t> lo, std::span<const uint64_t> hi,
    OperationContext* ctx) {
  QueryOptions q;
  q.norm = options_.norm;
  q.context = ctx;
  RangeAggregates out;
  SS_ASSIGN_OR_RETURN(out.sum,
                      RangeSumStandard(values_.get(), log_dims_, lo, hi, q));
  SS_ASSIGN_OR_RETURN(
      out.sum_squares,
      RangeSumStandard(squares_.get(), log_dims_, lo, hi, q));
  out.count = 1;
  for (size_t i = 0; i < lo.size(); ++i) out.count *= hi[i] - lo[i] + 1;
  const double n = static_cast<double>(out.count);
  out.average = out.sum / n;
  out.variance = std::max(0.0, out.sum_squares / n - out.average * out.average);
  out.stddev = std::sqrt(out.variance);
  return out;
}

Status AggregateCube::UpdateDyadic(const Tensor& deltas,
                                   const Tensor& old_values,
                                   std::span<const uint64_t> chunk_pos) {
  if (!(deltas.shape() == old_values.shape())) {
    return Status::InvalidArgument(
        "deltas and old values must share a shape");
  }
  ApplyOptions update;
  update.mode = ApplyMode::kUpdate;
  SS_RETURN_IF_ERROR(ApplyChunkStandard(deltas, chunk_pos, log_dims_,
                                        values_.get(), options_.norm,
                                        update));
  // (x + d)^2 - x^2 = 2 x d + d^2.
  Tensor square_deltas(deltas.shape());
  for (uint64_t i = 0; i < deltas.size(); ++i) {
    square_deltas[i] = 2.0 * old_values[i] * deltas[i] +
                       deltas[i] * deltas[i];
  }
  SS_RETURN_IF_ERROR(ApplyChunkStandard(square_deltas, chunk_pos, log_dims_,
                                        squares_.get(), options_.norm,
                                        update));
  SS_RETURN_IF_ERROR(values_->Flush());
  return squares_->Flush();
}

IoStats AggregateCube::stats() const {
  IoStats total = values_device_->stats();
  total += squares_device_->stats();
  return total;
}

}  // namespace shiftsplit
