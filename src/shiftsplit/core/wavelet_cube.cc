#include "shiftsplit/core/wavelet_cube.h"

#include <filesystem>
#include <random>

#include "shiftsplit/core/query.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/core/updater.h"
#include "shiftsplit/storage/file_block_manager.h"
#include "shiftsplit/storage/memory_block_manager.h"

namespace shiftsplit {

namespace {

std::string ManifestPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "store.manifest").string();
}
std::string BlocksPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "blocks.bin").string();
}
std::string JournalPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "store.journal").string();
}

// Nonzero random epoch stamped into every v2 block footer, so blocks from a
// deleted-and-recreated store at the same path can never verify.
uint64_t RandomEpoch() {
  std::random_device rd;
  uint64_t epoch = 0;
  do {
    epoch = (static_cast<uint64_t>(rd()) << 32) | rd();
  } while (epoch == 0);
  return epoch;
}

StoreManifest MakeManifest(std::vector<uint32_t> log_dims,
                           const WaveletCube::Options& options) {
  StoreManifest manifest;
  manifest.form = options.form;
  manifest.norm = options.norm;
  manifest.b = options.b;
  manifest.log_dims = std::move(log_dims);
  return manifest;
}

}  // namespace

Status WaveletCube::OpenStore(uint64_t pool_blocks, BlockManager* borrowed) {
  SS_ASSIGN_OR_RETURN(auto layout, manifest_.MakeLayout());
  if (dir_.empty()) {
    BlockManager* device = borrowed;
    if (device == nullptr) {
      device_ =
          std::make_unique<MemoryBlockManager>(layout->block_capacity());
      device = device_.get();
    } else if (device->block_size() != layout->block_capacity()) {
      return Status::InvalidArgument(
          "borrowed device block size does not match the layout");
    }
    SS_ASSIGN_OR_RETURN(
        store_, TiledStore::Create(std::move(layout), device, pool_blocks));
    return Status::OK();
  }
  FileBlockManager::Options file_options;
  file_options.checksums = manifest_.format_version >= 2;
  file_options.epoch = manifest_.store_epoch;
  file_options.parity_group = manifest_.parity_group;
  SS_ASSIGN_OR_RETURN(device_,
                      FileBlockManager::Open(BlocksPath(dir_),
                                             layout->block_capacity(),
                                             file_options));
  if (manifest_.format_version >= 2) {
    SS_ASSIGN_OR_RETURN(
        store_, TiledStore::Open(std::move(layout), device_.get(),
                                 pool_blocks,
                                 std::make_unique<Journal>(
                                     JournalPath(dir_))));
    return Status::OK();
  }
  SS_ASSIGN_OR_RETURN(store_, TiledStore::Create(std::move(layout),
                                                 device_.get(), pool_blocks));
  return Status::OK();
}

Result<std::unique_ptr<WaveletCube>> WaveletCube::CreateInMemory(
    std::vector<uint32_t> log_dims, const Options& options) {
  if (options.form == StoreForm::kNaive) {
    return Status::InvalidArgument(
        "WaveletCube manages tiled stores; use TiledStore directly for the "
        "naive layout");
  }
  std::unique_ptr<WaveletCube> cube(new WaveletCube());
  cube->manifest_ = MakeManifest(std::move(log_dims), options);
  SS_RETURN_IF_ERROR(cube->OpenStore(options.pool_blocks, options.device));
  return cube;
}

Result<std::unique_ptr<WaveletCube>> WaveletCube::CreateOnDisk(
    const std::string& dir, std::vector<uint32_t> log_dims,
    const Options& options) {
  if (options.form == StoreForm::kNaive) {
    return Status::InvalidArgument(
        "WaveletCube manages tiled stores; use TiledStore directly for the "
        "naive layout");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create store directory " + dir);
  }
  std::unique_ptr<WaveletCube> cube(new WaveletCube());
  cube->dir_ = dir;
  cube->manifest_ = MakeManifest(std::move(log_dims), options);
  cube->manifest_.format_version = options.format_version;
  if (options.format_version >= 2) {
    cube->manifest_.store_epoch = RandomEpoch();
  }
  if (options.parity_group > 0) {
    if (options.format_version < 2) {
      return Status::InvalidArgument(
          "parity groups require a checksummed store (format_version >= 2)");
    }
    cube->manifest_.format_version = 3;
    cube->manifest_.parity_group = options.parity_group;
  }
  SS_RETURN_IF_ERROR(cube->manifest_.Save(ManifestPath(dir)));
  SS_RETURN_IF_ERROR(cube->OpenStore(options.pool_blocks));
  return cube;
}

Result<std::unique_ptr<WaveletCube>> WaveletCube::OpenOnDisk(
    const std::string& dir, uint64_t pool_blocks) {
  std::unique_ptr<WaveletCube> cube(new WaveletCube());
  cube->dir_ = dir;
  SS_ASSIGN_OR_RETURN(cube->manifest_,
                      StoreManifest::Load(ManifestPath(dir)));
  SS_RETURN_IF_ERROR(cube->OpenStore(pool_blocks));
  return cube;
}

Status WaveletCube::Ingest(ChunkSource* source, uint32_t log_chunk,
                           const TransformOptions* options) {
  TransformOptions resolved;
  if (options != nullptr) resolved = *options;
  resolved.norm = manifest_.norm;
  if (manifest_.form == StoreForm::kNonstandard) {
    return TransformDatasetNonstandard(source, log_chunk, store_.get(),
                                       resolved)
        .status();
  }
  return TransformDatasetStandard(source, log_chunk, store_.get(), resolved)
      .status();
}

Result<double> WaveletCube::PointQuery(std::span<const uint64_t> point,
                                       bool use_scaling_slots,
                                       OperationContext* ctx) {
  QueryOptions q;
  q.norm = manifest_.norm;
  q.use_scaling_slots = use_scaling_slots;
  q.context = ctx;
  if (manifest_.form == StoreForm::kNonstandard) {
    return PointQueryNonstandard(store_.get(), manifest_.log_dims[0], point,
                                 q);
  }
  return PointQueryStandard(store_.get(), manifest_.log_dims, point, q);
}

Result<double> WaveletCube::RangeSum(std::span<const uint64_t> lo,
                                     std::span<const uint64_t> hi,
                                     OperationContext* ctx) {
  QueryOptions q;
  q.norm = manifest_.norm;
  q.context = ctx;
  if (manifest_.form == StoreForm::kNonstandard) {
    return RangeSumNonstandard(store_.get(), manifest_.log_dims[0], lo, hi,
                               q);
  }
  return RangeSumStandard(store_.get(), manifest_.log_dims, lo, hi, q);
}

Result<DegradedResult> WaveletCube::PointQueryResilient(
    std::span<const uint64_t> point, bool use_scaling_slots,
    OperationContext* ctx) {
  if (manifest_.form == StoreForm::kNonstandard) {
    return Status::Unimplemented(
        "graceful degradation currently supports standard-form cubes; "
        "non-standard queries still honour deadlines via PointQuery");
  }
  QueryOptions q;
  q.norm = manifest_.norm;
  q.use_scaling_slots = use_scaling_slots;
  q.context = ctx;
  return PointQueryStandardResilient(store_.get(), manifest_.log_dims, point,
                                     q);
}

Result<DegradedResult> WaveletCube::RangeSumResilient(
    std::span<const uint64_t> lo, std::span<const uint64_t> hi,
    OperationContext* ctx) {
  if (manifest_.form == StoreForm::kNonstandard) {
    return Status::Unimplemented(
        "graceful degradation currently supports standard-form cubes; "
        "non-standard queries still honour deadlines via RangeSum");
  }
  QueryOptions q;
  q.norm = manifest_.norm;
  q.context = ctx;
  return RangeSumStandardResilient(store_.get(), manifest_.log_dims, lo, hi,
                                   q);
}

Result<Tensor> WaveletCube::Extract(std::span<const uint64_t> lo,
                                    std::span<const uint64_t> hi,
                                    OperationContext* ctx) {
  if (manifest_.form == StoreForm::kNonstandard) {
    return ReconstructRangeNonstandard(store_.get(), manifest_.log_dims[0],
                                       lo, hi, manifest_.norm, ctx);
  }
  return ReconstructRangeStandard(store_.get(), manifest_.log_dims, lo, hi,
                                  manifest_.norm, ctx);
}

Status WaveletCube::Update(const Tensor& deltas,
                           std::span<const uint64_t> origin) {
  if (manifest_.form == StoreForm::kNonstandard) {
    return UpdateRangeNonstandard(store_.get(), manifest_.log_dims[0],
                                  deltas, origin, manifest_.norm);
  }
  return UpdateRangeStandard(store_.get(), manifest_.log_dims, deltas,
                             origin, manifest_.norm);
}

Result<CompressedSynopsis> WaveletCube::Compress(uint64_t k) {
  if (manifest_.form != StoreForm::kStandard) {
    return Status::Unimplemented(
        "synopsis compression currently supports standard-form cubes");
  }
  return CompressedSynopsis::Build(store_.get(), manifest_.log_dims, k,
                                   manifest_.norm);
}

Status WaveletCube::Flush() {
  SS_RETURN_IF_ERROR(store_->Flush());
  return store_->manager().Sync();
}

Status WaveletCube::Close() { return store_->Close(); }

Result<std::vector<uint64_t>> WaveletCube::Scrub() {
  return store_->Scrub();
}

Result<ScrubReport> WaveletCube::ScrubRepair() {
  return store_->ScrubRepair();
}

Status WaveletCube::UpgradeParityOnDisk(const std::string& dir,
                                        uint64_t parity_group,
                                        uint64_t pool_blocks) {
  if (parity_group == 0) {
    return Status::InvalidArgument("parity_group must be nonzero");
  }
  SS_ASSIGN_OR_RETURN(StoreManifest manifest,
                      StoreManifest::Load(ManifestPath(dir)));
  if (manifest.format_version == 3 &&
      manifest.parity_group == parity_group) {
    return Status::OK();  // already upgraded
  }
  if (manifest.format_version < 2) {
    return Status::InvalidArgument(
        "parity upgrade requires a checksummed (v2) store");
  }
  // Open with parity forced on: FileBlockManager creates the sidecar
  // zero-filled, and the repair scrub's stale-parity detection rewrites
  // every group's stride from the verified data. The manifest is stamped v3
  // only after the sidecar is complete and synced, so a crash mid-upgrade
  // leaves a valid v2 store and rerunning finishes the job.
  std::unique_ptr<WaveletCube> cube(new WaveletCube());
  cube->dir_ = dir;
  cube->manifest_ = manifest;
  cube->manifest_.parity_group = parity_group;
  SS_RETURN_IF_ERROR(cube->OpenStore(pool_blocks));
  SS_ASSIGN_OR_RETURN(const ScrubReport report, cube->ScrubRepair());
  if (!report.unrepairable.empty()) {
    return Status::ChecksumMismatch(
        "parity upgrade aborted: " +
        std::to_string(report.unrepairable.size()) +
        " blocks failed verification and cannot be rebuilt");
  }
  SS_RETURN_IF_ERROR(cube->Close());
  cube->manifest_.format_version = 3;
  return cube->manifest_.Save(ManifestPath(dir));
}

}  // namespace shiftsplit
