// OLAP range aggregates over wavelet stores — the exact-answer flavour of
// the range-aggregate line of work the paper builds on (Lemma 2 / [9]):
// COUNT, SUM, AVERAGE, VARIANCE and STDDEV of any box, each answered in
// O((2 log N + 1)^d) coefficient reads by maintaining two transforms — the
// values and their squares — side by side.

#ifndef SHIFTSPLIT_CORE_AGGREGATE_H_
#define SHIFTSPLIT_CORE_AGGREGATE_H_

#include <memory>

#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/data/dataset.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/tiled_store.h"

namespace shiftsplit {

/// \brief Exact range-aggregate answers from a pair of standard-form
/// stores (values and squared values).
class AggregateCube {
 public:
  struct Options {
    Normalization norm = Normalization::kAverage;
    uint32_t b = 2;             ///< log2 tile edge
    uint64_t pool_blocks = 256;  ///< per-store buffer budget
    uint32_t log_chunk = 3;     ///< build-time chunk edge (log2)
  };

  /// \brief Streams `source` once, building both transforms chunk by chunk.
  static Result<std::unique_ptr<AggregateCube>> Build(ChunkSource* source,
                                                      const Options& options);

  /// \brief All aggregates of the inclusive box [lo, hi].
  struct RangeAggregates {
    uint64_t count = 0;
    double sum = 0.0;
    double sum_squares = 0.0;
    double average = 0.0;
    double variance = 0.0;  ///< population variance
    double stddev = 0.0;
  };
  /// A non-null `ctx` threads a deadline / cancellation / retry budget
  /// through both underlying range sums.
  Result<RangeAggregates> Query(std::span<const uint64_t> lo,
                                std::span<const uint64_t> hi,
                                OperationContext* ctx = nullptr);

  /// \brief Adds a batch of deltas to a dyadic box, keeping both transforms
  /// consistent. Requires the current values of the box (`old_values`) to
  /// maintain the squares ((x+d)^2 - x^2 = 2xd + d^2); pass the tensor
  /// returned by ReconstructDyadicStandard or tracked by the caller.
  Status UpdateDyadic(const Tensor& deltas, const Tensor& old_values,
                      std::span<const uint64_t> chunk_pos);

  const std::vector<uint32_t>& log_dims() const { return log_dims_; }
  TiledStore* values() { return values_.get(); }
  TiledStore* squares() { return squares_.get(); }

  /// \brief Combined I/O across both stores.
  IoStats stats() const;

 private:
  AggregateCube(std::vector<uint32_t> log_dims, Options options);

  std::vector<uint32_t> log_dims_;
  Options options_;
  std::unique_ptr<MemoryBlockManager> values_device_;
  std::unique_ptr<MemoryBlockManager> squares_device_;
  std::unique_ptr<TiledStore> values_;
  std::unique_ptr<TiledStore> squares_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_AGGREGATE_H_
