// I/O-efficient transformation of massive multidimensional datasets
// (paper §5.1, Figure 9, Results 1 and 2): stream the dataset chunk by
// chunk (each chunk small enough for memory), transform each chunk
// in-memory, SHIFT its details into place and SPLIT its average into the
// still-open covering coefficients.
//
// Standard form (Result 1): O((N/M)^d ((M/B)^d + per-chunk path)) blocks.
// Non-standard form (Result 2): with z-order chunk traversal the covering
// path stays resident across consecutive chunks, reaching the optimal
// O((N/B)^d) blocks.

#ifndef SHIFTSPLIT_CORE_CHUNKED_TRANSFORM_H_
#define SHIFTSPLIT_CORE_CHUNKED_TRANSFORM_H_

#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/data/dataset.h"
#include "shiftsplit/storage/io_stats.h"
#include "shiftsplit/tile/tiled_store.h"

namespace shiftsplit {

/// \brief Options for the chunked transformation.
struct TransformOptions {
  Normalization norm = Normalization::kAverage;
  /// Maintain the redundant tile-root scaling slots (paper §3).
  bool maintain_scaling_slots = true;
  /// Visit chunks in z-order (Result 2's access pattern) instead of
  /// row-major order. With z-order, consecutive chunks share most of their
  /// covering path, so the split targets stay in the buffer pool.
  bool zorder = false;
  /// Sparse-data mode (§5.1's modification for z non-zero values): all-zero
  /// chunks are skipped outright and zero coefficients are never written,
  /// giving O(z + z log(N/z))-style coefficient I/O on clustered data.
  bool sparse = false;
  /// Tile-batched apply: each chunk's writes are grouped by destination
  /// block and applied with one buffer-pool GetBlock per distinct block
  /// (instead of one per coefficient). Bit-identical results; false selects
  /// the per-coefficient reference path.
  bool batched = true;
  /// Warm the buffer pool with each chunk's exact block set in one vectored
  /// device read before applying it (batched path only).
  bool prefetch = false;
  /// Worker threads for the ingest pipeline. Workers read, transform and
  /// plan chunks concurrently; plans commit to the store strictly in chunk
  /// order, so any thread count produces a byte-identical store (floating-
  /// point accumulation order never changes). Values > 1 require `batched`.
  uint32_t num_threads = 1;
  /// By default the worker count is additionally clamped to the hardware
  /// concurrency — oversubscribing a CPU-bound pipeline only adds scheduling
  /// overhead. Set true to force exactly `num_threads` workers (tests use
  /// this to exercise the ordered-commit machinery on any machine).
  bool oversubscribe = false;
};

/// \brief Outcome counters of a chunked transformation.
struct TransformResult {
  IoStats store_io;     ///< block/coefficient I/O on the coefficient store
  uint64_t cells_read = 0;  ///< data cells streamed from the source
  uint64_t chunks = 0;      ///< number of chunks processed
};

/// \brief Transforms `source` into the standard form on `store`, streaming
/// hyper-rectangular chunks of per-dimension log2 extents
/// min(log_chunk, log_dim_i).
Result<TransformResult> TransformDatasetStandard(ChunkSource* source,
                                                 uint32_t log_chunk,
                                                 TiledStore* store,
                                                 const TransformOptions&
                                                     options = {});

/// \brief Transforms `source` (a hypercube) into the non-standard form on
/// `store`, streaming cubic chunks of edge 2^log_chunk.
Result<TransformResult> TransformDatasetNonstandard(ChunkSource* source,
                                                    uint32_t log_chunk,
                                                    TiledStore* store,
                                                    const TransformOptions&
                                                        options = {});

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_CHUNKED_TRANSFORM_H_
