// Approximate query answering from K-term synopses — the OLAP application
// the paper's introduction motivates (approximate/progressive range
// aggregates from wavelet-compressed data [2,3,7,9,12,13,15]).
//
// A CompressedSynopsis retains the K standard-form coefficients with the
// largest L2 contribution (magnitudes are compared in the orthonormal
// sense regardless of the store's normalization) and answers point and
// range-sum queries from those K terms alone, with no disk I/O.

#ifndef SHIFTSPLIT_CORE_APPROX_H_
#define SHIFTSPLIT_CORE_APPROX_H_

#include <unordered_map>
#include <vector>

#include "shiftsplit/tile/tiled_store.h"
#include "shiftsplit/wavelet/haar.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief In-memory K-term compression of a standard-form transform.
class CompressedSynopsis {
 public:
  /// \brief Scans every coefficient of the store and keeps the K with the
  /// largest energy contribution. O(N^d) reads, once.
  static Result<CompressedSynopsis> Build(TiledStore* store,
                                          std::vector<uint32_t> log_dims,
                                          uint64_t k, Normalization norm);

  /// \brief Builds directly from an in-memory transformed tensor.
  static CompressedSynopsis FromTensor(const Tensor& transformed,
                                       uint64_t k, Normalization norm);

  /// Number of retained terms.
  uint64_t size() const { return coefficients_.size(); }
  uint64_t k() const { return k_; }
  const std::vector<uint32_t>& log_dims() const { return log_dims_; }

  /// \brief Approximate value of one data point: combines the retained
  /// coefficients on the point's path cross product. O((log N + 1)^d).
  double PointEstimate(std::span<const uint64_t> point) const;

  /// \brief Approximate sum over the inclusive box [lo, hi]: every retained
  /// coefficient contributes its aggregate weight. O(K d).
  double RangeSumEstimate(std::span<const uint64_t> lo,
                          std::span<const uint64_t> hi) const;

  /// \brief The fraction of the transform's total energy (orthonormal
  /// sense) captured by the retained terms, recorded at Build time.
  double energy_fraction() const { return energy_fraction_; }

  /// \brief Total signal energy (sum of squared data values), recorded at
  /// Build time.
  double total_energy() const { return total_energy_; }

  /// \brief A guaranteed bound on |RangeSumEstimate - exact sum| for the
  /// box [lo, hi]: by Cauchy-Schwarz and Parseval, the dropped
  /// coefficients' contribution is at most
  ///   sqrt(residual energy) * sqrt(#cells in the box).
  double RangeSumErrorBound(std::span<const uint64_t> lo,
                            std::span<const uint64_t> hi) const;

 private:
  CompressedSynopsis(std::vector<uint32_t> log_dims, uint64_t k,
                     Normalization norm);

  // Orthonormal-magnitude weight of an address (product of per-dim 2^(j/2)
  // rescalings for the kAverage normalization; 1 for kOrthonormal).
  double L2Weight(std::span<const uint64_t> address) const;

  void Insert(std::span<const uint64_t> address, double value);
  uint64_t FlatIndex(std::span<const uint64_t> address) const;

  std::vector<uint32_t> log_dims_;
  std::vector<uint64_t> strides_;
  uint64_t k_;
  Normalization norm_;
  double energy_fraction_ = 1.0;
  double total_energy_ = 0.0;
  // flat address -> stored (store-normalization) coefficient value
  std::unordered_map<uint64_t, double> coefficients_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_APPROX_H_
