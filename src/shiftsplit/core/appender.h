// Appending to wavelet-decomposed transforms (paper §5.2): new data slabs
// arrive along one growing dimension (time, in the PRECIPITATION scenario).
// Appends into already-allocated domain are plain SHIFT-SPLIT chunk applies;
// when the domain is exhausted the transform is *expanded* entirely in the
// wavelet domain — the growing dimension's tree gains a level (Figure 10):
// every coefficient with a detail index along that dimension is SHIFTed
// (re-indexed), and coefficients scaling along it SPLIT into the new level's
// detail and the new root, at O(N^d / B^d) block I/O and no reconstruction.

#ifndef SHIFTSPLIT_CORE_APPENDER_H_
#define SHIFTSPLIT_CORE_APPENDER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/tiled_store.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Creates the block device backing a (re)sized transform store.
using BlockManagerFactory =
    std::function<std::unique_ptr<BlockManager>(uint64_t block_size)>;

/// \brief Standard-form transform store that grows along one dimension.
class Appender {
 public:
  struct Options {
    Normalization norm = Normalization::kAverage;
    uint32_t b = 2;              ///< log2 of the block edge
    uint64_t pool_blocks = 64;   ///< buffer-pool budget
    /// Maintain redundant scaling slots. Expansion rebuilds them from the
    /// primary coefficients (an extra pass); off by default because the
    /// paper's appending analysis tracks primary coefficients only.
    bool maintain_scaling_slots = false;
    /// Device factory; defaults to in-memory devices.
    BlockManagerFactory factory;
    /// When non-empty, the store is opened through TiledStore::Open with an
    /// intent journal at this path: every Append/Expand flush becomes an
    /// atomic multi-block commit, and an interrupted commit is repaired on
    /// the next open. Expansion reuses the same journal path for the new
    /// device (any pending commit is recovered before the old store is
    /// migrated).
    std::string journal_path;
  };

  /// \param initial_log_dims per-dimension log2 extents of the initial
  ///        (empty) allocated domain
  /// \param append_dim       index of the growing dimension
  static Result<std::unique_ptr<Appender>> Create(
      std::vector<uint32_t> initial_log_dims, uint32_t append_dim,
      Options options);

  /// \brief Reopens an appender over an existing device: the options'
  /// factory must return the device already holding the store's blocks
  /// (e.g. a FileBlockManager over the persisted file), `log_dims` must be
  /// the dimensions at shutdown, and `filled` restores the fill level.
  /// Together with StoreManifest this makes appending durable across
  /// process restarts.
  static Result<std::unique_ptr<Appender>> Resume(
      std::vector<uint32_t> log_dims, uint32_t append_dim, uint64_t filled,
      Options options);

  /// \brief Appends a slab: a tensor spanning the full extent of every
  /// non-growing dimension, with a power-of-two thickness h along the
  /// growing dimension; the current fill level must be a multiple of h.
  /// Expands the domain first if the slab does not fit.
  Status Append(const Tensor& slab);

  /// \brief Doubles the growing dimension's domain in the wavelet domain.
  /// Normally invoked by Append on demand; exposed for testing/benchmarks.
  Status Expand();

  /// Data filled so far along the growing dimension.
  uint64_t filled() const { return filled_; }
  /// Allocated (power-of-two) extent of the growing dimension.
  uint64_t capacity() const {
    return uint64_t{1} << log_dims_[append_dim_];
  }
  uint64_t expansions() const { return expansions_; }
  const std::vector<uint32_t>& log_dims() const { return log_dims_; }

  TiledStore* store() { return store_.get(); }

  /// \brief Cumulative block/coefficient I/O across all devices this
  /// appender has used (expansion discards the old device but keeps its
  /// counters).
  IoStats total_io() const;

 private:
  Appender(std::vector<uint32_t> log_dims, uint32_t append_dim,
           Options options);

  // (Re)creates the store for the current log_dims_ over a fresh device.
  Status OpenStore();

  std::vector<uint32_t> log_dims_;
  uint32_t append_dim_;
  Options options_;
  uint64_t filled_ = 0;
  uint64_t expansions_ = 0;
  IoStats retired_io_;  // I/O of devices discarded by expansions
  std::unique_ptr<BlockManager> manager_;
  std::unique_ptr<TiledStore> store_;
};

/// \brief Rebuilds every redundant scaling slot of a standard-tiled store
/// from its primary coefficients (used after domain expansion, which
/// restructures the tiling). Cost: one expansion-weighted pass per slot.
Status RebuildStandardScalingSlots(TiledStore* store,
                                   std::span<const uint32_t> log_dims,
                                   Normalization norm);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_APPENDER_H_
