// WaveletCube — the one-stop facade over a disk-resident wavelet-transformed
// dataset. It bundles a tile layout, a block device (in-memory or file), a
// buffer pool and a manifest, and dispatches every maintenance and query
// operation to the right decomposition-form implementation:
//
//   auto cube = WaveletCube::CreateOnDisk("/data/cube", {5,5,3,6}, options);
//   cube->Ingest(&dataset, /*log_chunk=*/3);
//   double v   = *cube->PointQuery({16, 20, 0, 31});
//   double sum = *cube->RangeSum({0,0,0,0}, {31,31,0,63});
//   cube->Update(deltas, /*origin=*/{4, 8, 0, 16});
//   Tensor box = *cube->Extract({0,0,0,0}, {7,7,0,0});
//
// File-backed cubes are self-describing (storage/manifest.h) and reopen with
// WaveletCube::OpenOnDisk.

#ifndef SHIFTSPLIT_CORE_WAVELET_CUBE_H_
#define SHIFTSPLIT_CORE_WAVELET_CUBE_H_

#include <memory>
#include <string>

#include "shiftsplit/core/approx.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/storage/manifest.h"
#include "shiftsplit/tile/tiled_store.h"

namespace shiftsplit {

/// \brief Facade over one wavelet-transformed dataset.
class WaveletCube {
 public:
  struct Options {
    StoreForm form = StoreForm::kStandard;
    Normalization norm = Normalization::kAverage;
    uint32_t b = 2;              ///< log2 tile edge
    uint64_t pool_blocks = 256;  ///< buffer-pool budget
    /// Manifest format for CreateOnDisk: 2 (default) gives per-block CRC32C
    /// footers, an atomic-commit journal, and crash recovery on open; 1
    /// writes the legacy raw format. Ignored for in-memory cubes.
    uint32_t format_version = 2;
    /// XOR parity group size for CreateOnDisk: every `parity_group`
    /// consecutive device blocks share one parity stride in blocks.bin.parity,
    /// letting any single corrupt block per group be rebuilt in place
    /// (inline on read, or by a repair scrub). 0 (default) disables parity;
    /// nonzero requires checksums (format_version >= 2) and stamps the
    /// manifest as v3. Ignored for in-memory cubes.
    uint64_t parity_group = 0;
    /// Test seam for CreateInMemory: back the cube with this externally
    /// owned block device (e.g. a fault-injection decorator over a
    /// MemoryBlockManager) instead of a fresh one. Must outlive the cube and
    /// have block_size == the layout's block capacity. Ignored on disk.
    BlockManager* device = nullptr;
  };

  /// \brief Creates an empty in-memory cube.
  static Result<std::unique_ptr<WaveletCube>> CreateInMemory(
      std::vector<uint32_t> log_dims, const Options& options);

  /// \brief Creates an empty file-backed cube in `dir` (store.manifest +
  /// blocks.bin).
  static Result<std::unique_ptr<WaveletCube>> CreateOnDisk(
      const std::string& dir, std::vector<uint32_t> log_dims,
      const Options& options);

  /// \brief Reopens a file-backed cube from its manifest.
  static Result<std::unique_ptr<WaveletCube>> OpenOnDisk(
      const std::string& dir, uint64_t pool_blocks = 256);

  /// \brief Streams a dataset into the cube chunk by chunk (Results 1-2).
  Status Ingest(ChunkSource* source, uint32_t log_chunk,
                const TransformOptions* options = nullptr);

  /// \brief Value of one data point. Defaults to the single-block
  /// scaling-slot strategy when the layout supports it. A non-null `ctx`
  /// threads a deadline / cancellation / retry budget through every block
  /// fetch (all query entry points alike).
  Result<double> PointQuery(std::span<const uint64_t> point,
                            bool use_scaling_slots = true,
                            OperationContext* ctx = nullptr);

  /// \brief Sum of the inclusive box [lo, hi] (Lemma 2).
  Result<double> RangeSum(std::span<const uint64_t> lo,
                          std::span<const uint64_t> hi,
                          OperationContext* ctx = nullptr);

  /// \brief Resilient point query (standard-form cubes): degradable
  /// failures — quarantined blocks, pin exhaustion, transient I/O beyond
  /// the retry budget, mid-query deadlines — skip the affected blocks and
  /// return an approximate answer with a hard error bound instead of
  /// failing (see DegradedResult). Call EnableEnergyTracking() first for
  /// finite bounds. Unimplemented for non-standard-form cubes.
  Result<DegradedResult> PointQueryResilient(std::span<const uint64_t> point,
                                             bool use_scaling_slots = true,
                                             OperationContext* ctx = nullptr);

  /// \brief Resilient range sum; see PointQueryResilient.
  Result<DegradedResult> RangeSumResilient(std::span<const uint64_t> lo,
                                           std::span<const uint64_t> hi,
                                           OperationContext* ctx = nullptr);

  /// \brief Builds the per-block energy index that gives resilient queries
  /// finite error bounds (one full scan; see
  /// TiledStore::EnableEnergyTracking).
  Status EnableEnergyTracking() { return store_->EnableEnergyTracking(); }

  /// \brief Reconstructs the inclusive box [lo, hi] (Result 6); the tensor
  /// extents are the box extents rounded up to powers of two.
  Result<Tensor> Extract(std::span<const uint64_t> lo,
                         std::span<const uint64_t> hi,
                         OperationContext* ctx = nullptr);

  /// \brief Adds `deltas` (anchored at `origin`) in the wavelet domain
  /// (Example 2).
  Status Update(const Tensor& deltas, std::span<const uint64_t> origin);

  /// \brief K-term compression of the whole cube (standard form only).
  Result<CompressedSynopsis> Compress(uint64_t k);

  /// \brief Writes dirty blocks back (and fsyncs file-backed devices).
  /// An atomic multi-block commit for v2 on-disk cubes.
  Status Flush();

  /// \brief Flushes and syncs, propagating the first failure (the
  /// destructor can only write back best-effort). Call before dropping a
  /// cube whose contents matter; idempotent.
  Status Close();

  /// \brief Verifies every on-disk block's checksum; returns the corrupt
  /// block ids (empty = clean). Corruption flips the store to read-only
  /// with quarantined blocks read as zeros. v1/in-memory cubes are
  /// trivially clean.
  Result<std::vector<uint64_t>> Scrub();

  /// \brief Repair-mode scrub: corrupt blocks are rebuilt in place from
  /// group parity (v3 cubes) instead of quarantined; only double faults —
  /// two corrupt blocks in one parity group — stay unrepairable and degrade
  /// the store to read-only. See TiledStore::ScrubRepair.
  Result<ScrubReport> ScrubRepair();

  /// \brief Upgrades an existing checksummed (v2) on-disk store to v3 with
  /// parity group size `parity_group`: opens the store with parity enabled
  /// (creating a zeroed blocks.bin.parity sidecar), runs one full repair
  /// scrub — which rewrites every group's stale parity from the verified
  /// data — and only then stamps the manifest v3. A crash mid-upgrade
  /// leaves a valid v2 store; rerunning completes it. Fails without
  /// touching the manifest if the scrub finds unrepairable corruption.
  static Status UpgradeParityOnDisk(const std::string& dir,
                                    uint64_t parity_group,
                                    uint64_t pool_blocks = 256);

  /// \brief Checksum/journal/recovery counters (see DurabilityStats).
  DurabilityStats durability_stats() const {
    return store_->durability_stats();
  }

  const StoreManifest& manifest() const { return manifest_; }
  TiledStore* store() { return store_.get(); }
  const IoStats& stats() const { return store_->stats(); }
  /// Buffer-pool behaviour (hit rate, evictions, write-backs, pins).
  BufferPool::Stats pool_stats() const { return store_->pool_stats(); }
  const std::vector<uint32_t>& log_dims() const {
    return manifest_.log_dims;
  }

 private:
  WaveletCube() = default;

  Status OpenStore(uint64_t pool_blocks, BlockManager* borrowed = nullptr);

  StoreManifest manifest_;
  std::string dir_;  // empty for in-memory cubes
  std::unique_ptr<BlockManager> device_;  // null when the device is borrowed
  std::unique_ptr<TiledStore> store_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_WAVELET_CUBE_H_
