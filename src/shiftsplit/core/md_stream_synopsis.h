// Multidimensional data-stream synopses (paper §5.3, Results 4 and 5) —
// to our knowledge the paper is the first treatment of wavelet synopses for
// multidimensional streams; these classes implement both decompositions it
// analyzes.
//
// Result 4 (standard form): a d-dimensional stream growing along its last
// (time) dimension. Because every coefficient tuple pairs a 1-d index per
// constant dimension with a time-tree index, all N^(d-1) tuples per open
// time coefficient stay open: the maintainer holds O(K + buffer +
// N^(d-1) log T) coefficients — faithful to the Result-4 bound, prohibitive
// unless the constant dimensions are small (the paper's conclusion).
//
// Result 5 (non-standard form): the stream is a sequence of N^d hypercubes
// along time; each cube is decomposed in the non-standard form (sub-cubes
// arriving in z-order, Result 2's access pattern), and the cube averages
// form a 1-d stream decomposed over time. Open state: the in-cube quadtree
// crest (2^d - 1) log(N/M) + the time crest log(T/...) — the Result-5 bound.

#ifndef SHIFTSPLIT_CORE_MD_STREAM_SYNOPSIS_H_
#define SHIFTSPLIT_CORE_MD_STREAM_SYNOPSIS_H_

#include <map>
#include <vector>

#include "shiftsplit/core/synopsis.h"
#include "shiftsplit/wavelet/haar.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Result-4 maintainer: standard-form synopsis of a stream growing
/// along its last dimension.
///
/// Data arrives as slabs spanning the full constant dimensions with a
/// power-of-two thickness 2^m along time.
class StandardStreamSynopsis {
 public:
  /// \param const_log_dims log2 extents of the d-1 constant dimensions
  /// \param m              log2 of the slab thickness (time buffer)
  /// \param k              synopsis size
  StandardStreamSynopsis(std::vector<uint32_t> const_log_dims, uint32_t m,
                         uint64_t k,
                         Normalization norm = Normalization::kOrthonormal);

  /// \brief Pushes the next slab (shape: const dims ... x 2^m).
  Status Push(const Tensor& slab);

  /// \brief Finalizes all open coefficients.
  Status Finish();

  const TopKSynopsis& synopsis() const { return synopsis_; }
  uint64_t slabs() const { return slabs_; }
  /// Current log2 capacity of the time domain (grows by doubling).
  uint32_t log_t() const { return log_t_; }
  /// Open (non-final) coefficient count — the Result-4 memory term.
  uint64_t open_coefficients() const;
  uint64_t coeff_touches() const { return coeff_touches_; }

  /// \brief Stable 64-bit key of the coefficient with time-tree coordinate
  /// (time_level, time_pos) — time_level = 0 encodes the time-scaling root —
  /// and flat constant-dimension tuple index `const_flat`.
  uint64_t EncodeKey(uint32_t time_level, uint64_t time_pos,
                     uint64_t const_flat) const;

 private:
  // Finalizes crest level `j` (offering its tensor) if its position moved.
  void SyncCrestLevel(uint32_t j, uint64_t chunk_index);
  // Doubles the time domain.
  void ExpandTime();

  std::vector<uint32_t> const_log_dims_;
  uint32_t m_;
  Normalization norm_;
  TopKSynopsis synopsis_;
  uint64_t slabs_ = 0;
  uint32_t log_t_;
  uint64_t const_cells_;  // product of constant extents
  uint64_t coeff_touches_ = 0;
  bool finished_ = false;
  // Open time-tree coefficients: absolute time level -> (position, values
  // over the constant-dimension tuple space).
  struct CrestLevel {
    uint64_t pos = 0;
    std::vector<double> values;
  };
  std::map<uint32_t, CrestLevel> crest_;
  std::vector<double> root_;  // time-scaling root per constant tuple
};

/// \brief Result-5 maintainer: non-standard-form synopsis of a stream of
/// hypercubes along time.
class NonstandardStreamSynopsis {
 public:
  /// \param d    dimensionality of each cube
  /// \param n    log2 of the cube edge
  /// \param m    log2 of the arriving sub-cube edge (buffer M^d)
  /// \param k    synopsis size
  NonstandardStreamSynopsis(uint32_t d, uint32_t n, uint32_t m, uint64_t k,
                            Normalization norm = Normalization::kOrthonormal);

  /// \brief Pushes the next sub-cube (cube of edge 2^m); sub-cubes must
  /// arrive in z-order within each consecutive time cube.
  Status Push(const Tensor& subcube);

  /// \brief Finalizes everything (the current cube must be complete).
  Status Finish();

  const TopKSynopsis& synopsis() const { return synopsis_; }
  uint64_t cubes_completed() const { return cube_t_; }
  uint64_t open_coefficients() const;
  uint64_t coeff_touches() const { return coeff_touches_; }

  /// \brief Key of an in-cube coefficient: cube index + flat tensor address.
  uint64_t EncodeCubeKey(uint64_t cube_t, uint64_t flat_address) const;
  /// \brief Key of a time-tree coefficient over the cube averages.
  uint64_t EncodeTimeKey(uint32_t time_level, uint64_t time_pos) const;

 private:
  void SyncCubeCrest(uint64_t z);
  Status CompleteCube();
  void SyncTimeCrest(uint64_t t);
  void ExpandTime();

  uint32_t d_;
  uint32_t n_;
  uint32_t m_;
  Normalization norm_;
  TopKSynopsis synopsis_;
  uint64_t coeff_touches_ = 0;
  bool finished_ = false;

  // Within-cube state.
  uint64_t cube_t_ = 0;   // completed cubes
  uint64_t next_z_ = 0;   // next expected sub-cube z-position
  double cube_root_ = 0;  // accumulated cube average
  struct CubeCrestLevel {
    uint64_t node_id = 0;            // z >> d*(j-m)
    std::vector<double> subbands;    // 2^d - 1 open values
  };
  std::map<uint32_t, CubeCrestLevel> cube_crest_;  // level j in (m, n]

  // Time-tree state over cube averages.
  uint32_t log_t_ = 0;
  struct TimeCrestLevel {
    uint64_t pos = 0;
    double value = 0;
  };
  std::map<uint32_t, TimeCrestLevel> time_crest_;
  double time_root_ = 0;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_MD_STREAM_SYNOPSIS_H_
