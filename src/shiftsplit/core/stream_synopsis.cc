#include "shiftsplit/core/stream_synopsis.h"

#include <algorithm>

#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

BufferedStreamSynopsis::BufferedStreamSynopsis(uint32_t n, uint64_t k,
                                               uint32_t b, Normalization norm)
    : n_(n), b_(std::min(b, n)), norm_(norm), synopsis_(k) {
  buffer_.reserve(uint64_t{1} << b_);
}

Status BufferedStreamSynopsis::Push(double value) {
  if (finished_) {
    return Status::InvalidArgument("stream already finished");
  }
  if (items_ >= (uint64_t{1} << n_)) {
    return Status::OutOfRange("stream exceeded its declared domain size");
  }
  buffer_.push_back(value);
  ++items_;
  if (buffer_.size() == (uint64_t{1} << b_)) {
    const uint64_t chunk_index = (items_ >> b_) - 1;
    SS_RETURN_IF_ERROR(ApplyBuffer(chunk_index));
    buffer_.clear();
  }
  return Status::OK();
}

Status BufferedStreamSynopsis::ApplyBuffer(uint64_t chunk_index) {
  std::vector<std::vector<double>> pyramid;
  std::vector<double> transform;
  SS_RETURN_IF_ERROR(HaarPyramid(buffer_, norm_, &pyramid, &transform));

  // The buffered details are final: offer them straight to the synopsis.
  for (uint64_t local = 1; local < transform.size(); ++local) {
    synopsis_.Offer(ShiftIndex(n_, b_, chunk_index, local), transform[local]);
    ++coeff_touches_;
  }
  // Finalize crest coefficients the new path no longer visits; the stream
  // advances monotonically, so they can never change again.
  const auto contributions =
      Split1D(n_, b_, chunk_index, transform[0], norm_);
  for (auto it = crest_.begin(); it != crest_.end();) {
    const bool still_open =
        std::any_of(contributions.begin(), contributions.end(),
                    [&](const SplitContribution& c) {
                      return c.index == it->first;
                    });
    if (still_open) {
      ++it;
    } else {
      synopsis_.Offer(it->first, it->second);
      it = crest_.erase(it);
    }
  }
  // SPLIT the buffer average into the crest.
  for (const SplitContribution& c : contributions) {
    crest_[c.index] += c.delta;
    ++coeff_touches_;
  }
  return Status::OK();
}

Status BufferedStreamSynopsis::Finish() {
  if (finished_) return Status::OK();
  if (!buffer_.empty()) {
    return Status::InvalidArgument(
        "stream length must be a multiple of the buffer size");
  }
  finished_ = true;
  for (const auto& [index, value] : crest_) {
    synopsis_.Offer(index, value);
  }
  crest_.clear();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// UnboundedStreamSynopsis
// ---------------------------------------------------------------------------

UnboundedStreamSynopsis::UnboundedStreamSynopsis(uint64_t k, uint32_t b,
                                                 Normalization norm)
    : b_(b), norm_(norm), synopsis_(k), log_n_(b) {
  buffer_.reserve(uint64_t{1} << b_);
}

uint64_t UnboundedStreamSynopsis::EncodeKey(uint32_t level, uint64_t pos) {
  return (static_cast<uint64_t>(level) << 40) | pos;
}

void UnboundedStreamSynopsis::Expand() {
  // The old root's energy splits into the new top detail (the seen data
  // occupy the left half) and the new, attenuated root — §5.2's tree
  // expansion performed on the synopsis state.
  const double atten = ScalingAttenuation(norm_);
  const uint32_t new_level = log_n_ + 1;
  crest_[new_level] = CrestLevel{0, root_ * atten};
  root_ *= atten;
  log_n_ = new_level;
  coeff_touches_ += 2;
}

Status UnboundedStreamSynopsis::Push(double value) {
  if (finished_) return Status::InvalidArgument("stream already finished");
  buffer_.push_back(value);
  ++items_;
  if (buffer_.size() == (uint64_t{1} << b_)) {
    const uint64_t chunk_index = (items_ >> b_) - 1;
    while (chunk_index >= (uint64_t{1} << (log_n_ - b_))) Expand();
    SS_RETURN_IF_ERROR(ApplyBuffer(chunk_index));
    buffer_.clear();
  }
  return Status::OK();
}

Status UnboundedStreamSynopsis::ApplyBuffer(uint64_t chunk_index) {
  std::vector<std::vector<double>> pyramid;
  std::vector<double> transform;
  SS_RETURN_IF_ERROR(HaarPyramid(buffer_, norm_, &pyramid, &transform));

  // Final buffered details, keyed by their stable (level, pos) coordinates.
  for (uint64_t local = 1; local < transform.size(); ++local) {
    const WaveletCoord wc = CoordOfIndex(b_, local);
    synopsis_.Offer(
        EncodeKey(wc.level, (chunk_index << (b_ - wc.level)) + wc.pos),
        transform[local]);
    ++coeff_touches_;
  }
  // Crest maintenance at levels (b, log_n]; finalize departed positions.
  const double atten = ScalingAttenuation(norm_);
  double magnitude = transform[0];
  for (uint32_t j = b_ + 1; j <= log_n_; ++j) {
    magnitude *= atten;
    const uint64_t pos = chunk_index >> (j - b_);
    auto it = crest_.find(j);
    if (it == crest_.end()) {
      crest_[j] = CrestLevel{pos, 0.0};
      it = crest_.find(j);
    } else if (it->second.pos != pos) {
      synopsis_.Offer(EncodeKey(j, it->second.pos), it->second.value);
      it->second.pos = pos;
      it->second.value = 0.0;
    }
    const double sign = InLeftHalf(b_, chunk_index, j) ? 1.0 : -1.0;
    it->second.value += sign * magnitude;
    ++coeff_touches_;
  }
  root_ += magnitude;  // atten^(log_n - b) * buffer average
  ++coeff_touches_;
  return Status::OK();
}

Status UnboundedStreamSynopsis::Finish() {
  if (finished_) return Status::OK();
  if (!buffer_.empty()) {
    return Status::InvalidArgument(
        "stream length must be a multiple of the buffer size");
  }
  finished_ = true;
  for (const auto& [level, entry] : crest_) {
    synopsis_.Offer(EncodeKey(level, entry.pos), entry.value);
  }
  crest_.clear();
  synopsis_.Offer(EncodeKey(0, 0), root_);
  return Status::OK();
}

}  // namespace shiftsplit
