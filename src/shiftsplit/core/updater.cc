#include "shiftsplit/core/updater.h"

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/reconstruct.h"

namespace shiftsplit {

Status UpdateDyadicStandard(TiledStore* store,
                            std::span<const uint32_t> log_dims,
                            const Tensor& deltas,
                            std::span<const uint64_t> chunk_pos,
                            Normalization norm,
                            bool maintain_scaling_slots) {
  ApplyOptions options;
  options.mode = ApplyMode::kUpdate;
  options.maintain_scaling_slots = maintain_scaling_slots;
  SS_RETURN_IF_ERROR(ApplyChunkStandard(deltas, chunk_pos, log_dims, store,
                                        norm, options));
  return store->Flush();
}

Status UpdateDyadicNonstandard(TiledStore* store, uint32_t n,
                               const Tensor& deltas,
                               std::span<const uint64_t> chunk_pos,
                               Normalization norm,
                               bool maintain_scaling_slots) {
  ApplyOptions options;
  options.mode = ApplyMode::kUpdate;
  options.maintain_scaling_slots = maintain_scaling_slots;
  SS_RETURN_IF_ERROR(
      ApplyChunkNonstandard(deltas, chunk_pos, n, store, norm, options));
  return store->Flush();
}

Status UpdateRangeStandard(TiledStore* store,
                           std::span<const uint32_t> log_dims,
                           const Tensor& deltas,
                           std::span<const uint64_t> origin,
                           Normalization norm,
                           bool maintain_scaling_slots) {
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  if (deltas.shape().ndim() != d || origin.size() != d) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  std::vector<std::vector<DyadicInterval>> covers(d);
  for (uint32_t i = 0; i < d; ++i) {
    const uint64_t hi = origin[i] + deltas.shape().dim(i) - 1;
    if (hi >= (uint64_t{1} << log_dims[i])) {
      return Status::OutOfRange("update box beyond the domain");
    }
    covers[i] = DyadicCover(origin[i], hi);
  }
  // Apply each dyadic sub-box. Sub-boxes share most of their SPLIT path, so
  // the dirty blocks stay pooled across applies and one flush at the end
  // writes each touched block back once — not once per sub-box.
  ApplyOptions options;
  options.mode = ApplyMode::kUpdate;
  options.maintain_scaling_slots = maintain_scaling_slots;
  std::vector<size_t> pick(d, 0);
  for (;;) {
    std::vector<uint64_t> sub_dims(d), sub_pos(d);
    for (uint32_t i = 0; i < d; ++i) {
      sub_dims[i] = covers[i][pick[i]].length();
      sub_pos[i] = covers[i][pick[i]].index;
    }
    Tensor sub{TensorShape(sub_dims)};
    std::vector<uint64_t> local(d, 0), src(d);
    do {
      for (uint32_t i = 0; i < d; ++i) {
        src[i] = covers[i][pick[i]].begin() - origin[i] + local[i];
      }
      sub.At(local) = deltas.At(src);
    } while (sub.shape().Next(local));
    SS_RETURN_IF_ERROR(ApplyChunkStandard(sub, sub_pos, log_dims, store,
                                          norm, options));
    uint32_t i = d;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < covers[i].size()) {
        advanced = true;
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  return store->Flush();
}

Status UpdateRangeNonstandard(TiledStore* store, uint32_t n,
                              const Tensor& deltas,
                              std::span<const uint64_t> origin,
                              Normalization norm,
                              bool maintain_scaling_slots) {
  const uint32_t d = deltas.shape().ndim();
  if (origin.size() != d) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  std::vector<uint64_t> hi(d);
  for (uint32_t i = 0; i < d; ++i) {
    hi[i] = origin[i] + deltas.shape().dim(i) - 1;
    if (hi[i] >= (uint64_t{1} << n)) {
      return Status::OutOfRange("update box beyond the domain");
    }
  }
  // One flush for the whole cover (see UpdateRangeStandard).
  ApplyOptions options;
  options.mode = ApplyMode::kUpdate;
  options.maintain_scaling_slots = maintain_scaling_slots;
  for (const DyadicCube& cube : CubeCover(d, n, origin, hi)) {
    Tensor sub(TensorShape::Cube(d, uint64_t{1} << cube.level));
    std::vector<uint64_t> local(d, 0), src(d);
    do {
      for (uint32_t i = 0; i < d; ++i) {
        src[i] = (cube.node[i] << cube.level) - origin[i] + local[i];
      }
      sub.At(local) = deltas.At(src);
    } while (sub.shape().Next(local));
    SS_RETURN_IF_ERROR(ApplyChunkNonstandard(sub, cube.node, n, store, norm,
                                             options));
  }
  return store->Flush();
}

}  // namespace shiftsplit
