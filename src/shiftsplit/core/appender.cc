#include "shiftsplit/core/appender.h"

#include <cmath>

#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

Appender::Appender(std::vector<uint32_t> log_dims, uint32_t append_dim,
                   Options options)
    : log_dims_(std::move(log_dims)),
      append_dim_(append_dim),
      options_(std::move(options)) {}

Result<std::unique_ptr<Appender>> Appender::Create(
    std::vector<uint32_t> initial_log_dims, uint32_t append_dim,
    Options options) {
  if (initial_log_dims.empty() || append_dim >= initial_log_dims.size()) {
    return Status::InvalidArgument("bad dimensions or append dimension");
  }
  if (!options.factory) {
    options.factory = [](uint64_t block_size) {
      return std::make_unique<MemoryBlockManager>(block_size);
    };
  }
  std::unique_ptr<Appender> appender(
      new Appender(std::move(initial_log_dims), append_dim,
                   std::move(options)));
  SS_RETURN_IF_ERROR(appender->OpenStore());
  return appender;
}

Result<std::unique_ptr<Appender>> Appender::Resume(
    std::vector<uint32_t> log_dims, uint32_t append_dim, uint64_t filled,
    Options options) {
  if (log_dims.empty() || append_dim >= log_dims.size()) {
    return Status::InvalidArgument("bad dimensions or append dimension");
  }
  if (filled > (uint64_t{1} << log_dims[append_dim])) {
    return Status::InvalidArgument("fill level beyond the allocated domain");
  }
  SS_ASSIGN_OR_RETURN(auto appender,
                      Create(std::move(log_dims), append_dim,
                             std::move(options)));
  appender->filled_ = filled;
  return appender;
}

Status Appender::OpenStore() {
  auto layout = std::make_unique<StandardTiling>(log_dims_, options_.b);
  const uint64_t block_size = layout->block_capacity();
  manager_ = options_.factory(block_size);
  if (manager_ == nullptr) {
    return Status::Internal("block manager factory returned null");
  }
  if (!options_.journal_path.empty()) {
    SS_ASSIGN_OR_RETURN(
        store_, TiledStore::Open(std::move(layout), manager_.get(),
                                 options_.pool_blocks,
                                 std::make_unique<Journal>(
                                     options_.journal_path)));
    if (store_->read_only()) {
      return Status::IOError("appender store " + options_.journal_path +
                             " opened read-only after failed recovery");
    }
    return Status::OK();
  }
  SS_ASSIGN_OR_RETURN(store_,
                      TiledStore::Create(std::move(layout), manager_.get(),
                                         options_.pool_blocks));
  return Status::OK();
}

IoStats Appender::total_io() const {
  IoStats total = retired_io_;
  if (manager_ != nullptr) total += manager_->stats();
  return total;
}

Status Appender::Expand() {
  const uint32_t d = static_cast<uint32_t>(log_dims_.size());
  const uint32_t old_n = log_dims_[append_dim_];
  // Keep the old store aside, open a doubled one.
  std::unique_ptr<TiledStore> old_store = std::move(store_);
  std::unique_ptr<BlockManager> old_manager = std::move(manager_);
  log_dims_[append_dim_] += 1;
  SS_RETURN_IF_ERROR(OpenStore());

  const double atten = ScalingAttenuation(options_.norm);
  // Every old coefficient tuple is visited once: detail indices along the
  // growing dimension SHIFT (re-index), the scaling index SPLITs into the
  // new top detail (w_{old_n+1,0}, flat index 1) and the new root.
  std::vector<uint64_t> old_dims(d);
  for (uint32_t i = 0; i < d; ++i) {
    old_dims[i] = uint64_t{1} << (i == append_dim_ ? old_n : log_dims_[i]);
  }
  TensorShape old_shape(old_dims);
  std::vector<uint64_t> address(d, 0);
  std::vector<uint64_t> target(d);
  do {
    SS_ASSIGN_OR_RETURN(const double value, old_store->Get(address));
    target = address;
    const uint64_t t_idx = address[append_dim_];
    if (t_idx >= 1) {
      // SHIFT: w_{j,pos} of the old tree -> same level/pos in the new tree.
      target[append_dim_] = t_idx + (uint64_t{1} << Log2(t_idx));
      SS_RETURN_IF_ERROR(store_->Set(target, value));
    } else {
      // SPLIT: the old root scaling feeds the new top detail and new root.
      target[append_dim_] = 1;
      SS_RETURN_IF_ERROR(store_->Set(target, value * atten));
      target[append_dim_] = 0;
      SS_RETURN_IF_ERROR(store_->Set(target, value * atten));
    }
  } while (old_shape.Next(address));
  SS_RETURN_IF_ERROR(store_->Flush());

  old_store.reset();  // flush the old pool before capturing its counters
  retired_io_ += old_manager->stats();
  ++expansions_;
  if (options_.maintain_scaling_slots) {
    SS_RETURN_IF_ERROR(
        RebuildStandardScalingSlots(store_.get(), log_dims_, options_.norm));
  }
  return Status::OK();
}

Status Appender::Append(const Tensor& slab) {
  const uint32_t d = static_cast<uint32_t>(log_dims_.size());
  if (slab.shape().ndim() != d) {
    return Status::InvalidArgument("slab dimensionality mismatch");
  }
  for (uint32_t i = 0; i < d; ++i) {
    if (i == append_dim_) continue;
    if (slab.shape().dim(i) != (uint64_t{1} << log_dims_[i])) {
      return Status::InvalidArgument(
          "slab must span the full extent of non-growing dimensions");
    }
  }
  const uint64_t h = slab.shape().dim(append_dim_);
  if (filled_ % h != 0) {
    return Status::InvalidArgument(
        "fill level must be a multiple of the slab thickness");
  }
  while (filled_ + h > capacity()) {
    SS_RETURN_IF_ERROR(Expand());
  }
  std::vector<uint64_t> chunk_pos(d, 0);
  chunk_pos[append_dim_] = filled_ / h;
  ApplyOptions apply;
  apply.mode = ApplyMode::kConstruct;
  apply.maintain_scaling_slots = options_.maintain_scaling_slots;
  SS_RETURN_IF_ERROR(ApplyChunkStandard(slab, chunk_pos, log_dims_,
                                        store_.get(), options_.norm, apply));
  SS_RETURN_IF_ERROR(store_->Flush());
  filled_ += h;
  return Status::OK();
}

Status RebuildStandardScalingSlots(TiledStore* store,
                                   std::span<const uint32_t> log_dims,
                                   Normalization norm) {
  const auto* tiling = dynamic_cast<const StandardTiling*>(&store->layout());
  if (tiling == nullptr) {
    return Status::InvalidArgument(
        "scaling-slot rebuild requires the standard tiling");
  }
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  // Per-dimension extended entries: every regular index (weight-1 expansion
  // on itself) plus every redundant scaling (path expansion).
  struct Entry {
    bool scaling = false;
    BlockSlot part;
    std::vector<std::pair<uint64_t, double>> expansion;
  };
  std::vector<std::vector<Entry>> entries(d);
  for (uint32_t i = 0; i < d; ++i) {
    const TreeTiling& dt = tiling->dim_tiling(i);
    const uint32_t n = log_dims[i];
    for (uint64_t idx = 0; idx < (uint64_t{1} << n); ++idx) {
      Entry e;
      e.part = dt.Locate(idx);
      e.expansion = {{idx, 1.0}};
      entries[i].push_back(std::move(e));
    }
    for (uint32_t band = 1; band < dt.num_bands(); ++band) {
      const uint32_t level = n - dt.BandRootRow(band);
      for (uint64_t q = 0; q < dt.TilesInBand(band); ++q) {
        Entry e;
        e.scaling = true;
        SS_ASSIGN_OR_RETURN(e.part, dt.LocateScaling(level, q));
        e.expansion = ScalingExpansion(n, level, q, norm);
        entries[i].push_back(std::move(e));
      }
    }
  }
  // Cross product; combos involving at least one scaling entry are slots.
  std::vector<size_t> pick(d, 0);
  std::vector<BlockSlot> parts(d);
  std::vector<size_t> epick(d);
  std::vector<uint64_t> gaddr(d);
  for (;;) {
    bool any_scaling = false;
    for (uint32_t i = 0; i < d; ++i) {
      any_scaling = any_scaling || entries[i][pick[i]].scaling;
      parts[i] = entries[i][pick[i]].part;
    }
    if (any_scaling) {
      double value = 0.0;
      std::fill(epick.begin(), epick.end(), 0);
      for (;;) {
        double weight = 1.0;
        for (uint32_t i = 0; i < d; ++i) {
          const auto& [idx, w] = entries[i][pick[i]].expansion[epick[i]];
          gaddr[i] = idx;
          weight *= w;
        }
        SS_ASSIGN_OR_RETURN(const double coeff, store->Get(gaddr));
        value += weight * coeff;
        uint32_t i = d;
        bool advanced = false;
        while (i-- > 0) {
          if (++epick[i] < entries[i][pick[i]].expansion.size()) {
            advanced = true;
            break;
          }
          epick[i] = 0;
        }
        if (!advanced) break;
      }
      SS_RETURN_IF_ERROR(store->SetAt(tiling->Combine(parts), value));
    }
    uint32_t i = d;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < entries[i].size()) {
        advanced = true;
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  return store->Flush();
}

}  // namespace shiftsplit
