// Partial reconstruction from wavelet transforms (paper §5.4, Result 6):
// extracting a region of the original data directly from a transformed tile
// store using the inverses of SHIFT (index translation back into the local
// tree) and SPLIT (rebuilding the local scaling coefficients from the
// covering path), then a small in-memory inverse transform.
//
// Costs: O((M + log(N/M))^d) coefficient reads for the standard form and
// O(M^d + (2^d - 1) log(N/M)) for the non-standard form — versus O(N^d) for
// decompressing everything or O(M^d log N) for point-by-point queries.

#ifndef SHIFTSPLIT_CORE_RECONSTRUCT_H_
#define SHIFTSPLIT_CORE_RECONSTRUCT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "shiftsplit/tile/tiled_store.h"
#include "shiftsplit/wavelet/haar.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Reconstructs the dyadic box with per-dimension ranges
/// [pos_i * 2^m_i, (pos_i + 1) * 2^m_i) from a standard-form store of a
/// dataset with per-dimension log2 extents `log_dims`. A non-null `ctx`
/// threads a deadline / cancellation / retry budget down to every
/// coefficient read (all Reconstruct* entry points alike).
Result<Tensor> ReconstructDyadicStandard(TiledStore* store,
                                         std::span<const uint32_t> log_dims,
                                         std::span<const uint32_t> range_log,
                                         std::span<const uint64_t> range_pos,
                                         Normalization norm,
                                         OperationContext* ctx = nullptr);

/// \brief Reconstructs the dyadic cube of edge 2^m at per-dimension dyadic
/// position `range_pos` from a non-standard-form store (cube of edge 2^n).
Result<Tensor> ReconstructDyadicNonstandard(TiledStore* store, uint32_t n,
                                            uint32_t m,
                                            std::span<const uint64_t> range_pos,
                                            Normalization norm,
                                            OperationContext* ctx = nullptr);

/// \brief Reconstructs an arbitrary inclusive box [lo, hi] from a
/// standard-form store by covering it with maximal dyadic boxes and invoking
/// ReconstructDyadicStandard on each.
Result<Tensor> ReconstructRangeStandard(TiledStore* store,
                                        std::span<const uint32_t> log_dims,
                                        std::span<const uint64_t> lo,
                                        std::span<const uint64_t> hi,
                                        Normalization norm,
                                        OperationContext* ctx = nullptr);

/// \brief Decomposes [lo, hi] (inclusive) into maximal dyadic intervals —
/// the 1-d building block of the arbitrary-range reconstruction. Exposed for
/// testing; returns at most 2 log N intervals.
std::vector<DyadicInterval> DyadicCover(uint64_t lo, uint64_t hi);

/// \brief A dyadic-aligned cube: edge 2^level at per-dimension node
/// position (data coordinates node[i] * 2^level).
struct DyadicCube {
  uint32_t level = 0;
  std::vector<uint64_t> node;

  bool operator==(const DyadicCube&) const = default;
};

/// \brief Decomposes the inclusive box [lo, hi] inside the 2^n-cube into
/// maximal dyadic-aligned cubes (quadtree descent) — the paper's §4.1
/// observation that "arbitrary multidimensional dyadic ranges can always be
/// seen as a collection of cubic intervals". O(surface * log) cubes.
std::vector<DyadicCube> CubeCover(uint32_t d, uint32_t n,
                                  std::span<const uint64_t> lo,
                                  std::span<const uint64_t> hi);

/// \brief Reconstructs an arbitrary inclusive box [lo, hi] from a
/// non-standard-form store by covering it with maximal dyadic cubes and
/// invoking ReconstructDyadicNonstandard on each.
Result<Tensor> ReconstructRangeNonstandard(TiledStore* store, uint32_t n,
                                           std::span<const uint64_t> lo,
                                           std::span<const uint64_t> hi,
                                           Normalization norm,
                                           OperationContext* ctx = nullptr);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_RECONSTRUCT_H_
