// K-term wavelet synopsis container: retains the K coefficients of largest
// magnitude (offered values are compared by absolute value — under the
// orthonormal normalization this is the best-K-term approximation in the L2
// sense, by Parseval).

#ifndef SHIFTSPLIT_CORE_SYNOPSIS_H_
#define SHIFTSPLIT_CORE_SYNOPSIS_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief Bounded set of the K largest-magnitude coefficients seen so far.
///
/// Keys are opaque 64-bit coefficient identifiers (flat wavelet indices for
/// 1-d streams; encoded ids for the multidimensional synopses). Each key may
/// be offered once (finalized coefficients never change).
class TopKSynopsis {
 public:
  explicit TopKSynopsis(uint64_t k) : k_(k) {}

  /// \brief Offers a finalized coefficient; keeps it iff it ranks among the
  /// K largest magnitudes. Returns true if retained.
  bool Offer(uint64_t key, double value);

  uint64_t k() const { return k_; }
  uint64_t size() const { return values_.size(); }

  bool Contains(uint64_t key) const { return values_.contains(key); }

  /// \brief Value of a retained coefficient, or 0.0 when not retained (the
  /// synopsis semantics: dropped coefficients are approximated by zero).
  double ValueOrZero(uint64_t key) const;

  /// \brief Smallest retained magnitude (0 when fewer than K retained).
  double MinMagnitude() const;

  /// \brief All retained (key, value) pairs, in decreasing magnitude.
  std::vector<std::pair<uint64_t, double>> Extract() const;

  /// \brief Total number of Offer calls (the synopsis-maintenance cost the
  /// stream experiments report alongside coefficient touches).
  uint64_t offers() const { return offers_; }

 private:
  uint64_t k_;
  uint64_t offers_ = 0;
  // Ordered by (|value|, key) so the min-magnitude element is begin().
  std::set<std::pair<double, uint64_t>> order_;
  std::unordered_map<uint64_t, double> values_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_SYNOPSIS_H_
