// Multidimensional SHIFT-SPLIT (paper §4.1, §4.2).
//
// Standard form: every coefficient of the transformed chunk carries a d-tuple
// of 1-d indices; along each dimension it is either SHIFTed (detail index) or
// SPLIT (scaling index) independently, so a chunk writes (M-1)^d final
// coefficients and accumulates (M + n - m)^d - (M-1)^d contributions.
//
// Non-standard form: the chunk's M^d - 1 details SHIFT as a block, and only
// the chunk average SPLITs, contributing to the (2^d - 1)(n - m) details of
// the quadtree nodes on the path to the root plus the root average.
//
// Both operations also maintain the redundant tile-root scaling slots of the
// paper's block allocation strategy when the store uses the corresponding
// tiling (at zero additional block I/O — the slots live in already-touched
// tiles).

#ifndef SHIFTSPLIT_CORE_MD_SHIFT_SPLIT_H_
#define SHIFTSPLIT_CORE_MD_SHIFT_SPLIT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/tile/tiled_store.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Transforms the chunk `chunk_data` (standard form) and applies it at
/// the per-dimension dyadic positions `chunk_pos` to a store of the dataset
/// whose per-dimension log2 extents are `global_log_dims`.
///
/// Chunk extents may differ per dimension; each must divide its global
/// extent. In kConstruct mode, applying every chunk of a dataset exactly once
/// (any order) leaves the store holding the standard transform of the whole
/// dataset. In kUpdate mode the chunk holds deltas and everything
/// accumulates.
Status ApplyChunkStandard(const Tensor& chunk_data,
                          std::span<const uint64_t> chunk_pos,
                          std::span<const uint32_t> global_log_dims,
                          TiledStore* store, Normalization norm,
                          const ApplyOptions& options = {});

/// \brief Non-standard-form counterpart: `chunk_data` must be a hypercube of
/// edge 2^m, positioned at per-dimension dyadic position `chunk_pos` inside
/// the global cube of edge 2^global_log_extent.
Status ApplyChunkNonstandard(const Tensor& chunk_data,
                             std::span<const uint64_t> chunk_pos,
                             uint32_t global_log_extent, TiledStore* store,
                             Normalization norm,
                             const ApplyOptions& options = {});

/// \brief All writes one chunk apply makes to one block, in generation
/// order. Each (block, slot) appears at most once per chunk, so batched
/// application is bit-identical to the per-coefficient path.
struct ChunkBlockOps {
  uint64_t block = 0;
  std::vector<SlotUpdate> ops;
};

/// \brief The complete write set of one chunk apply, grouped by destination
/// block in ascending block-id (layout) order. Building a plan is pure CPU —
/// it touches the layout but never the store — so plans for different chunks
/// can be built concurrently and committed later (the parallel chunked
/// transform does exactly that).
struct ChunkApplyPlan {
  std::vector<ChunkBlockOps> blocks;
  uint64_t total_ops = 0;

  /// The distinct destination blocks, ascending (the prefetch set).
  std::vector<uint64_t> BlockIds() const;
};

/// \brief Computes the SHIFT/SPLIT write set of a standard-form chunk apply
/// against `layout` without touching any store.
Result<ChunkApplyPlan> PlanChunkStandard(const Tensor& chunk_data,
                                         std::span<const uint64_t> chunk_pos,
                                         std::span<const uint32_t>
                                             global_log_dims,
                                         const TileLayout& layout,
                                         Normalization norm,
                                         const ApplyOptions& options = {});

/// \brief Non-standard-form counterpart of PlanChunkStandard.
Result<ChunkApplyPlan> PlanChunkNonstandard(const Tensor& chunk_data,
                                            std::span<const uint64_t>
                                                chunk_pos,
                                            uint32_t global_log_extent,
                                            const TileLayout& layout,
                                            Normalization norm,
                                            const ApplyOptions& options = {});

/// \brief Commits a plan: optionally prefetches the plan's block set in one
/// vectored read, then pins each destination block exactly once and applies
/// its ops through the pinned span.
Status ApplyChunkPlan(const ChunkApplyPlan& plan, TiledStore* store,
                      bool prefetch = false);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_MD_SHIFT_SPLIT_H_
