// Multidimensional SHIFT-SPLIT (paper §4.1, §4.2).
//
// Standard form: every coefficient of the transformed chunk carries a d-tuple
// of 1-d indices; along each dimension it is either SHIFTed (detail index) or
// SPLIT (scaling index) independently, so a chunk writes (M-1)^d final
// coefficients and accumulates (M + n - m)^d - (M-1)^d contributions.
//
// Non-standard form: the chunk's M^d - 1 details SHIFT as a block, and only
// the chunk average SPLITs, contributing to the (2^d - 1)(n - m) details of
// the quadtree nodes on the path to the root plus the root average.
//
// Both operations also maintain the redundant tile-root scaling slots of the
// paper's block allocation strategy when the store uses the corresponding
// tiling (at zero additional block I/O — the slots live in already-touched
// tiles).

#ifndef SHIFTSPLIT_CORE_MD_SHIFT_SPLIT_H_
#define SHIFTSPLIT_CORE_MD_SHIFT_SPLIT_H_

#include <cstdint>
#include <span>

#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/tile/tiled_store.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Transforms the chunk `chunk_data` (standard form) and applies it at
/// the per-dimension dyadic positions `chunk_pos` to a store of the dataset
/// whose per-dimension log2 extents are `global_log_dims`.
///
/// Chunk extents may differ per dimension; each must divide its global
/// extent. In kConstruct mode, applying every chunk of a dataset exactly once
/// (any order) leaves the store holding the standard transform of the whole
/// dataset. In kUpdate mode the chunk holds deltas and everything
/// accumulates.
Status ApplyChunkStandard(const Tensor& chunk_data,
                          std::span<const uint64_t> chunk_pos,
                          std::span<const uint32_t> global_log_dims,
                          TiledStore* store, Normalization norm,
                          const ApplyOptions& options = {});

/// \brief Non-standard-form counterpart: `chunk_data` must be a hypercube of
/// edge 2^m, positioned at per-dimension dyadic position `chunk_pos` inside
/// the global cube of edge 2^global_log_extent.
Status ApplyChunkNonstandard(const Tensor& chunk_data,
                             std::span<const uint64_t> chunk_pos,
                             uint32_t global_log_extent, TiledStore* store,
                             Normalization norm,
                             const ApplyOptions& options = {});

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_MD_SHIFT_SPLIT_H_
