#include "shiftsplit/core/md_stream_synopsis.h"

#include <cassert>
#include <cmath>

#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/util/morton.h"
#include "shiftsplit/wavelet/nonstandard_transform.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

// ---------------------------------------------------------------------------
// StandardStreamSynopsis (Result 4)
// ---------------------------------------------------------------------------

StandardStreamSynopsis::StandardStreamSynopsis(
    std::vector<uint32_t> const_log_dims, uint32_t m, uint64_t k,
    Normalization norm)
    : const_log_dims_(std::move(const_log_dims)),
      m_(m),
      norm_(norm),
      synopsis_(k),
      log_t_(m) {
  const_cells_ = 1;
  for (uint32_t n : const_log_dims_) const_cells_ <<= n;
  root_.assign(const_cells_, 0.0);
}

uint64_t StandardStreamSynopsis::EncodeKey(uint32_t time_level,
                                           uint64_t time_pos,
                                           uint64_t const_flat) const {
  assert(time_level < 64);
  assert(time_pos < (uint64_t{1} << 34));
  assert(const_flat < (uint64_t{1} << 24));
  return (static_cast<uint64_t>(time_level) << 58) | (time_pos << 24) |
         const_flat;
}

uint64_t StandardStreamSynopsis::open_coefficients() const {
  return (crest_.size() + 1) * const_cells_;  // crest levels + the root
}

void StandardStreamSynopsis::SyncCrestLevel(uint32_t j, uint64_t chunk_index) {
  const uint64_t pos = chunk_index >> (j - m_);
  auto it = crest_.find(j);
  if (it == crest_.end()) {
    crest_[j] = CrestLevel{pos, std::vector<double>(const_cells_, 0.0)};
    return;
  }
  if (it->second.pos == pos) return;
  // The path moved on: the old coefficient can never change again.
  for (uint64_t c = 0; c < const_cells_; ++c) {
    synopsis_.Offer(EncodeKey(j, it->second.pos, c), it->second.values[c]);
  }
  it->second.pos = pos;
  std::fill(it->second.values.begin(), it->second.values.end(), 0.0);
}

void StandardStreamSynopsis::ExpandTime() {
  const double atten = ScalingAttenuation(norm_);
  const uint32_t new_level = log_t_ + 1;
  CrestLevel top;
  top.pos = 0;
  top.values.resize(const_cells_);
  for (uint64_t c = 0; c < const_cells_; ++c) {
    // The old time-scaling root feeds the new top detail (old data occupy
    // the left half) and attenuates into the new root.
    top.values[c] = root_[c] * atten;
    root_[c] *= atten;
    coeff_touches_ += 2;
  }
  crest_[new_level] = std::move(top);
  log_t_ = new_level;
}

Status StandardStreamSynopsis::Push(const Tensor& slab) {
  if (finished_) return Status::InvalidArgument("stream already finished");
  const uint32_t d = static_cast<uint32_t>(const_log_dims_.size()) + 1;
  if (slab.shape().ndim() != d) {
    return Status::InvalidArgument("slab dimensionality mismatch");
  }
  for (uint32_t i = 0; i + 1 < d; ++i) {
    if (slab.shape().dim(i) != (uint64_t{1} << const_log_dims_[i])) {
      return Status::InvalidArgument("slab constant extents mismatch");
    }
  }
  if (slab.shape().dim(d - 1) != (uint64_t{1} << m_)) {
    return Status::InvalidArgument("slab thickness mismatch");
  }
  const uint64_t chunk_index = slabs_;
  while (chunk_index >= (uint64_t{1} << (log_t_ - m_))) ExpandTime();

  Tensor transformed = slab;
  SS_RETURN_IF_ERROR(ForwardStandard(&transformed, norm_));

  // Iterate over constant-dimension tuples; slab layout is row-major with
  // time last, so tuple c's fiber starts at c * 2^m.
  const uint64_t t_extent = uint64_t{1} << m_;
  for (uint64_t c = 0; c < const_cells_; ++c) {
    const double* fiber = transformed.data().data() + c * t_extent;
    // Final coefficients: every buffered time detail.
    for (uint64_t local = 1; local < t_extent; ++local) {
      const uint64_t global = ShiftIndex(log_t_, m_, chunk_index, local);
      const WaveletCoord wc = CoordOfIndex(log_t_, global);
      synopsis_.Offer(EncodeKey(wc.level, wc.pos, c), fiber[local]);
      ++coeff_touches_;
    }
  }
  // SPLIT the per-tuple slab averages into the time crest.
  const auto contributions =
      Split1D(log_t_, m_, chunk_index, /*chunk_scaling=*/1.0, norm_);
  for (const SplitContribution& sc : contributions) {
    if (sc.index == 0) {
      for (uint64_t c = 0; c < const_cells_; ++c) {
        root_[c] += sc.delta * transformed.data()[c * t_extent];
        ++coeff_touches_;
      }
      continue;
    }
    const WaveletCoord wc = CoordOfIndex(log_t_, sc.index);
    SyncCrestLevel(wc.level, chunk_index);
    auto& level = crest_[wc.level];
    for (uint64_t c = 0; c < const_cells_; ++c) {
      level.values[c] += sc.delta * transformed.data()[c * t_extent];
      ++coeff_touches_;
    }
  }
  ++slabs_;
  return Status::OK();
}

Status StandardStreamSynopsis::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  for (const auto& [j, level] : crest_) {
    for (uint64_t c = 0; c < const_cells_; ++c) {
      synopsis_.Offer(EncodeKey(j, level.pos, c), level.values[c]);
    }
  }
  crest_.clear();
  for (uint64_t c = 0; c < const_cells_; ++c) {
    synopsis_.Offer(EncodeKey(0, 0, c), root_[c]);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// NonstandardStreamSynopsis (Result 5)
// ---------------------------------------------------------------------------

NonstandardStreamSynopsis::NonstandardStreamSynopsis(uint32_t d, uint32_t n,
                                                     uint32_t m, uint64_t k,
                                                     Normalization norm)
    : d_(d), n_(n), m_(m), norm_(norm), synopsis_(k) {
  assert(m_ <= n_);
}

uint64_t NonstandardStreamSynopsis::EncodeCubeKey(uint64_t cube_t,
                                                  uint64_t flat) const {
  assert(cube_t < (uint64_t{1} << 23));
  assert(flat < (uint64_t{1} << 40));
  return (cube_t << 40) | flat;
}

uint64_t NonstandardStreamSynopsis::EncodeTimeKey(uint32_t time_level,
                                                  uint64_t time_pos) const {
  assert(time_pos < (uint64_t{1} << 34));
  return (uint64_t{1} << 63) | (static_cast<uint64_t>(time_level) << 40) |
         time_pos;
}

uint64_t NonstandardStreamSynopsis::open_coefficients() const {
  const uint64_t per_node = (uint64_t{1} << d_) - 1;
  return cube_crest_.size() * per_node + 1 /*cube root*/ +
         time_crest_.size() + 1 /*time root*/;
}

void NonstandardStreamSynopsis::SyncCubeCrest(uint64_t z) {
  const uint64_t per_node = (uint64_t{1} << d_) - 1;
  TensorShape cube_shape = TensorShape::Cube(d_, uint64_t{1} << n_);
  for (uint32_t j = m_ + 1; j <= n_; ++j) {
    const uint64_t node_id = z >> (static_cast<uint64_t>(d_) * (j - m_));
    auto it = cube_crest_.find(j);
    if (it == cube_crest_.end()) {
      cube_crest_[j] =
          CubeCrestLevel{node_id, std::vector<double>(per_node, 0.0)};
      continue;
    }
    if (it->second.node_id == node_id) continue;
    // Finalize the departed node's subband coefficients.
    NsCoeffId id;
    id.level = j;
    id.node = MortonDecode(it->second.node_id, d_, n_ - j);
    for (uint64_t sigma = 1; sigma <= per_node; ++sigma) {
      id.subband = sigma;
      const uint64_t flat = cube_shape.FlatIndex(NsAddress(n_, id));
      synopsis_.Offer(EncodeCubeKey(cube_t_, flat),
                      it->second.subbands[sigma - 1]);
    }
    it->second.node_id = node_id;
    std::fill(it->second.subbands.begin(), it->second.subbands.end(), 0.0);
  }
}

Status NonstandardStreamSynopsis::Push(const Tensor& subcube) {
  if (finished_) return Status::InvalidArgument("stream already finished");
  if (!subcube.shape().IsCube() ||
      subcube.shape().ndim() != d_ ||
      subcube.shape().dim(0) != (uint64_t{1} << m_)) {
    return Status::InvalidArgument("sub-cube shape mismatch");
  }
  const uint64_t z = next_z_;
  SyncCubeCrest(z);

  Tensor transformed = subcube;
  SS_RETURN_IF_ERROR(ForwardNonstandard(&transformed, norm_));

  // Final coefficients: all sub-cube details, shifted to cube coordinates.
  TensorShape cube_shape = TensorShape::Cube(d_, uint64_t{1} << n_);
  const auto subcube_pos = MortonDecode(z, d_, n_ - m_);
  std::vector<uint64_t> local(d_, 0);
  NsCoeffId id;
  do {
    bool is_root = true;
    for (uint64_t c : local) is_root = is_root && (c == 0);
    if (is_root) continue;
    id = NsCoeffOfAddress(m_, local);
    for (uint32_t i = 0; i < d_; ++i) {
      id.node[i] += subcube_pos[i] << (m_ - id.level);
    }
    const uint64_t flat = cube_shape.FlatIndex(NsAddress(n_, id));
    synopsis_.Offer(EncodeCubeKey(cube_t_, flat), transformed.At(local));
    ++coeff_touches_;
  } while (subcube.shape().Next(local));

  // SPLIT the sub-cube average up the in-cube quadtree crest.
  const double avg = transformed[0];
  const double atten_d =
      std::pow(ScalingAttenuation(norm_), static_cast<double>(d_));
  const uint64_t corners = uint64_t{1} << d_;
  double magnitude = avg;
  for (uint32_t j = m_ + 1; j <= n_; ++j) {
    magnitude *= atten_d;
    const uint64_t corner =
        (z >> (static_cast<uint64_t>(d_) * (j - m_ - 1))) & (corners - 1);
    auto& level = cube_crest_[j];
    for (uint64_t sigma = 1; sigma < corners; ++sigma) {
      level.subbands[sigma - 1] += NsSign(sigma, corner) * magnitude;
      ++coeff_touches_;
    }
  }
  cube_root_ += magnitude;  // atten_d^(n-m) * avg
  ++coeff_touches_;

  ++next_z_;
  if (next_z_ == (uint64_t{1} << (static_cast<uint64_t>(d_) * (n_ - m_)))) {
    SS_RETURN_IF_ERROR(CompleteCube());
  }
  return Status::OK();
}

void NonstandardStreamSynopsis::SyncTimeCrest(uint64_t t) {
  for (uint32_t j = 1; j <= log_t_; ++j) {
    const uint64_t pos = t >> j;
    auto it = time_crest_.find(j);
    if (it == time_crest_.end()) {
      time_crest_[j] = TimeCrestLevel{pos, 0.0};
      continue;
    }
    if (it->second.pos == pos) continue;
    synopsis_.Offer(EncodeTimeKey(j, it->second.pos), it->second.value);
    it->second.pos = pos;
    it->second.value = 0.0;
  }
}

void NonstandardStreamSynopsis::ExpandTime() {
  const double atten = ScalingAttenuation(norm_);
  ++log_t_;
  time_crest_[log_t_] = TimeCrestLevel{0, time_root_ * atten};
  time_root_ *= atten;
  coeff_touches_ += 2;
}

Status NonstandardStreamSynopsis::CompleteCube() {
  // Finalize the whole in-cube crest.
  TensorShape cube_shape = TensorShape::Cube(d_, uint64_t{1} << n_);
  const uint64_t per_node = (uint64_t{1} << d_) - 1;
  for (const auto& [j, level] : cube_crest_) {
    NsCoeffId id;
    id.level = j;
    id.node = MortonDecode(level.node_id, d_, n_ - j);
    for (uint64_t sigma = 1; sigma <= per_node; ++sigma) {
      id.subband = sigma;
      const uint64_t flat = cube_shape.FlatIndex(NsAddress(n_, id));
      synopsis_.Offer(EncodeCubeKey(cube_t_, flat),
                      level.subbands[sigma - 1]);
    }
  }
  cube_crest_.clear();

  // The cube average becomes the next item of the 1-d time stream.
  const uint64_t t = cube_t_;
  while (t >= (uint64_t{1} << log_t_)) ExpandTime();
  SyncTimeCrest(t);
  const auto contributions = Split1D(log_t_, 0, t, cube_root_, norm_);
  for (const SplitContribution& sc : contributions) {
    if (sc.index == 0) {
      time_root_ += sc.delta;
    } else {
      const WaveletCoord wc = CoordOfIndex(log_t_, sc.index);
      time_crest_[wc.level].value += sc.delta;
    }
    ++coeff_touches_;
  }
  cube_root_ = 0.0;
  next_z_ = 0;
  ++cube_t_;
  return Status::OK();
}

Status NonstandardStreamSynopsis::Finish() {
  if (finished_) return Status::OK();
  if (next_z_ != 0) {
    return Status::InvalidArgument("current cube is incomplete");
  }
  finished_ = true;
  for (const auto& [j, level] : time_crest_) {
    synopsis_.Offer(EncodeTimeKey(j, level.pos), level.value);
  }
  time_crest_.clear();
  synopsis_.Offer(EncodeTimeKey(0, 0), time_root_);
  return Status::OK();
}

}  // namespace shiftsplit
