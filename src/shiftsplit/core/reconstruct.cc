#include "shiftsplit/core/reconstruct.h"

#include <cmath>

#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/nonstandard_transform.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

namespace {

// Per-dimension inverse-SHIFT / inverse-SPLIT source list: for every local
// 1-d index of the range transform, the global coefficients (with weights)
// that determine it.
struct DimSource {
  std::vector<std::pair<uint64_t, double>> terms;  // (global index, weight)
};

std::vector<DimSource> BuildDimSources(uint32_t n, uint32_t m, uint64_t k,
                                       Normalization norm) {
  std::vector<DimSource> sources(uint64_t{1} << m);
  // Local details: pure re-indexing (inverse SHIFT).
  for (uint64_t local = 1; local < (uint64_t{1} << m); ++local) {
    sources[local].terms = {{ShiftIndex(n, m, k, local), 1.0}};
  }
  // Local scaling (index 0): the covering path (inverse SPLIT) — the
  // reconstruction identity for u_{m,k} from the global transform.
  const double g = ReconstructionAttenuation(norm);
  double magnitude = 1.0;
  for (uint32_t j = m + 1; j <= n; ++j) {
    magnitude *= g;
    const double sign = InLeftHalf(m, k, j) ? 1.0 : -1.0;
    sources[0].terms.emplace_back(DetailIndex(n, j, k >> (j - m)),
                                  sign * magnitude);
  }
  sources[0].terms.emplace_back(0, magnitude);  // g^(n-m) * overall average
  return sources;
}

}  // namespace

Result<Tensor> ReconstructDyadicStandard(TiledStore* store,
                                         std::span<const uint32_t> log_dims,
                                         std::span<const uint32_t> range_log,
                                         std::span<const uint64_t> range_pos,
                                         Normalization norm,
                                         OperationContext* ctx) {
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  if (range_log.size() != d || range_pos.size() != d) {
    return Status::InvalidArgument("range dimensionality mismatch");
  }
  std::vector<uint64_t> local_dims(d);
  std::vector<std::vector<DimSource>> sources(d);
  for (uint32_t i = 0; i < d; ++i) {
    if (range_log[i] > log_dims[i]) {
      return Status::InvalidArgument("range larger than the dataset");
    }
    if (range_pos[i] >= (uint64_t{1} << (log_dims[i] - range_log[i]))) {
      return Status::OutOfRange("range position beyond the domain");
    }
    local_dims[i] = uint64_t{1} << range_log[i];
    sources[i] = BuildDimSources(log_dims[i], range_log[i], range_pos[i],
                                 norm);
  }
  Tensor local{TensorShape(local_dims)};
  std::vector<uint64_t> lidx(d, 0);
  std::vector<uint64_t> gaddr(d);
  do {
    // Value of the local transform entry: cross product over per-dim terms.
    std::vector<size_t> pick(d, 0);
    double value = 0.0;
    for (;;) {
      double weight = 1.0;
      for (uint32_t i = 0; i < d; ++i) {
        const auto& [g_idx, w] = sources[i][lidx[i]].terms[pick[i]];
        gaddr[i] = g_idx;
        weight *= w;
      }
      SS_ASSIGN_OR_RETURN(const double coeff, store->Get(gaddr, ctx));
      value += weight * coeff;
      uint32_t i = d;
      bool advanced = false;
      while (i-- > 0) {
        if (++pick[i] < sources[i][lidx[i]].terms.size()) {
          advanced = true;
          break;
        }
        pick[i] = 0;
      }
      if (!advanced) break;
    }
    local.At(lidx) = value;
  } while (local.shape().Next(lidx));
  SS_RETURN_IF_ERROR(InverseStandard(&local, norm));
  return local;
}

Result<Tensor> ReconstructDyadicNonstandard(TiledStore* store, uint32_t n,
                                            uint32_t m,
                                            std::span<const uint64_t> range_pos,
                                            Normalization norm,
                                            OperationContext* ctx) {
  const uint32_t d = static_cast<uint32_t>(range_pos.size());
  if (m > n) {
    return Status::InvalidArgument("range larger than the dataset");
  }
  for (uint64_t k : range_pos) {
    if (k >= (uint64_t{1} << (n - m))) {
      return Status::OutOfRange("range position beyond the domain");
    }
  }
  Tensor local(TensorShape::Cube(d, uint64_t{1} << m));
  // Inverse SHIFT: copy the in-range details.
  std::vector<uint64_t> lidx(d, 0);
  NsCoeffId id;
  do {
    bool is_root = true;
    for (uint64_t c : lidx) is_root = is_root && (c == 0);
    if (is_root) continue;
    id = NsCoeffOfAddress(m, lidx);
    for (uint32_t i = 0; i < d; ++i) {
      id.node[i] += range_pos[i] << (m - id.level);
    }
    const auto address = NsAddress(n, id);
    SS_ASSIGN_OR_RETURN(const double coeff, store->Get(address, ctx));
    local.At(lidx) = coeff;
  } while (local.shape().Next(lidx));
  // Inverse SPLIT: rebuild the range's root average from the quadtree path.
  const uint64_t corners = uint64_t{1} << d;
  const double g_d = std::pow(ReconstructionAttenuation(norm),
                              static_cast<double>(d));
  std::vector<uint64_t> zero(d, 0);
  SS_ASSIGN_OR_RETURN(const double root, store->Get(zero, ctx));
  double u = root * std::pow(g_d, static_cast<double>(n - m));
  id.is_scaling = false;
  for (uint32_t j = m + 1; j <= n; ++j) {
    uint64_t corner = 0;
    id.level = j;
    id.node.assign(d, 0);
    for (uint32_t i = 0; i < d; ++i) {
      id.node[i] = range_pos[i] >> (j - m);
      corner |= ((range_pos[i] >> (j - m - 1)) & 1u) << i;
    }
    const double magnitude = std::pow(g_d, static_cast<double>(j - m));
    for (uint64_t sigma = 1; sigma < corners; ++sigma) {
      id.subband = sigma;
      const auto address = NsAddress(n, id);
      SS_ASSIGN_OR_RETURN(const double coeff, store->Get(address, ctx));
      u += NsSign(sigma, corner) * magnitude * coeff;
    }
  }
  local[0] = u;
  SS_RETURN_IF_ERROR(InverseNonstandard(&local, norm));
  return local;
}

std::vector<DyadicInterval> DyadicCover(uint64_t lo, uint64_t hi) {
  std::vector<DyadicInterval> cover;
  uint64_t cur = lo;
  while (cur <= hi) {
    // Largest power of two aligned at cur and fitting within [cur, hi].
    uint32_t level = cur == 0 ? 63u : static_cast<uint32_t>(
                                          std::countr_zero(cur));
    while (level > 0 &&
           (cur + (uint64_t{1} << level) - 1) > hi) {
      --level;
    }
    if ((cur + (uint64_t{1} << level) - 1) > hi) level = 0;
    cover.push_back(DyadicInterval{level, cur >> level});
    cur += uint64_t{1} << level;
  }
  return cover;
}

namespace {

void CoverNode(uint32_t d, uint32_t level, std::vector<uint64_t>& node,
               std::span<const uint64_t> lo, std::span<const uint64_t> hi,
               std::vector<DyadicCube>* out) {
  bool intersects = true;
  bool inside = true;
  for (uint32_t i = 0; i < d; ++i) {
    const DyadicInterval support{level, node[i]};
    if (hi[i] < support.begin() || lo[i] > support.last()) {
      intersects = false;
      break;
    }
    if (lo[i] > support.begin() || hi[i] < support.last()) inside = false;
  }
  if (!intersects) return;
  if (inside) {
    out->push_back(DyadicCube{level, node});
    return;
  }
  // level > 0 here: a single cell either misses the box or lies inside it.
  std::vector<uint64_t> child(d);
  for (uint64_t eps = 0; eps < (uint64_t{1} << d); ++eps) {
    for (uint32_t i = 0; i < d; ++i) {
      child[i] = 2 * node[i] + ((eps >> i) & 1u);
    }
    CoverNode(d, level - 1, child, lo, hi, out);
  }
}

}  // namespace

std::vector<DyadicCube> CubeCover(uint32_t d, uint32_t n,
                                  std::span<const uint64_t> lo,
                                  std::span<const uint64_t> hi) {
  std::vector<DyadicCube> out;
  std::vector<uint64_t> root(d, 0);
  CoverNode(d, n, root, lo, hi, &out);
  return out;
}

Result<Tensor> ReconstructRangeNonstandard(TiledStore* store, uint32_t n,
                                           std::span<const uint64_t> lo,
                                           std::span<const uint64_t> hi,
                                           Normalization norm,
                                           OperationContext* ctx) {
  const uint32_t d = static_cast<uint32_t>(lo.size());
  if (hi.size() != d) {
    return Status::InvalidArgument("range dimensionality mismatch");
  }
  std::vector<uint64_t> out_dims(d);
  for (uint32_t i = 0; i < d; ++i) {
    if (lo[i] > hi[i] || hi[i] >= (uint64_t{1} << n)) {
      return Status::OutOfRange("bad range bounds");
    }
    out_dims[i] = NextPowerOfTwo(hi[i] - lo[i] + 1);
  }
  Tensor out{TensorShape(out_dims)};
  for (const DyadicCube& cube : CubeCover(d, n, lo, hi)) {
    SS_ASSIGN_OR_RETURN(Tensor piece,
                        ReconstructDyadicNonstandard(store, n, cube.level,
                                                     cube.node, norm, ctx));
    std::vector<uint64_t> local(d, 0);
    std::vector<uint64_t> oidx(d);
    do {
      for (uint32_t i = 0; i < d; ++i) {
        oidx[i] = (cube.node[i] << cube.level) - lo[i] + local[i];
      }
      out.At(oidx) = piece.At(local);
    } while (piece.shape().Next(local));
  }
  return out;
}

Result<Tensor> ReconstructRangeStandard(TiledStore* store,
                                        std::span<const uint32_t> log_dims,
                                        std::span<const uint64_t> lo,
                                        std::span<const uint64_t> hi,
                                        Normalization norm,
                                        OperationContext* ctx) {
  const uint32_t d = static_cast<uint32_t>(log_dims.size());
  if (lo.size() != d || hi.size() != d) {
    return Status::InvalidArgument("range dimensionality mismatch");
  }
  std::vector<uint64_t> out_dims(d);
  std::vector<std::vector<DyadicInterval>> covers(d);
  for (uint32_t i = 0; i < d; ++i) {
    if (lo[i] > hi[i] || hi[i] >= (uint64_t{1} << log_dims[i])) {
      return Status::OutOfRange("bad range bounds");
    }
    // The output box is materialized at the next power of two per dim.
    out_dims[i] = NextPowerOfTwo(hi[i] - lo[i] + 1);
    covers[i] = DyadicCover(lo[i], hi[i]);
  }
  Tensor out{TensorShape(out_dims)};
  // Cross product of per-dimension dyadic covers.
  std::vector<size_t> pick(d, 0);
  std::vector<uint32_t> range_log(d);
  std::vector<uint64_t> range_pos(d);
  for (;;) {
    for (uint32_t i = 0; i < d; ++i) {
      range_log[i] = covers[i][pick[i]].level;
      range_pos[i] = covers[i][pick[i]].index;
    }
    SS_ASSIGN_OR_RETURN(
        Tensor piece, ReconstructDyadicStandard(store, log_dims, range_log,
                                                range_pos, norm, ctx));
    // Copy the piece into the output at its offset.
    std::vector<uint64_t> lidx(d, 0);
    std::vector<uint64_t> oidx(d);
    do {
      for (uint32_t i = 0; i < d; ++i) {
        oidx[i] = (range_pos[i] << range_log[i]) - lo[i] + lidx[i];
      }
      out.At(oidx) = piece.At(lidx);
    } while (piece.shape().Next(lidx));
    uint32_t i = d;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < covers[i].size()) {
        advanced = true;
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  return out;
}

}  // namespace shiftsplit
