#include "shiftsplit/core/shift_split.h"

#include <cmath>

#include "shiftsplit/tile/tree_tiling.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

std::vector<SplitContribution> Split1D(uint32_t n, uint32_t m, uint64_t chunk_k,
                                       double chunk_scaling,
                                       Normalization norm) {
  std::vector<SplitContribution> out;
  out.reserve(n - m + 1);
  const double atten = ScalingAttenuation(norm);
  double magnitude = chunk_scaling;
  for (uint32_t j = m + 1; j <= n; ++j) {
    magnitude *= atten;
    const double sign = InLeftHalf(m, chunk_k, j) ? 1.0 : -1.0;
    out.push_back({DetailIndex(n, j, chunk_k >> (j - m)), sign * magnitude});
  }
  out.push_back({0, magnitude});  // overall average; magnitude = atten^(n-m)
  return out;
}

std::vector<std::pair<uint64_t, double>> ScalingExpansion(uint32_t m,
                                                          uint32_t level,
                                                          uint64_t pos,
                                                          Normalization norm) {
  std::vector<std::pair<uint64_t, double>> out;
  out.reserve(m - level + 1);
  const double atten = ReconstructionAttenuation(norm);
  double magnitude = 1.0;
  for (uint32_t j = level + 1; j <= m; ++j) {
    magnitude *= atten;
    const double sign = InLeftHalf(level, pos, j) ? 1.0 : -1.0;
    out.emplace_back(DetailIndex(m, j, pos >> (j - level)), sign * magnitude);
  }
  out.emplace_back(0, magnitude);  // the local scaling coefficient
  return out;
}

Status ApplyChunk1D(std::span<const double> chunk_transform, uint32_t n,
                    uint64_t chunk_k, std::span<double> global_transform,
                    Normalization norm, ApplyMode mode) {
  if (!IsPowerOfTwo(chunk_transform.size()) ||
      !IsPowerOfTwo(global_transform.size())) {
    return Status::InvalidArgument("sizes must be powers of two");
  }
  const uint32_t m = Log2(chunk_transform.size());
  if (m > n || global_transform.size() != (uint64_t{1} << n)) {
    return Status::InvalidArgument("chunk larger than the global transform");
  }
  if (chunk_k >= (uint64_t{1} << (n - m))) {
    return Status::OutOfRange("chunk position beyond the global domain");
  }
  // SHIFT the details.
  for (uint64_t local = 1; local < chunk_transform.size(); ++local) {
    const uint64_t global = ShiftIndex(n, m, chunk_k, local);
    if (mode == ApplyMode::kConstruct) {
      global_transform[global] = chunk_transform[local];
    } else {
      global_transform[global] += chunk_transform[local];
    }
  }
  // SPLIT the average.
  for (const SplitContribution& c :
       Split1D(n, m, chunk_k, chunk_transform[0], norm)) {
    global_transform[c.index] += c.delta;
  }
  return Status::OK();
}

Status HaarPyramid(std::span<const double> data, Normalization norm,
                   std::vector<std::vector<double>>* pyramid,
                   std::vector<double>* transform) {
  if (!IsPowerOfTwo(data.size())) {
    return Status::InvalidArgument("pyramid input size must be a power of 2");
  }
  const uint32_t m = Log2(data.size());
  pyramid->assign(m + 1, {});
  (*pyramid)[0].assign(data.begin(), data.end());
  transform->assign(data.size(), 0.0);
  for (uint32_t j = 1; j <= m; ++j) {
    const std::vector<double>& prev = (*pyramid)[j - 1];
    std::vector<double>& avg = (*pyramid)[j];
    const uint64_t half = prev.size() / 2;
    avg.resize(half);
    for (uint64_t k = 0; k < half; ++k) {
      avg[k] = HaarAverage(prev[2 * k], prev[2 * k + 1], norm);
      (*transform)[DetailIndex(m, j, k)] =
          HaarDetail(prev[2 * k], prev[2 * k + 1], norm);
    }
  }
  (*transform)[0] = (*pyramid)[m][0];
  return Status::OK();
}

Status TransformAndApplyChunk1D(std::span<const double> chunk_data, uint32_t n,
                                uint64_t chunk_k, TiledStore* store,
                                Normalization norm,
                                const ApplyOptions& options) {
  if (!IsPowerOfTwo(chunk_data.size())) {
    return Status::InvalidArgument("chunk size must be a power of two");
  }
  const uint32_t m = Log2(chunk_data.size());
  if (m > n) {
    return Status::InvalidArgument("chunk larger than the dataset");
  }
  if (chunk_k >= (uint64_t{1} << (n - m))) {
    return Status::OutOfRange("chunk position beyond the global domain");
  }
  std::vector<std::vector<double>> pyramid;
  std::vector<double> transform;
  SS_RETURN_IF_ERROR(HaarPyramid(chunk_data, norm, &pyramid, &transform));

  const bool construct = options.mode == ApplyMode::kConstruct;
  uint64_t address[1];
  // SHIFT the details into their final positions.
  for (uint64_t local = 1; local < transform.size(); ++local) {
    if (options.skip_zero_writes && transform[local] == 0.0) continue;
    address[0] = ShiftIndex(n, m, chunk_k, local);
    if (construct) {
      SS_RETURN_IF_ERROR(store->Set(address, transform[local]));
    } else {
      SS_RETURN_IF_ERROR(store->Add(address, transform[local]));
    }
  }
  // SPLIT the average into the covering coefficients.
  for (const SplitContribution& c :
       Split1D(n, m, chunk_k, transform[0], norm)) {
    if (options.skip_zero_writes && c.delta == 0.0) continue;
    address[0] = c.index;
    SS_RETURN_IF_ERROR(store->Add(address, c.delta));
  }
  // Maintain the redundant subtree-root scaling slots (paper §3) when the
  // store uses the 1-d tree tiling. These live in the same tiles the SHIFT
  // and SPLIT already touch, so they add no block I/O.
  const auto* layout = dynamic_cast<const TreeTilingLayout*>(&store->layout());
  if (options.maintain_scaling_slots && layout != nullptr) {
    const TreeTiling& tiling = layout->tiling();
    for (const auto& [level, pos] : tiling.ScalingSlotsWithin(m, chunk_k)) {
      if (level == n) continue;  // the overall average was split above
      SS_ASSIGN_OR_RETURN(const BlockSlot at,
                          tiling.LocateScaling(level, pos));
      const double value =
          pyramid[level][pos - (chunk_k << (m - level))];
      if (construct) {
        SS_RETURN_IF_ERROR(store->SetAt(at, value));
      } else {
        SS_RETURN_IF_ERROR(store->AddAt(at, value));
      }
    }
    const double atten = ScalingAttenuation(norm);
    for (const auto& [level, pos] : tiling.ScalingSlotsAbove(m, chunk_k)) {
      if (level == n) continue;  // the overall average was split above
      SS_ASSIGN_OR_RETURN(const BlockSlot at,
                          tiling.LocateScaling(level, pos));
      const double delta =
          transform[0] * std::pow(atten, static_cast<double>(level - m));
      SS_RETURN_IF_ERROR(store->AddAt(at, delta));
    }
  }
  return Status::OK();
}

}  // namespace shiftsplit
