// The SHIFT and SPLIT operations, one-dimensional form (paper §4).
//
// Let a be a vector of size N = 2^n and b its (k+1)-th dyadic sub-range of
// size M = 2^m. The transform of b relates to the transform of a by:
//   SHIFT — the M-1 detail coefficients of b appear verbatim in the
//           transform of a at translated indices (ShiftIndex);
//   SPLIT — the average of b contributes (with alternating sign and
//           geometric attenuation) to the n-m details on the path from
//           w_{m,k} to the root, and to the overall average.
//
// This file provides the in-memory forms (used by the stream synopses and
// as the correctness oracle) and the tile-store forms, which additionally
// maintain the redundant subtree-root scaling slots of the paper's block
// allocation strategy (§3).

#ifndef SHIFTSPLIT_CORE_SHIFT_SPLIT_H_
#define SHIFTSPLIT_CORE_SHIFT_SPLIT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "shiftsplit/tile/tiled_store.h"
#include "shiftsplit/wavelet/haar.h"

namespace shiftsplit {

/// \brief One SPLIT contribution: add `delta` to the coefficient at flat
/// wavelet index `index`.
struct SplitContribution {
  uint64_t index;
  double delta;

  bool operator==(const SplitContribution&) const = default;
};

/// \brief How chunk coefficients are applied to an existing transform.
enum class ApplyMode {
  kConstruct,  ///< chunk holds fresh data: shifted details are final (Set)
  kUpdate,     ///< chunk holds deltas: everything accumulates (Add)
};

/// \brief Options for the tile-store apply operations.
struct ApplyOptions {
  ApplyMode mode = ApplyMode::kConstruct;
  /// Maintain the redundant subtree-root scaling slots (only meaningful for
  /// tree tilings; ignored — no such slots exist — for naive layouts).
  bool maintain_scaling_slots = true;
  /// Skip writes of exactly-zero values — the paper's sparse-data
  /// modification (§5.1: "O(z + z log(N/z))" for z non-zero values). Safe
  /// because untouched coefficients read as zero; in kConstruct mode this
  /// assumes the written region starts zeroed (fresh store or expansion).
  bool skip_zero_writes = false;
  /// Tile-batched apply (md_shift_split only): group the chunk's writes by
  /// destination block, pin each block once and write through the pinned
  /// span, visiting blocks in layout order — one GetBlock per distinct block
  /// instead of one per coefficient. Produces bit-identical stores; set to
  /// false for the per-coefficient reference path.
  bool batched = true;
  /// Warm the buffer pool with the chunk's exact block set in one vectored
  /// read before applying (batched path only).
  bool prefetch = false;
};

/// \brief SPLIT (paper Definition of SPLIT): contributions of the sub-range's
/// scaling coefficient `chunk_scaling` (the level-m average in the chosen
/// normalization) to the transform of the size-2^n vector. Returns n-m+1
/// contributions: levels m+1..n, then the overall average (index 0).
std::vector<SplitContribution> Split1D(uint32_t n, uint32_t m, uint64_t chunk_k,
                                       double chunk_scaling,
                                       Normalization norm);

/// \brief Expansion of the scaling coefficient u_{level,pos} of a transform
/// of size 2^m as a linear combination of that transform's entries: pairs of
/// (flat index, weight), where flat index 0 is the transform's own scaling
/// coefficient. `pos` is the position within the *local* tree.
///
/// This is the inverse-cascade identity
///   u_{r,q} = g^(m-r) u_m + sum_{j in (r,m]} (+-) g^(j-r) w_{j,...}
/// with g = ReconstructionAttenuation(norm) (1 for kAverage, 1/sqrt2 for
/// kOrthonormal), used by the redundant-scaling maintenance and the partial
/// reconstruction.
std::vector<std::pair<uint64_t, double>> ScalingExpansion(uint32_t m,
                                                          uint32_t level,
                                                          uint64_t pos,
                                                          Normalization norm);

/// \brief In-memory SHIFT-SPLIT apply: merges the transform of the (k+1)-th
/// dyadic chunk (`chunk_transform`, size 2^m) into the transform of the whole
/// vector (`global_transform`, size 2^n). In kConstruct mode the shifted
/// details overwrite; in kUpdate mode everything accumulates.
Status ApplyChunk1D(std::span<const double> chunk_transform, uint32_t n,
                    uint64_t chunk_k, std::span<double> global_transform,
                    Normalization norm,
                    ApplyMode mode = ApplyMode::kConstruct);

/// \brief Full 1-d Haar scaling pyramid: pyramid[j] holds the 2^(m-j)
/// scaling coefficients of level j (pyramid[0] is the input data). Also
/// leaves the complete transform in `transform` (size 2^m, wavelet order).
Status HaarPyramid(std::span<const double> data, Normalization norm,
                   std::vector<std::vector<double>>* pyramid,
                   std::vector<double>* transform);

/// \brief Tile-store SHIFT-SPLIT apply (Example 1 / Example 2 of the paper):
/// transforms the chunk `chunk_data` (the (k+1)-th dyadic range of the
/// size-2^n dataset) and applies it to the store with O(M/B + log_B(N/M))
/// block I/O. Maintains redundant scaling slots when the store uses the
/// 1-d tree tiling.
Status TransformAndApplyChunk1D(std::span<const double> chunk_data, uint32_t n,
                                uint64_t chunk_k, TiledStore* store,
                                Normalization norm,
                                const ApplyOptions& options = {});

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_SHIFT_SPLIT_H_
