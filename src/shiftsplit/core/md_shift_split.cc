#include "shiftsplit/core/md_shift_split.h"

#include <algorithm>
#include <unordered_map>
#include <cmath>
#include <utility>

#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/nonstandard_transform.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

namespace {

// A per-dimension write target of the standard-form apply. The value written
// to the cross product of d targets is the expansion-weighted combination of
// chunk-transform entries; `final` distinguishes SHIFT (exact, single-writer)
// positions from SPLIT accumulation positions along this dimension.
struct DimTarget {
  uint64_t global_index = 0;  // 1-d wavelet index (regular targets)
  bool scaling_slot = false;  // redundant tile-root scaling (no 1-d index)
  BlockSlot part;             // per-dim (tile, slot) when parts are in use
  bool final = true;
  // Expansion entries (flat offset contribution, weight): the local index
  // along this dimension pre-multiplied by the chunk tensor's row-major
  // stride, so the enumerator indexes the transformed chunk without
  // per-coefficient tuple arithmetic. Nearly every target expands to exactly
  // one entry, stored inline in `entry` (no heap allocation); only
  // multi-entry tile-root scaling expansions spill to `multi`.
  std::pair<uint64_t, double> entry{0, 1.0};
  std::vector<std::pair<uint64_t, double>> multi;  // empty => single `entry`

  size_t expansion_size() const { return multi.empty() ? 1 : multi.size(); }
  std::span<const std::pair<uint64_t, double>> expansion() const {
    return multi.empty()
               ? std::span<const std::pair<uint64_t, double>>(&entry, 1)
               : std::span<const std::pair<uint64_t, double>>(multi);
  }
};

// Builds the target list for one dimension.
//   n, m, k: global log extent, chunk log extent, chunk dyadic position.
//   stride:  row-major stride of this dimension in the chunk tensor.
//   tiling:  per-dimension tree tiling (nullptr when the store's layout is
//            not the standard tiling — scaling slots are skipped then).
Status BuildDimTargets(uint32_t n, uint32_t m, uint64_t k, uint64_t stride,
                       Normalization norm, const TreeTiling* tiling,
                       bool maintain_scaling_slots,
                       std::vector<DimTarget>* out) {
  out->clear();
  const uint64_t chunk_size = uint64_t{1} << m;
  const double atten = ScalingAttenuation(norm);

  // SHIFT: within-chunk details, final.
  for (uint64_t local = 1; local < chunk_size; ++local) {
    DimTarget t;
    t.global_index = ShiftIndex(n, m, k, local);
    t.entry = {local * stride, 1.0};
    if (tiling != nullptr) t.part = tiling->Locate(t.global_index);
    out->push_back(std::move(t));
  }
  if (n == m) {
    // The chunk spans the whole dimension: its local scaling IS the global
    // scaling coefficient (index 0), final.
    DimTarget t;
    t.global_index = 0;
    t.entry = {0, 1.0};
    if (tiling != nullptr) t.part = tiling->Locate(0);
    out->push_back(std::move(t));
  } else {
    // SPLIT: covering details at levels (m, n], then the overall average.
    double magnitude = 1.0;
    for (uint32_t j = m + 1; j <= n; ++j) {
      magnitude *= atten;
      DimTarget t;
      t.global_index = DetailIndex(n, j, k >> (j - m));
      t.final = false;
      const double sign = InLeftHalf(m, k, j) ? 1.0 : -1.0;
      t.entry = {0, sign * magnitude};
      if (tiling != nullptr) t.part = tiling->Locate(t.global_index);
      out->push_back(std::move(t));
    }
    DimTarget root;
    root.global_index = 0;
    root.final = false;
    root.entry = {0, magnitude};  // atten^(n-m)
    if (tiling != nullptr) root.part = tiling->Locate(0);
    out->push_back(std::move(root));
  }

  if (tiling == nullptr || !maintain_scaling_slots) return Status::OK();

  // Redundant tile-root scaling slots along this dimension.
  for (const auto& [level, pos] : tiling->ScalingSlotsWithin(m, k)) {
    if (level == n) continue;  // index 0 already targeted above
    DimTarget t;
    t.scaling_slot = true;
    SS_ASSIGN_OR_RETURN(t.part, tiling->LocateScaling(level, pos));
    t.multi = ScalingExpansion(m, level, pos - (k << (m - level)), norm);
    for (auto& [offset, weight] : t.multi) offset *= stride;
    if (t.multi.size() == 1) {
      t.entry = t.multi.front();
      t.multi.clear();
    }
    out->push_back(std::move(t));
  }
  for (const auto& [level, pos] : tiling->ScalingSlotsAbove(m, k)) {
    if (level == n) continue;  // index 0 already targeted above
    DimTarget t;
    t.scaling_slot = true;
    t.final = false;
    SS_ASSIGN_OR_RETURN(t.part, tiling->LocateScaling(level, pos));
    t.entry = {0, std::pow(atten, static_cast<double>(level - m))};
    out->push_back(std::move(t));
  }
  return Status::OK();
}

// Groups planned writes by destination block as they are generated. The
// cross-product enumeration emits long runs of same-block writes, so a
// one-entry cache in front of a block → group hash map makes grouping O(1)
// per op with no global sort; Finish() orders the groups by block id
// (= layout order). Generation order is preserved within each group, though
// it cannot affect values: each (block, slot) is written at most once per
// chunk apply.
class PlanBuilder {
 public:
  void Add(uint64_t block, SlotUpdate op) {
    ++total_;
    if (last_ops_ != nullptr && last_block_ == block) {
      last_ops_->push_back(op);
      return;
    }
    const auto [it, inserted] = index_.try_emplace(block, plan_.blocks.size());
    if (inserted) plan_.blocks.push_back(ChunkBlockOps{block, {}});
    last_block_ = block;
    last_ops_ = &plan_.blocks[it->second].ops;
    last_ops_->push_back(op);
  }

  // Sink interface for FastEnumerateStandard: Switch selects the group,
  // Write appends to it without re-checking the block.
  Status Switch(uint64_t block, uint64_t /*gid*/) {
    if (last_ops_ == nullptr || last_block_ != block) {
      const auto [it, inserted] =
          index_.try_emplace(block, plan_.blocks.size());
      if (inserted) plan_.blocks.push_back(ChunkBlockOps{block, {}});
      last_block_ = block;
      last_ops_ = &plan_.blocks[it->second].ops;
    }
    return Status::OK();
  }

  void Write(uint64_t slot, double value, bool overwrite) {
    ++total_;
    last_ops_->push_back({slot, value, overwrite});
  }

  ChunkApplyPlan Finish() && {
    std::sort(plan_.blocks.begin(), plan_.blocks.end(),
              [](const ChunkBlockOps& a, const ChunkBlockOps& b) {
                return a.block < b.block;
              });
    plan_.total_ops = total_;
    return std::move(plan_);
  }

 private:
  ChunkApplyPlan plan_;
  std::unordered_map<uint64_t, size_t> index_;
  uint64_t last_block_ = 0;
  std::vector<SlotUpdate>* last_ops_ = nullptr;
  uint64_t total_ = 0;
};

// Validated + transformed inputs of one standard-form chunk apply, shared by
// the per-coefficient path and the plan builder.
struct StandardContext {
  uint32_t d = 0;
  Tensor transformed;
  const StandardTiling* std_tiling = nullptr;
  std::vector<std::vector<DimTarget>> targets;
};

Status PrepareStandard(const Tensor& chunk_data,
                       std::span<const uint64_t> chunk_pos,
                       std::span<const uint32_t> global_log_dims,
                       const TileLayout& layout, Normalization norm,
                       const ApplyOptions& options, StandardContext* ctx) {
  const TensorShape& shape = chunk_data.shape();
  const uint32_t d = shape.ndim();
  if (chunk_pos.size() != d || global_log_dims.size() != d) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  std::vector<uint32_t> m(d);
  for (uint32_t i = 0; i < d; ++i) {
    m[i] = Log2(shape.dim(i));
    if (m[i] > global_log_dims[i]) {
      return Status::InvalidArgument("chunk larger than the dataset");
    }
    if (chunk_pos[i] >= (uint64_t{1} << (global_log_dims[i] - m[i]))) {
      return Status::OutOfRange("chunk position beyond the global domain");
    }
  }

  // Transform the chunk in memory.
  ctx->d = d;
  ctx->transformed = chunk_data;
  SS_RETURN_IF_ERROR(ForwardStandard(&ctx->transformed, norm));

  // Per-dimension target lists. Parts (per-dim tile/slot pairs) are used
  // when the store's layout is the standard cross-product tiling.
  ctx->std_tiling = dynamic_cast<const StandardTiling*>(&layout);
  ctx->targets.assign(d, {});
  for (uint32_t i = 0; i < d; ++i) {
    const TreeTiling* tiling =
        ctx->std_tiling != nullptr ? &ctx->std_tiling->dim_tiling(i) : nullptr;
    SS_RETURN_IF_ERROR(BuildDimTargets(global_log_dims[i], m[i], chunk_pos[i],
                                       shape.stride(i), norm, tiling,
                                       options.maintain_scaling_slots,
                                       &ctx->targets[i]));
  }
  return Status::OK();
}

// Specialized standard-form enumeration for the cross-product tiling: every
// per-dimension target is flattened to precomputed mixed-radix block/slot
// contributions (matching StandardTiling::Combine exactly: block =
// sum of part.block * prod of later dims' tile counts, slot likewise with
// tile capacities), so the hot loop needs d integer adds instead of a
// virtual Locate/Combine per coefficient. Single-entry expansions (all SHIFT
// and SPLIT targets) carry their offset/weight inline; the rare multi-entry
// scaling expansions live in a shared pool and take the generic inner loop.
struct FastTarget {
  uint64_t block_c = 0;   // part.block pre-multiplied by the dim block stride
  uint64_t slot_c = 0;    // part.slot pre-multiplied by the dim slot stride
  uint64_t offset = 0;    // single-entry flat offset into the chunk tensor
  double weight = 1.0;    // single-entry weight
  uint32_t multi_lo = 0;  // multi-entry range in FastStandard::pool
  uint32_t multi_n = 0;   // 0 = single entry
  uint32_t group = 0;     // rank of block_c in the dim's distinct-id list
  bool is_final = true;
};

struct FastStandard {
  std::vector<std::vector<FastTarget>> targets;       // per dimension
  std::vector<std::pair<uint64_t, double>> pool;      // multi-entry entries
  std::vector<std::vector<uint64_t>> dim_block_ids;   // distinct, ascending
};

FastStandard BuildFastStandard(const StandardContext& ctx) {
  FastStandard f;
  const uint32_t d = ctx.d;
  std::vector<uint64_t> bstride(d), sstride(d);
  uint64_t bs = 1, ss = 1;
  for (uint32_t i = d; i-- > 0;) {
    bstride[i] = bs;
    sstride[i] = ss;
    bs *= ctx.std_tiling->dim_tiling(i).num_tiles();
    ss *= ctx.std_tiling->dim_tiling(i).tile_capacity();
  }
  f.targets.resize(d);
  f.dim_block_ids.resize(d);
  for (uint32_t i = 0; i < d; ++i) {
    f.targets[i].reserve(ctx.targets[i].size());
    for (const DimTarget& t : ctx.targets[i]) {
      FastTarget ft;
      ft.block_c = t.part.block * bstride[i];
      ft.slot_c = t.part.slot * sstride[i];
      ft.is_final = t.final;
      if (t.multi.empty()) {
        ft.offset = t.entry.first;
        ft.weight = t.entry.second;
      } else {
        ft.multi_lo = static_cast<uint32_t>(f.pool.size());
        ft.multi_n = static_cast<uint32_t>(t.multi.size());
        f.pool.insert(f.pool.end(), t.multi.begin(), t.multi.end());
      }
      f.targets[i].push_back(ft);
      f.dim_block_ids[i].push_back(ft.block_c);
    }
    // Group equal block contributions contiguously (stable, so the canonical
    // order is kept within each group): the cross-product enumeration then
    // emits long same-block runs and the sink rarely switches blocks. Safe to
    // reorder — each (block, slot) is written at most once per chunk apply.
    std::stable_sort(f.targets[i].begin(), f.targets[i].end(),
                     [](const FastTarget& a, const FastTarget& b) {
                       return a.block_c < b.block_c;
                     });
    std::sort(f.dim_block_ids[i].begin(), f.dim_block_ids[i].end());
    f.dim_block_ids[i].erase(
        std::unique(f.dim_block_ids[i].begin(), f.dim_block_ids[i].end()),
        f.dim_block_ids[i].end());
    // Sorted targets fall into runs of equal block_c; run r's contribution is
    // dim_block_ids[i][r], so the run rank doubles as the group index.
    uint32_t group = 0;
    for (size_t j = 0; j < f.targets[i].size(); ++j) {
      if (j > 0 && f.targets[i][j].block_c != f.targets[i][j - 1].block_c) {
        ++group;
      }
      f.targets[i][j].group = group;
    }
  }
  return f;
}

// The full destination block set of the chunk: the cross product of per-dim
// distinct tile contributions. Ascending by construction (later dims'
// contributions are always smaller than one earlier-dim stride step).
std::vector<uint64_t> FastBlockSet(const FastStandard& f) {
  std::vector<uint64_t> ids{0};
  for (const std::vector<uint64_t>& dim_ids : f.dim_block_ids) {
    std::vector<uint64_t> next;
    next.reserve(ids.size() * dim_ids.size());
    for (uint64_t id : ids) {
      for (uint64_t c : dim_ids) next.push_back(id + c);
    }
    ids = std::move(next);
  }
  return ids;
}

// Enumerates the same writes as EnumerateStandard (bit-identical values:
// identical multiplication/accumulation chains) but against FastTargets.
// The outer d-1 dimensions advance through an odometer with prefix
// accumulators; the innermost dimension — the overwhelmingly common case —
// is a flat pass over a contiguous target array with no per-op odometer
// work and no per-op Status round trip.
// Sink concept:
//   // Destination block changed (rare). `gid` is the block's rank in the
//   // chunk's ascending distinct-block list (the FastBlockSet order).
//   Status Switch(uint64_t block, uint64_t gid);
//   void Write(uint64_t slot, double value, bool overwrite);
template <typename Sink>
Status FastEnumerateStandard(const StandardContext& ctx,
                             const FastStandard& f,
                             const ApplyOptions& options, Sink&& sink) {
  const uint32_t d = ctx.d;
  const uint32_t outer = d - 1;
  const bool construct = options.mode == ApplyMode::kConstruct;
  const bool skip_zero = options.skip_zero_writes;
  const std::span<const double> data = ctx.transformed.data();
  const FastTarget* const in = f.targets[outer].data();
  const size_t in_n = f.targets[outer].size();
  std::vector<size_t> pick(d, 0);
  std::vector<size_t> epick(d);
  std::vector<uint64_t> pre_block(d), pre_slot(d), pre_off(d), pre_gid(d);
  std::vector<double> pre_w(d);
  std::vector<uint8_t> pre_final(d), pre_single(d);
  const auto refresh = [&](uint32_t from) {
    for (uint32_t i = from; i < outer; ++i) {
      const FastTarget& t = f.targets[i][pick[i]];
      if (i == 0) {
        pre_block[0] = t.block_c;
        pre_slot[0] = t.slot_c;
        pre_off[0] = t.offset;
        pre_gid[0] = t.group;
        pre_w[0] = t.weight;
        pre_final[0] = t.is_final;
        pre_single[0] = t.multi_n == 0;
      } else {
        pre_block[i] = pre_block[i - 1] + t.block_c;
        pre_slot[i] = pre_slot[i - 1] + t.slot_c;
        pre_off[i] = pre_off[i - 1] + t.offset;
        pre_gid[i] = pre_gid[i - 1] * f.dim_block_ids[i].size() + t.group;
        pre_w[i] = pre_w[i - 1] * t.weight;
        pre_final[i] = pre_final[i - 1] && t.is_final;
        pre_single[i] = pre_single[i - 1] && t.multi_n == 0;
      }
    }
  };
  refresh(0);
  // Generic expansion cross product for ops involving a multi-entry
  // (scaling-slot) expansion, in the same nested order — and thus the same
  // floating-point accumulation chain — as EnumerateStandard.
  const auto generic_value = [&](size_t inner_j) {
    double value = 0.0;
    std::fill(epick.begin(), epick.end(), 0);
    for (;;) {
      double weight = 1.0;
      uint64_t offset = 0;
      for (uint32_t i = 0; i < d; ++i) {
        const FastTarget& t = i == outer ? in[inner_j] : f.targets[i][pick[i]];
        if (t.multi_n == 0) {
          offset += t.offset;
          weight *= t.weight;
        } else {
          const auto& [off, w] = f.pool[t.multi_lo + epick[i]];
          offset += off;
          weight *= w;
        }
      }
      value += weight * data[offset];
      uint32_t i = d;
      bool advanced = false;
      while (i-- > 0) {
        const FastTarget& t = i == outer ? in[inner_j] : f.targets[i][pick[i]];
        const size_t size = t.multi_n == 0 ? 1 : t.multi_n;
        if (++epick[i] < size) {
          advanced = true;
          break;
        }
        epick[i] = 0;
      }
      if (!advanced) break;
    }
    return value;
  };
  bool have_block = false;
  uint64_t cur_block = 0;
  for (;;) {
    // Prefix over the outer dimensions (identity when d == 1). base_w is
    // exactly pre_w[d-2] of the reference chain, so base_w * t.weight below
    // reproduces the reference multiplication order.
    uint64_t base_block = 0, base_slot = 0, base_off = 0, base_gid = 0;
    double base_w = 1.0;
    bool base_final = true, base_single = true;
    if (outer > 0) {
      base_block = pre_block[outer - 1];
      base_slot = pre_slot[outer - 1];
      base_off = pre_off[outer - 1];
      base_gid = pre_gid[outer - 1] * f.dim_block_ids[outer].size();
      base_w = pre_w[outer - 1];
      base_final = pre_final[outer - 1] != 0;
      base_single = pre_single[outer - 1] != 0;
    }
    for (size_t j = 0; j < in_n; ++j) {
      const FastTarget& t = in[j];
      double value;
      if (base_single && t.multi_n == 0) [[likely]] {
        value = 0.0 + (base_w * t.weight) * data[base_off + t.offset];
      } else {
        value = generic_value(j);
      }
      if (skip_zero && value == 0.0) continue;
      const uint64_t block = base_block + t.block_c;
      if (!have_block || block != cur_block) {
        SS_RETURN_IF_ERROR(sink.Switch(block, base_gid + t.group));
        cur_block = block;
        have_block = true;
      }
      sink.Write(base_slot + t.slot_c, value,
                 construct && base_final && t.is_final);
    }
    uint32_t i = outer;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < f.targets[i].size()) {
        advanced = true;
        refresh(i);
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  return Status::OK();
}

// Applies emitted writes directly through pinned per-block guards: each
// distinct destination block of the chunk is pinned once and all of its
// writes go through the pinned span — no per-op pool lookup (a one-entry
// cache catches the long same-block runs of the cross-product order) and no
// materialized plan. If the pool runs out of unpinned frames mid-apply the
// cache drops every guard and re-pins (values stay exact: each slot is
// written at most once per chunk apply, and released dirty frames are
// written back on eviction).
class GuardCacheSink {
 public:
  explicit GuardCacheSink(TiledStore* store) : store_(store) {}

  Status Switch(uint64_t block, uint64_t /*gid*/) {
    auto it = guards_.find(block);
    if (it == guards_.end()) {
      Result<PageGuard> guard = store_->PinBlock(block, /*for_write=*/true);
      if (!guard.ok() &&
          guard.status().code() == StatusCode::kResourceExhausted &&
          !guards_.empty()) {
        guards_.clear();
        guard = store_->PinBlock(block, /*for_write=*/true);
      }
      if (!guard.ok()) return guard.status();
      it = guards_.emplace(block, std::move(guard).value()).first;
    }
    span_ = it->second.span();
    return Status::OK();
  }

  void Write(uint64_t slot, double value, bool overwrite) {
    if (overwrite) {
      span_[slot] = value;
    } else {
      span_[slot] += value;
    }
    ++writes_;
  }

  // Releases the guards and books the coefficient writes (same accounting
  // as TiledStore::ApplyToBlock).
  void Finish() {
    guards_.clear();
    store_->manager().stats().coeff_writes += writes_;
    writes_ = 0;
  }

 private:
  TiledStore* store_;
  std::unordered_map<uint64_t, PageGuard> guards_;
  std::span<double> span_;
  uint64_t writes_ = 0;
};

// Dense-mode direct sink: pins the chunk's whole destination block set up
// front (every block of the cross product receives writes when zero writes
// are not skipped) and indexes the pinned spans by the enumerator's group
// rank, so a block switch is one array load — no hash lookups at all.
class SpanTableSink {
 public:
  explicit SpanTableSink(TiledStore* store) : store_(store) {}

  // Pins the cross product of per-dimension distinct block contributions in
  // ascending id order (= FastBlockSet order = group-rank order).
  // kResourceExhausted means the pool cannot hold the whole set at once; the
  // caller falls back to the materialized plan (the destructor releases any
  // partial pins).
  Status Pin(const FastStandard& f) {
    const uint32_t d = static_cast<uint32_t>(f.dim_block_ids.size());
    uint64_t count = 1;
    for (const std::vector<uint64_t>& ids : f.dim_block_ids) {
      count *= ids.size();
    }
    guards_.reserve(count);
    spans_.reserve(count);
    std::vector<size_t> g(d, 0);
    for (;;) {
      uint64_t block = 0;
      for (uint32_t i = 0; i < d; ++i) block += f.dim_block_ids[i][g[i]];
      SS_ASSIGN_OR_RETURN(PageGuard guard,
                          store_->PinBlock(block, /*for_write=*/true));
      spans_.push_back(guard.span());
      guards_.push_back(std::move(guard));
      uint32_t i = d;
      bool advanced = false;
      while (i-- > 0) {
        if (++g[i] < f.dim_block_ids[i].size()) {
          advanced = true;
          break;
        }
        g[i] = 0;
      }
      if (!advanced) break;
    }
    return Status::OK();
  }

  Status Switch(uint64_t /*block*/, uint64_t gid) {
    span_ = spans_[gid];
    return Status::OK();
  }

  void Write(uint64_t slot, double value, bool overwrite) {
    if (overwrite) {
      span_[slot] = value;
    } else {
      span_[slot] += value;
    }
    ++writes_;
  }

  // Releases the guards and books the coefficient writes (same accounting
  // as TiledStore::ApplyToBlock).
  void Finish() {
    guards_.clear();
    spans_.clear();
    store_->manager().stats().coeff_writes += writes_;
    writes_ = 0;
  }

 private:
  TiledStore* store_;
  std::vector<PageGuard> guards_;
  std::vector<std::span<double>> spans_;
  std::span<double> span_;
  uint64_t writes_ = 0;
};

// Enumerates every non-skipped write of the standard apply, in the fixed
// cross-product order. Emit signature:
//   Status emit(bool has_at, BlockSlot at, std::span<const uint64_t> address,
//               bool any_scaling_slot, double value, bool overwrite)
// `has_at` is true iff the layout is the standard tiling (at = Combine of the
// per-dim parts); otherwise the tuple address is passed and scaling-slot
// targets never occur.
template <typename Emit>
Status EnumerateStandard(const StandardContext& ctx,
                         const ApplyOptions& options, Emit&& emit) {
  const uint32_t d = ctx.d;
  const bool construct = options.mode == ApplyMode::kConstruct;
  const bool use_parts = ctx.std_tiling != nullptr;
  const std::span<const double> data = ctx.transformed.data();
  std::vector<size_t> pick(d, 0);
  std::vector<uint64_t> address(d);
  std::vector<BlockSlot> parts(d);
  std::vector<size_t> epick(d);
  for (;;) {
    bool is_final = true;
    bool any_scaling_slot = false;
    for (uint32_t i = 0; i < d; ++i) {
      const DimTarget& t = ctx.targets[i][pick[i]];
      is_final = is_final && t.final;
      any_scaling_slot = any_scaling_slot || t.scaling_slot;
      if (use_parts) {
        parts[i] = t.part;
      } else {
        address[i] = t.global_index;
      }
    }
    // Value: expansion-weighted sum of chunk-transform entries (expansion
    // entries carry pre-multiplied flat-offset contributions).
    double value = 0.0;
    std::fill(epick.begin(), epick.end(), 0);
    for (;;) {
      double weight = 1.0;
      uint64_t offset = 0;
      for (uint32_t i = 0; i < d; ++i) {
        const auto& [off, w] = ctx.targets[i][pick[i]].expansion()[epick[i]];
        offset += off;
        weight *= w;
      }
      value += weight * data[offset];
      uint32_t i = d;
      bool advanced = false;
      while (i-- > 0) {
        if (++epick[i] < ctx.targets[i][pick[i]].expansion_size()) {
          advanced = true;
          break;
        }
        epick[i] = 0;
      }
      if (!advanced) break;
    }

    const bool do_set = construct && is_final;
    const bool skip = options.skip_zero_writes && value == 0.0;
    if (!skip) {
      // Untouched coefficients read as zero when skipped; nothing to write.
      if (ctx.std_tiling != nullptr) {
        SS_RETURN_IF_ERROR(emit(true, ctx.std_tiling->Combine(parts), address,
                                any_scaling_slot, value, do_set));
      } else {
        SS_RETURN_IF_ERROR(
            emit(false, BlockSlot{}, address, any_scaling_slot, value,
                 do_set));
      }
    }

    uint32_t i = d;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < ctx.targets[i].size()) {
        advanced = true;
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  return Status::OK();
}

// Validated + transformed inputs of one non-standard-form chunk apply.
struct NonstandardContext {
  uint32_t d = 0;
  uint32_t n = 0;
  uint32_t m = 0;
  Tensor transformed;
  std::vector<Tensor> pyramid;
  const NonstandardTiling* ns_tiling = nullptr;
};

Status PrepareNonstandard(const Tensor& chunk_data,
                          std::span<const uint64_t> chunk_pos,
                          uint32_t global_log_extent, const TileLayout& layout,
                          Normalization norm, NonstandardContext* ctx) {
  const TensorShape& shape = chunk_data.shape();
  const uint32_t d = shape.ndim();
  const uint32_t n = global_log_extent;
  if (!shape.IsCube()) {
    return Status::InvalidArgument("non-standard chunks must be hypercubes");
  }
  if (chunk_pos.size() != d) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  const uint32_t m = Log2(shape.dim(0));
  if (m > n) {
    return Status::InvalidArgument("chunk larger than the dataset");
  }
  for (uint64_t k : chunk_pos) {
    if (k >= (uint64_t{1} << (n - m))) {
      return Status::OutOfRange("chunk position beyond the global domain");
    }
  }

  ctx->d = d;
  ctx->n = n;
  ctx->m = m;
  ctx->transformed = chunk_data;
  ctx->ns_tiling = dynamic_cast<const NonstandardTiling*>(&layout);
  return ForwardNonstandardWithPyramid(&ctx->transformed, norm,
                                       &ctx->pyramid);
}

// Enumerates every non-skipped write of the non-standard apply. Emit
// signature:
//   Status emit(bool has_at, BlockSlot at, std::span<const uint64_t> address,
//               double value, bool overwrite)
// Scaling-slot writes arrive pre-located (has_at); all others carry the
// tuple address.
template <typename Emit>
Status EnumerateNonstandard(const NonstandardContext& ctx,
                            std::span<const uint64_t> chunk_pos,
                            Normalization norm, const ApplyOptions& options,
                            Emit&& emit) {
  const uint32_t d = ctx.d;
  const uint32_t n = ctx.n;
  const uint32_t m = ctx.m;
  const TensorShape& shape = ctx.transformed.shape();
  const bool construct = options.mode == ApplyMode::kConstruct;
  const uint64_t corners = uint64_t{1} << d;
  const double atten_d =
      std::pow(ScalingAttenuation(norm), static_cast<double>(d));

  // SHIFT: every local detail (all addresses except the all-zero root).
  std::vector<uint64_t> local(d, 0);
  std::vector<uint64_t> address(d);
  NsCoeffId id;
  do {
    bool is_root = true;
    for (uint64_t c : local) is_root = is_root && (c == 0);
    if (is_root) continue;
    const double value = ctx.transformed.At(local);
    if (options.skip_zero_writes && value == 0.0) continue;
    id = NsCoeffOfAddress(m, local);
    for (uint32_t i = 0; i < d; ++i) {
      id.node[i] += chunk_pos[i] << (m - id.level);
    }
    address = NsAddress(n, id);
    SS_RETURN_IF_ERROR(emit(false, BlockSlot{}, address, value, construct));
  } while (shape.Next(local));

  // SPLIT: the chunk average up the quadtree path.
  const double u_local = ctx.transformed[0];
  const bool skip_split = options.skip_zero_writes && u_local == 0.0;
  id.is_scaling = false;
  double magnitude = u_local;
  for (uint32_t j = m + 1; skip_split ? false : j <= n; ++j) {
    magnitude *= atten_d;
    uint64_t corner = 0;
    id.level = j;
    id.node.assign(d, 0);
    for (uint32_t i = 0; i < d; ++i) {
      id.node[i] = chunk_pos[i] >> (j - m);
      corner |= ((chunk_pos[i] >> (j - m - 1)) & 1u) << i;
    }
    for (uint64_t sigma = 1; sigma < corners; ++sigma) {
      id.subband = sigma;
      address = NsAddress(n, id);
      SS_RETURN_IF_ERROR(emit(false, BlockSlot{}, address,
                              NsSign(sigma, corner) * magnitude, false));
    }
  }
  // The overall average (all-zero address). magnitude == atten_d^(n-m)*u.
  if (!skip_split) {
    std::fill(address.begin(), address.end(), 0);
    SS_RETURN_IF_ERROR(emit(false, BlockSlot{}, address, magnitude, false));
  }

  // Redundant quadtree tile-root scaling slots.
  if (options.maintain_scaling_slots && ctx.ns_tiling != nullptr) {
    for (const auto& [level, node] :
         ctx.ns_tiling->ScalingNodesWithin(m, chunk_pos)) {
      if (level == n) continue;  // the overall average was split above
      SS_ASSIGN_OR_RETURN(const BlockSlot at,
                          ctx.ns_tiling->LocateScaling(level, node));
      std::vector<uint64_t> local_node(d);
      for (uint32_t i = 0; i < d; ++i) {
        local_node[i] = node[i] - (chunk_pos[i] << (m - level));
      }
      const double value = ctx.pyramid[level].At(local_node);
      SS_RETURN_IF_ERROR(emit(true, at, address, value, construct));
    }
    for (const auto& [level, node] :
         ctx.ns_tiling->ScalingNodesAbove(m, chunk_pos)) {
      if (level == n) continue;  // the overall average was split above
      SS_ASSIGN_OR_RETURN(const BlockSlot at,
                          ctx.ns_tiling->LocateScaling(level, node));
      const double delta =
          u_local * std::pow(atten_d, static_cast<double>(level - m));
      SS_RETURN_IF_ERROR(emit(true, at, address, delta, false));
    }
  }
  return Status::OK();
}

// Builds a plan from a prepared context: the fast mixed-radix enumeration
// when the layout is the standard cross-product tiling, the generic
// tuple-address enumeration (per-address Locate) otherwise.
Result<ChunkApplyPlan> PlanStandardFromContext(const StandardContext& ctx,
                                               const TileLayout& layout,
                                               const ApplyOptions& options) {
  PlanBuilder builder;
  if (ctx.std_tiling != nullptr) {
    const FastStandard fast = BuildFastStandard(ctx);
    SS_RETURN_IF_ERROR(FastEnumerateStandard(ctx, fast, options, builder));
    return std::move(builder).Finish();
  }
  SS_RETURN_IF_ERROR(EnumerateStandard(
      ctx, options,
      [&](bool has_at, BlockSlot at, std::span<const uint64_t> address,
          bool any_scaling_slot, double value, bool overwrite) -> Status {
        if (!has_at) {
          // (any_scaling_slot without the standard tiling cannot occur:
          // such targets are only generated when the tiling is present.)
          if (any_scaling_slot) return Status::OK();
          SS_ASSIGN_OR_RETURN(at, layout.Locate(address));
        }
        builder.Add(at.block, {at.slot, value, overwrite});
        return Status::OK();
      }));
  return std::move(builder).Finish();
}

}  // namespace

std::vector<uint64_t> ChunkApplyPlan::BlockIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(blocks.size());
  for (const ChunkBlockOps& b : blocks) ids.push_back(b.block);
  return ids;
}

Status ApplyChunkPlan(const ChunkApplyPlan& plan, TiledStore* store,
                      bool prefetch) {
  if (store == nullptr) {
    return Status::InvalidArgument("store is required");
  }
  if (prefetch && !plan.blocks.empty()) {
    SS_RETURN_IF_ERROR(store->Prefetch(plan.BlockIds()));
  }
  for (const ChunkBlockOps& b : plan.blocks) {
    SS_RETURN_IF_ERROR(store->ApplyToBlock(b.block, b.ops));
  }
  return Status::OK();
}

Result<ChunkApplyPlan> PlanChunkStandard(const Tensor& chunk_data,
                                         std::span<const uint64_t> chunk_pos,
                                         std::span<const uint32_t>
                                             global_log_dims,
                                         const TileLayout& layout,
                                         Normalization norm,
                                         const ApplyOptions& options) {
  StandardContext ctx;
  SS_RETURN_IF_ERROR(PrepareStandard(chunk_data, chunk_pos, global_log_dims,
                                     layout, norm, options, &ctx));
  return PlanStandardFromContext(ctx, layout, options);
}

Result<ChunkApplyPlan> PlanChunkNonstandard(const Tensor& chunk_data,
                                            std::span<const uint64_t>
                                                chunk_pos,
                                            uint32_t global_log_extent,
                                            const TileLayout& layout,
                                            Normalization norm,
                                            const ApplyOptions& options) {
  NonstandardContext ctx;
  SS_RETURN_IF_ERROR(PrepareNonstandard(chunk_data, chunk_pos,
                                        global_log_extent, layout, norm,
                                        &ctx));
  PlanBuilder builder;
  SS_RETURN_IF_ERROR(EnumerateNonstandard(
      ctx, chunk_pos, norm, options,
      [&](bool has_at, BlockSlot at, std::span<const uint64_t> address,
          double value, bool overwrite) -> Status {
        if (!has_at) {
          SS_ASSIGN_OR_RETURN(at, layout.Locate(address));
        }
        builder.Add(at.block, {at.slot, value, overwrite});
        return Status::OK();
      }));
  return std::move(builder).Finish();
}

Status ApplyChunkStandard(const Tensor& chunk_data,
                          std::span<const uint64_t> chunk_pos,
                          std::span<const uint32_t> global_log_dims,
                          TiledStore* store, Normalization norm,
                          const ApplyOptions& options) {
  if (store == nullptr) {
    return Status::InvalidArgument("store is required");
  }
  if (options.batched) {
    StandardContext ctx;
    SS_RETURN_IF_ERROR(PrepareStandard(chunk_data, chunk_pos, global_log_dims,
                                       store->layout(), norm, options, &ctx));
    if (ctx.std_tiling != nullptr) {
      const FastStandard fast = BuildFastStandard(ctx);
      uint64_t block_count = 1;
      for (const std::vector<uint64_t>& ids : fast.dim_block_ids) {
        block_count *= ids.size();
      }
      if (block_count <= store->pool().capacity()) {
        // Direct batched apply: pin each distinct destination block once and
        // write through the pinned spans, no materialized plan.
        if (options.prefetch) {
          SS_RETURN_IF_ERROR(store->Prefetch(FastBlockSet(fast)));
        }
        if (!options.skip_zero_writes) {
          // Dense: every block of the cross product is written, so pin the
          // whole set up front and switch blocks by rank.
          SpanTableSink sink(store);
          const Status pinned = sink.Pin(fast);
          if (pinned.ok()) {
            SS_RETURN_IF_ERROR(
                FastEnumerateStandard(ctx, fast, options, sink));
            sink.Finish();
            return Status::OK();
          }
          if (pinned.code() != StatusCode::kResourceExhausted) return pinned;
          // Pool contention: fall through to the materialized plan.
        } else {
          // Sparse: pin lazily so blocks with only skipped zero writes are
          // never touched.
          GuardCacheSink sink(store);
          SS_RETURN_IF_ERROR(FastEnumerateStandard(ctx, fast, options, sink));
          sink.Finish();
          return Status::OK();
        }
      }
      // The pool cannot hold the chunk's whole block set at once: fall back
      // to a materialized plan applied one block at a time.
    }
    SS_ASSIGN_OR_RETURN(const ChunkApplyPlan plan,
                        PlanStandardFromContext(ctx, store->layout(), options));
    return ApplyChunkPlan(plan, store, options.prefetch);
  }
  StandardContext ctx;
  SS_RETURN_IF_ERROR(PrepareStandard(chunk_data, chunk_pos, global_log_dims,
                                     store->layout(), norm, options, &ctx));
  return EnumerateStandard(
      ctx, options,
      [&](bool has_at, BlockSlot at, std::span<const uint64_t> address,
          bool any_scaling_slot, double value, bool overwrite) -> Status {
        if (has_at) {
          return overwrite ? store->SetAt(at, value)
                           : store->AddAt(at, value);
        }
        // (any_scaling_slot without the standard tiling cannot occur: such
        // targets are only generated when the tiling is present.)
        if (any_scaling_slot) return Status::OK();
        return overwrite ? store->Set(address, value)
                         : store->Add(address, value);
      });
}

Status ApplyChunkNonstandard(const Tensor& chunk_data,
                             std::span<const uint64_t> chunk_pos,
                             uint32_t global_log_extent, TiledStore* store,
                             Normalization norm,
                             const ApplyOptions& options) {
  if (store == nullptr) {
    return Status::InvalidArgument("store is required");
  }
  if (options.batched) {
    SS_ASSIGN_OR_RETURN(
        const ChunkApplyPlan plan,
        PlanChunkNonstandard(chunk_data, chunk_pos, global_log_extent,
                             store->layout(), norm, options));
    return ApplyChunkPlan(plan, store, options.prefetch);
  }
  NonstandardContext ctx;
  SS_RETURN_IF_ERROR(PrepareNonstandard(chunk_data, chunk_pos,
                                        global_log_extent, store->layout(),
                                        norm, &ctx));
  return EnumerateNonstandard(
      ctx, chunk_pos, norm, options,
      [&](bool has_at, BlockSlot at, std::span<const uint64_t> address,
          double value, bool overwrite) -> Status {
        if (has_at) {
          return overwrite ? store->SetAt(at, value)
                           : store->AddAt(at, value);
        }
        return overwrite ? store->Set(address, value)
                         : store->Add(address, value);
      });
}

}  // namespace shiftsplit
