#include "shiftsplit/core/md_shift_split.h"

#include <cmath>

#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/nonstandard_transform.h"
#include "shiftsplit/wavelet/standard_transform.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

namespace {

// A per-dimension write target of the standard-form apply. The value written
// to the cross product of d targets is the expansion-weighted combination of
// chunk-transform entries; `final` distinguishes SHIFT (exact, single-writer)
// positions from SPLIT accumulation positions along this dimension.
struct DimTarget {
  uint64_t global_index = 0;  // 1-d wavelet index (regular targets)
  bool scaling_slot = false;  // redundant tile-root scaling (no 1-d index)
  BlockSlot part;             // per-dim (tile, slot) when parts are in use
  bool final = true;
  std::vector<std::pair<uint64_t, double>> expansion;  // (local idx, weight)
};

// Builds the target list for one dimension.
//   n, m, k: global log extent, chunk log extent, chunk dyadic position.
//   tiling:  per-dimension tree tiling (nullptr when the store's layout is
//            not the standard tiling — scaling slots are skipped then).
Status BuildDimTargets(uint32_t n, uint32_t m, uint64_t k,
                       Normalization norm, const TreeTiling* tiling,
                       bool maintain_scaling_slots,
                       std::vector<DimTarget>* out) {
  out->clear();
  const uint64_t chunk_size = uint64_t{1} << m;
  const double atten = ScalingAttenuation(norm);

  // SHIFT: within-chunk details, final.
  for (uint64_t local = 1; local < chunk_size; ++local) {
    DimTarget t;
    t.global_index = ShiftIndex(n, m, k, local);
    t.expansion = {{local, 1.0}};
    if (tiling != nullptr) t.part = tiling->Locate(t.global_index);
    out->push_back(std::move(t));
  }
  if (n == m) {
    // The chunk spans the whole dimension: its local scaling IS the global
    // scaling coefficient (index 0), final.
    DimTarget t;
    t.global_index = 0;
    t.expansion = {{0, 1.0}};
    if (tiling != nullptr) t.part = tiling->Locate(0);
    out->push_back(std::move(t));
  } else {
    // SPLIT: covering details at levels (m, n], then the overall average.
    double magnitude = 1.0;
    for (uint32_t j = m + 1; j <= n; ++j) {
      magnitude *= atten;
      DimTarget t;
      t.global_index = DetailIndex(n, j, k >> (j - m));
      t.final = false;
      const double sign = InLeftHalf(m, k, j) ? 1.0 : -1.0;
      t.expansion = {{0, sign * magnitude}};
      if (tiling != nullptr) t.part = tiling->Locate(t.global_index);
      out->push_back(std::move(t));
    }
    DimTarget root;
    root.global_index = 0;
    root.final = false;
    root.expansion = {{0, magnitude}};  // atten^(n-m)
    if (tiling != nullptr) root.part = tiling->Locate(0);
    out->push_back(std::move(root));
  }

  if (tiling == nullptr || !maintain_scaling_slots) return Status::OK();

  // Redundant tile-root scaling slots along this dimension.
  for (const auto& [level, pos] : tiling->ScalingSlotsWithin(m, k)) {
    if (level == n) continue;  // index 0 already targeted above
    DimTarget t;
    t.scaling_slot = true;
    SS_ASSIGN_OR_RETURN(t.part, tiling->LocateScaling(level, pos));
    t.expansion =
        ScalingExpansion(m, level, pos - (k << (m - level)), norm);
    out->push_back(std::move(t));
  }
  for (const auto& [level, pos] : tiling->ScalingSlotsAbove(m, k)) {
    if (level == n) continue;  // index 0 already targeted above
    DimTarget t;
    t.scaling_slot = true;
    t.final = false;
    SS_ASSIGN_OR_RETURN(t.part, tiling->LocateScaling(level, pos));
    t.expansion = {{0, std::pow(atten, static_cast<double>(level - m))}};
    out->push_back(std::move(t));
  }
  return Status::OK();
}

}  // namespace

Status ApplyChunkStandard(const Tensor& chunk_data,
                          std::span<const uint64_t> chunk_pos,
                          std::span<const uint32_t> global_log_dims,
                          TiledStore* store, Normalization norm,
                          const ApplyOptions& options) {
  const TensorShape& shape = chunk_data.shape();
  const uint32_t d = shape.ndim();
  if (chunk_pos.size() != d || global_log_dims.size() != d) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  std::vector<uint32_t> m(d);
  for (uint32_t i = 0; i < d; ++i) {
    m[i] = Log2(shape.dim(i));
    if (m[i] > global_log_dims[i]) {
      return Status::InvalidArgument("chunk larger than the dataset");
    }
    if (chunk_pos[i] >= (uint64_t{1} << (global_log_dims[i] - m[i]))) {
      return Status::OutOfRange("chunk position beyond the global domain");
    }
  }

  // Transform the chunk in memory.
  Tensor transformed = chunk_data;
  SS_RETURN_IF_ERROR(ForwardStandard(&transformed, norm));

  // Per-dimension target lists. Parts (per-dim tile/slot pairs) are used
  // when the store's layout is the standard cross-product tiling.
  const auto* std_tiling =
      dynamic_cast<const StandardTiling*>(&store->layout());
  std::vector<std::vector<DimTarget>> targets(d);
  for (uint32_t i = 0; i < d; ++i) {
    const TreeTiling* tiling =
        std_tiling != nullptr ? &std_tiling->dim_tiling(i) : nullptr;
    SS_RETURN_IF_ERROR(BuildDimTargets(global_log_dims[i], m[i], chunk_pos[i],
                                       norm, tiling,
                                       options.maintain_scaling_slots,
                                       &targets[i]));
  }

  const bool construct = options.mode == ApplyMode::kConstruct;
  std::vector<size_t> pick(d, 0);
  std::vector<uint64_t> address(d);
  std::vector<BlockSlot> parts(d);
  std::vector<size_t> epick(d);
  std::vector<uint64_t> local(d);
  for (;;) {
    bool is_final = true;
    bool any_scaling_slot = false;
    for (uint32_t i = 0; i < d; ++i) {
      const DimTarget& t = targets[i][pick[i]];
      is_final = is_final && t.final;
      any_scaling_slot = any_scaling_slot || t.scaling_slot;
      address[i] = t.global_index;
      parts[i] = t.part;
    }
    // Value: expansion-weighted sum of chunk-transform entries.
    double value = 0.0;
    std::fill(epick.begin(), epick.end(), 0);
    for (;;) {
      double weight = 1.0;
      for (uint32_t i = 0; i < d; ++i) {
        const auto& [local_idx, w] = targets[i][pick[i]].expansion[epick[i]];
        local[i] = local_idx;
        weight *= w;
      }
      value += weight * transformed.At(local);
      uint32_t i = d;
      bool advanced = false;
      while (i-- > 0) {
        if (++epick[i] < targets[i][pick[i]].expansion.size()) {
          advanced = true;
          break;
        }
        epick[i] = 0;
      }
      if (!advanced) break;
    }

    const bool do_set = construct && is_final;
    const bool skip = options.skip_zero_writes && value == 0.0;
    if (skip) {
      // Untouched coefficients read as zero; nothing to write.
    } else if (std_tiling != nullptr) {
      const BlockSlot at = std_tiling->Combine(parts);
      SS_RETURN_IF_ERROR(do_set ? store->SetAt(at, value)
                                : store->AddAt(at, value));
    } else if (!any_scaling_slot) {
      SS_RETURN_IF_ERROR(do_set ? store->Set(address, value)
                                : store->Add(address, value));
    }
    // (any_scaling_slot without the standard tiling cannot occur: such
    // targets are only generated when the tiling is present.)

    uint32_t i = d;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < targets[i].size()) {
        advanced = true;
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  return Status::OK();
}

Status ApplyChunkNonstandard(const Tensor& chunk_data,
                             std::span<const uint64_t> chunk_pos,
                             uint32_t global_log_extent, TiledStore* store,
                             Normalization norm,
                             const ApplyOptions& options) {
  const TensorShape& shape = chunk_data.shape();
  const uint32_t d = shape.ndim();
  const uint32_t n = global_log_extent;
  if (!shape.IsCube()) {
    return Status::InvalidArgument("non-standard chunks must be hypercubes");
  }
  if (chunk_pos.size() != d) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  const uint32_t m = Log2(shape.dim(0));
  if (m > n) {
    return Status::InvalidArgument("chunk larger than the dataset");
  }
  for (uint64_t k : chunk_pos) {
    if (k >= (uint64_t{1} << (n - m))) {
      return Status::OutOfRange("chunk position beyond the global domain");
    }
  }

  Tensor transformed = chunk_data;
  std::vector<Tensor> pyramid;
  SS_RETURN_IF_ERROR(
      ForwardNonstandardWithPyramid(&transformed, norm, &pyramid));

  const bool construct = options.mode == ApplyMode::kConstruct;
  const uint64_t corners = uint64_t{1} << d;
  const double atten_d =
      std::pow(ScalingAttenuation(norm), static_cast<double>(d));

  // SHIFT: every local detail (all addresses except the all-zero root).
  std::vector<uint64_t> local(d, 0);
  std::vector<uint64_t> address(d);
  NsCoeffId id;
  do {
    bool is_root = true;
    for (uint64_t c : local) is_root = is_root && (c == 0);
    if (is_root) continue;
    const double value = transformed.At(local);
    if (options.skip_zero_writes && value == 0.0) continue;
    id = NsCoeffOfAddress(m, local);
    for (uint32_t i = 0; i < d; ++i) {
      id.node[i] += chunk_pos[i] << (m - id.level);
    }
    address = NsAddress(n, id);
    SS_RETURN_IF_ERROR(construct ? store->Set(address, value)
                                 : store->Add(address, value));
  } while (shape.Next(local));

  // SPLIT: the chunk average up the quadtree path.
  const double u_local = transformed[0];
  const bool skip_split = options.skip_zero_writes && u_local == 0.0;
  id.is_scaling = false;
  double magnitude = u_local;
  for (uint32_t j = m + 1; skip_split ? false : j <= n; ++j) {
    magnitude *= atten_d;
    uint64_t corner = 0;
    id.level = j;
    id.node.assign(d, 0);
    for (uint32_t i = 0; i < d; ++i) {
      id.node[i] = chunk_pos[i] >> (j - m);
      corner |= ((chunk_pos[i] >> (j - m - 1)) & 1u) << i;
    }
    for (uint64_t sigma = 1; sigma < corners; ++sigma) {
      id.subband = sigma;
      address = NsAddress(n, id);
      SS_RETURN_IF_ERROR(
          store->Add(address, NsSign(sigma, corner) * magnitude));
    }
  }
  // The overall average (all-zero address). magnitude == atten_d^(n-m)*u.
  if (!skip_split) {
    std::fill(address.begin(), address.end(), 0);
    SS_RETURN_IF_ERROR(store->Add(address, magnitude));
  }

  // Redundant quadtree tile-root scaling slots.
  const auto* ns_tiling =
      dynamic_cast<const NonstandardTiling*>(&store->layout());
  if (options.maintain_scaling_slots && ns_tiling != nullptr) {
    for (const auto& [level, node] :
         ns_tiling->ScalingNodesWithin(m, chunk_pos)) {
      if (level == n) continue;  // the overall average was split above
      SS_ASSIGN_OR_RETURN(const BlockSlot at,
                          ns_tiling->LocateScaling(level, node));
      std::vector<uint64_t> local_node(d);
      for (uint32_t i = 0; i < d; ++i) {
        local_node[i] = node[i] - (chunk_pos[i] << (m - level));
      }
      const double value = pyramid[level].At(local_node);
      SS_RETURN_IF_ERROR(construct ? store->SetAt(at, value)
                                   : store->AddAt(at, value));
    }
    for (const auto& [level, node] :
         ns_tiling->ScalingNodesAbove(m, chunk_pos)) {
      if (level == n) continue;  // the overall average was split above
      SS_ASSIGN_OR_RETURN(const BlockSlot at,
                          ns_tiling->LocateScaling(level, node));
      const double delta =
          u_local * std::pow(atten_d, static_cast<double>(level - m));
      SS_RETURN_IF_ERROR(store->AddAt(at, delta));
    }
  }
  return Status::OK();
}

}  // namespace shiftsplit
