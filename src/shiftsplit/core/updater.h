// Batch updates directly in the wavelet domain (paper §4, Example 2).
//
// A dyadic-aligned batch of updates is one SHIFT-SPLIT apply in kUpdate
// mode: O(M + log(N/M)) coefficient I/O instead of O(M log N) for per-point
// maintenance. Arbitrary (non-dyadic) update boxes are decomposed into
// maximal dyadic boxes first.

#ifndef SHIFTSPLIT_CORE_UPDATER_H_
#define SHIFTSPLIT_CORE_UPDATER_H_

#include <span>

#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/tile/tiled_store.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Adds `deltas` to the dyadic box at per-dimension dyadic positions
/// `chunk_pos` of a standard-form store (the box extents are the delta
/// tensor's extents, each a power of two dividing the global extent).
Status UpdateDyadicStandard(TiledStore* store,
                            std::span<const uint32_t> log_dims,
                            const Tensor& deltas,
                            std::span<const uint64_t> chunk_pos,
                            Normalization norm,
                            bool maintain_scaling_slots = true);

/// \brief Adds `deltas` to the cubic dyadic range of a non-standard-form
/// store.
Status UpdateDyadicNonstandard(TiledStore* store, uint32_t n,
                               const Tensor& deltas,
                               std::span<const uint64_t> chunk_pos,
                               Normalization norm,
                               bool maintain_scaling_slots = true);

/// \brief Adds `deltas` — a box anchored at an arbitrary (possibly
/// unaligned) `origin` — to a standard-form store by decomposing the box
/// into maximal dyadic-aligned sub-boxes (per-dimension DyadicCover cross
/// product) and applying each sub-box as one batch update.
Status UpdateRangeStandard(TiledStore* store,
                           std::span<const uint32_t> log_dims,
                           const Tensor& deltas,
                           std::span<const uint64_t> origin,
                           Normalization norm,
                           bool maintain_scaling_slots = true);

/// \brief Non-standard counterpart: the delta box is decomposed into
/// maximal dyadic-aligned cubes (CubeCover) and each cube is applied as one
/// batch — §4.1's "arbitrary multidimensional dyadic ranges can always be
/// seen as a collection of cubic intervals".
Status UpdateRangeNonstandard(TiledStore* store, uint32_t n,
                              const Tensor& deltas,
                              std::span<const uint64_t> origin,
                              Normalization norm,
                              bool maintain_scaling_slots = true);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_UPDATER_H_
