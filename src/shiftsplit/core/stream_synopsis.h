// Buffered K-term stream synopsis maintenance (paper §5.3, Result 3).
//
// A 1-d data stream in the time-series model (values arrive in positional
// order over a domain of size N = 2^n) is summarized by its K largest
// wavelet coefficients. Gilbert et al. maintain the synopsis at O(log N)
// coefficient touches per item (see baseline/gilbert_stream.h). Buffering
// B = 2^b items and applying SHIFT-SPLIT per buffer reduces the per-item
// cost to O(1 + (1/B) log(N/B)): the B-1 buffered details are final
// immediately after the buffer transform, and only the log(N/B)-long
// wavelet crest above the buffer remains open.

#ifndef SHIFTSPLIT_CORE_STREAM_SYNOPSIS_H_
#define SHIFTSPLIT_CORE_STREAM_SYNOPSIS_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "shiftsplit/core/synopsis.h"
#include "shiftsplit/wavelet/haar.h"

namespace shiftsplit {

/// \brief Result-3 stream maintainer.
class BufferedStreamSynopsis {
 public:
  /// \param n    log2 of the stream domain size (items beyond 2^n rejected)
  /// \param k    synopsis size
  /// \param b    log2 of the buffer size (0 <= b <= n)
  /// \param norm coefficient normalization (orthonormal for best-K in L2)
  BufferedStreamSynopsis(uint32_t n, uint64_t k, uint32_t b,
                         Normalization norm = Normalization::kOrthonormal);

  /// \brief Appends the next stream item.
  Status Push(double value);

  /// \brief Finalizes all open coefficients. Items pushed so far must fill a
  /// whole number of buffers; the rest of the domain is treated as absent
  /// (coefficients over unseen data keep their current contributions).
  Status Finish();

  const TopKSynopsis& synopsis() const { return synopsis_; }
  uint64_t items() const { return items_; }

  /// \brief Coefficient touches so far: finalized detail writes plus crest
  /// updates — the per-item cost measure of Result 3.
  uint64_t coeff_touches() const { return coeff_touches_; }

  /// \brief Current open-coefficient count (crest size) — the extra memory
  /// beyond K and the buffer.
  uint64_t open_coefficients() const { return crest_.size(); }

 private:
  // Applies one full buffer as chunk `chunk_index`.
  Status ApplyBuffer(uint64_t chunk_index);

  uint32_t n_;
  uint32_t b_;
  Normalization norm_;
  TopKSynopsis synopsis_;
  std::vector<double> buffer_;
  uint64_t items_ = 0;
  uint64_t coeff_touches_ = 0;
  bool finished_ = false;
  // Open coefficients: flat index -> accumulated value.
  std::unordered_map<uint64_t, double> crest_;
};

/// \brief Result-3 maintainer over an *unbounded* domain — the paper's
/// actual streaming setting ("dimension sizes are unbounded and new data
/// are coming"): when the stream outgrows the current domain, the wavelet
/// tree gains a level entirely in the synopsis (the old root splits into
/// the new top detail and the new root), exactly like the §5.2 expansion.
///
/// Coefficient keys are stable logical (level, position) coordinates, so
/// finalized coefficients keep their identity across expansions:
///   key = (level << 40) | position, level 0 = the current root.
class UnboundedStreamSynopsis {
 public:
  /// \param k    synopsis size
  /// \param b    log2 of the buffer size
  explicit UnboundedStreamSynopsis(
      uint64_t k, uint32_t b,
      Normalization norm = Normalization::kOrthonormal);

  /// \brief Appends the next stream item; the domain grows as needed.
  Status Push(double value);

  /// \brief Finalizes all open coefficients (whole buffers only).
  Status Finish();

  const TopKSynopsis& synopsis() const { return synopsis_; }
  uint64_t items() const { return items_; }
  /// Current log2 domain capacity (grows by doubling).
  uint32_t log_n() const { return log_n_; }
  uint64_t coeff_touches() const { return coeff_touches_; }
  uint64_t open_coefficients() const { return crest_.size() + 1; }

  /// \brief Stable key of the coefficient at tree coordinate (level, pos);
  /// level 0 encodes the root scaling.
  static uint64_t EncodeKey(uint32_t level, uint64_t pos);

 private:
  Status ApplyBuffer(uint64_t chunk_index);
  void Expand();

  uint32_t b_;
  Normalization norm_;
  TopKSynopsis synopsis_;
  std::vector<double> buffer_;
  uint64_t items_ = 0;
  uint32_t log_n_;
  uint64_t coeff_touches_ = 0;
  bool finished_ = false;
  double root_ = 0.0;  // the current overall average
  // Open detail coefficients: level -> (position, value).
  struct CrestLevel {
    uint64_t pos = 0;
    double value = 0.0;
  };
  std::map<uint32_t, CrestLevel> crest_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_CORE_STREAM_SYNOPSIS_H_
