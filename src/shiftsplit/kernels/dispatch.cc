// Tier selection: build the list of tiers this CPU can run (narrowest to
// widest), pick the widest once per process, honor the scalar override.

#include <cstdlib>
#include <cstring>
#include <vector>

#include "shiftsplit/kernels/kernels.h"

namespace shiftsplit::kernels {

namespace {

// Runtime CPU feature checks for tiers whose code was compiled in. A tier
// accessor returning non-null only proves the *binary* carries the code;
// the CPU still has to advertise the ISA before we may execute it.
bool CpuHasSse42() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("sse4.2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

std::vector<const KernelOps*> BuildAvailableTiers() {
  std::vector<const KernelOps*> tiers{&Scalar()};
  if (const KernelOps* sse42 = GetSse42Kernels();
      sse42 != nullptr && CpuHasSse42()) {
    tiers.push_back(sse42);
  }
  if (const KernelOps* avx2 = GetAvx2Kernels();
      avx2 != nullptr && CpuHasAvx2()) {
    tiers.push_back(avx2);
  }
  // AdvSIMD is architecturally mandatory on AArch64: compiled == runnable.
  // (The tier resolves its own CRC entry from HWCAP_CRC32.)
  if (const KernelOps* neon = GetNeonKernels(); neon != nullptr) {
    tiers.push_back(neon);
  }
  return tiers;
}

bool ForceScalarFromEnv() {
  const char* value = std::getenv("SHIFTSPLIT_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

}  // namespace

std::span<const KernelOps* const> AvailableTiers() {
  static const std::vector<const KernelOps*> kTiers = BuildAvailableTiers();
  return {kTiers.data(), kTiers.size()};
}

const KernelOps& Choose(bool force_scalar) {
  if (force_scalar) return Scalar();
  return *AvailableTiers().back();
}

const KernelOps& Active() {
  static const KernelOps& kActive = Choose(ForceScalarFromEnv());
  return kActive;
}

}  // namespace shiftsplit::kernels
