// The scalar reference tier: portable, no ISA requirements, and the
// ground truth the vector tiers are differentially tested against.

#include <array>

#include "shiftsplit/kernels/kernels.h"
#include "shiftsplit/kernels/kernels_internal.h"

namespace shiftsplit::kernels {

namespace internal {

namespace {

// Four 256-entry tables for slicing-by-4, generated at static init time.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Crc32cSoftware(uint32_t crc, const void* data, size_t size) {
  const Tables& tb = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (size >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xFFu] ^ tb.t[2][(crc >> 8) & 0xFFu] ^
          tb.t[1][(crc >> 16) & 0xFFu] ^ tb.t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace internal

const KernelOps& Scalar() {
  static constexpr KernelOps kScalar = {
      "scalar",
      internal::HaarForwardLevelScalar,
      internal::HaarInverseLevelScalar,
      internal::FoldAddScalar,
      internal::FoldAddStridedScalar,
      internal::FoldCopyStridedScalar,
      internal::FoldChainStridedScalar,
      internal::Crc32cSoftware,
  };
  return kScalar;
}

}  // namespace shiftsplit::kernels
