// SSE4.2 tier: 2-wide double lanes (SSE2 registers) for the Haar level
// passes and the contiguous fold, plus the crc32 instruction. Compiled
// with -msse4.2 on x86-64 (see src/CMakeLists.txt); on other targets this
// TU only provides the nullptr accessor. Runtime CPU support is checked
// by dispatch.cc, not here.

#include "shiftsplit/kernels/kernels.h"
#include "shiftsplit/kernels/kernels_internal.h"

#if defined(__SSE4_2__)

#include <emmintrin.h>

namespace shiftsplit::kernels {

namespace {

void HaarForwardLevelSse(const double* in, double* avg, double* det,
                         size_t half, double scale) {
  const __m128d vscale = _mm_set1_pd(scale);
  size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    const __m128d p0 = _mm_loadu_pd(in + 2 * k);      // in[2k]   in[2k+1]
    const __m128d p1 = _mm_loadu_pd(in + 2 * k + 2);  // in[2k+2] in[2k+3]
    const __m128d a = _mm_unpacklo_pd(p0, p1);        // lefts
    const __m128d b = _mm_unpackhi_pd(p0, p1);        // rights
    _mm_storeu_pd(avg + k, _mm_mul_pd(_mm_add_pd(a, b), vscale));
    _mm_storeu_pd(det + k, _mm_mul_pd(_mm_sub_pd(a, b), vscale));
  }
  internal::HaarForwardLevelScalar(in + 2 * k, avg + k, det + k, half - k,
                                   scale);
}

void HaarInverseLevelSse(const double* avg, const double* det, double* out,
                         size_t half, double scale) {
  const __m128d vscale = _mm_set1_pd(scale);
  size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    const __m128d a = _mm_loadu_pd(avg + k);
    const __m128d d = _mm_loadu_pd(det + k);
    const __m128d l = _mm_mul_pd(_mm_add_pd(a, d), vscale);
    const __m128d r = _mm_mul_pd(_mm_sub_pd(a, d), vscale);
    _mm_storeu_pd(out + 2 * k, _mm_unpacklo_pd(l, r));
    _mm_storeu_pd(out + 2 * k + 2, _mm_unpackhi_pd(l, r));
  }
  internal::HaarInverseLevelScalar(avg + k, det + k, out + 2 * k, half - k,
                                   scale);
}

void FoldAddSse(double* dst, const double* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(dst + i,
                  _mm_add_pd(_mm_loadu_pd(dst + i), _mm_loadu_pd(src + i)));
  }
  internal::FoldAddScalar(dst + i, src + i, n - i);
}

}  // namespace

const KernelOps* GetSse42Kernels() {
  // Strided folds gain nothing below gather-capable ISAs; they stay scalar
  // in this tier (bit-exact trivially). The chain is scalar by contract.
  static constexpr KernelOps kSse42 = {
      "sse4.2",
      HaarForwardLevelSse,
      HaarInverseLevelSse,
      FoldAddSse,
      internal::FoldAddStridedScalar,
      internal::FoldCopyStridedScalar,
      internal::FoldChainStridedScalar,
      internal::Crc32cHwX86,
  };
  return &kSse42;
}

}  // namespace shiftsplit::kernels

#else  // !defined(__SSE4_2__)

namespace shiftsplit::kernels {

const KernelOps* GetSse42Kernels() { return nullptr; }

}  // namespace shiftsplit::kernels

#endif  // defined(__SSE4_2__)
