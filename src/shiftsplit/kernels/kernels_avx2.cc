// AVX2 tier: 4-wide double lanes for the Haar level passes and folds,
// 64-bit gathers for the strided (AoS) folds, and the SSE4.2 crc32
// instruction (implied by -mavx2). Compiled with -mavx2 on x86-64 (see
// src/CMakeLists.txt); elsewhere this TU only provides the nullptr
// accessor. Runtime CPU support is checked by dispatch.cc.

#include "shiftsplit/kernels/kernels.h"
#include "shiftsplit/kernels/kernels_internal.h"

#if defined(__AVX2__) && defined(__SSE4_2__)

#include <immintrin.h>

namespace shiftsplit::kernels {

namespace {

void HaarForwardLevelAvx2(const double* in, double* avg, double* det,
                          size_t half, double scale) {
  const __m256d vscale = _mm256_set1_pd(scale);
  size_t k = 0;
  for (; k + 4 <= half; k += 4) {
    const __m256d v0 = _mm256_loadu_pd(in + 2 * k);      // i0 i1 i2 i3
    const __m256d v1 = _mm256_loadu_pd(in + 2 * k + 4);  // i4 i5 i6 i7
    // Cross-lane regroup so unpack yields all lefts / all rights.
    const __m256d t0 = _mm256_permute2f128_pd(v0, v1, 0x20);  // i0 i1 i4 i5
    const __m256d t1 = _mm256_permute2f128_pd(v0, v1, 0x31);  // i2 i3 i6 i7
    const __m256d a = _mm256_unpacklo_pd(t0, t1);             // i0 i2 i4 i6
    const __m256d b = _mm256_unpackhi_pd(t0, t1);             // i1 i3 i5 i7
    _mm256_storeu_pd(avg + k, _mm256_mul_pd(_mm256_add_pd(a, b), vscale));
    _mm256_storeu_pd(det + k, _mm256_mul_pd(_mm256_sub_pd(a, b), vscale));
  }
  internal::HaarForwardLevelScalar(in + 2 * k, avg + k, det + k, half - k,
                                   scale);
}

void HaarInverseLevelAvx2(const double* avg, const double* det, double* out,
                          size_t half, double scale) {
  const __m256d vscale = _mm256_set1_pd(scale);
  size_t k = 0;
  for (; k + 4 <= half; k += 4) {
    const __m256d a = _mm256_loadu_pd(avg + k);
    const __m256d d = _mm256_loadu_pd(det + k);
    const __m256d l = _mm256_mul_pd(_mm256_add_pd(a, d), vscale);
    const __m256d r = _mm256_mul_pd(_mm256_sub_pd(a, d), vscale);
    const __m256d lo = _mm256_unpacklo_pd(l, r);  // l0 r0 l2 r2
    const __m256d hi = _mm256_unpackhi_pd(l, r);  // l1 r1 l3 r3
    _mm256_storeu_pd(out + 2 * k, _mm256_permute2f128_pd(lo, hi, 0x20));
    _mm256_storeu_pd(out + 2 * k + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
  }
  internal::HaarInverseLevelScalar(avg + k, det + k, out + 2 * k, half - k,
                                   scale);
}

void FoldAddAvx2(double* dst, const double* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                               _mm256_loadu_pd(src + i)));
  }
  internal::FoldAddScalar(dst + i, src + i, n - i);
}

// Gather indices {0, s, 2s, 3s} advanced by 4s per iteration; the gather's
// element scale is sizeof(double).
inline __m256i StrideIndices(size_t stride) {
  const auto s = static_cast<long long>(stride);
  return _mm256_set_epi64x(3 * s, 2 * s, s, 0);
}

void FoldAddStridedAvx2(double* dst, const double* src, size_t stride,
                        size_t n) {
  __m256i idx = StrideIndices(stride);
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * stride));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_i64gather_pd(src, idx, 8);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i), v));
    idx = _mm256_add_epi64(idx, step);
  }
  internal::FoldAddStridedScalar(dst + i, src + i * stride, stride, n - i);
}

void FoldCopyStridedAvx2(double* dst, const double* src, size_t stride,
                         size_t n) {
  __m256i idx = StrideIndices(stride);
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * stride));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_i64gather_pd(src, idx, 8));
    idx = _mm256_add_epi64(idx, step);
  }
  internal::FoldCopyStridedScalar(dst + i, src + i * stride, stride, n - i);
}

}  // namespace

const KernelOps* GetAvx2Kernels() {
  static constexpr KernelOps kAvx2 = {
      "avx2",
      HaarForwardLevelAvx2,
      HaarInverseLevelAvx2,
      FoldAddAvx2,
      FoldAddStridedAvx2,
      FoldCopyStridedAvx2,
      internal::FoldChainStridedScalar,  // serial chain: scalar by contract
      internal::Crc32cHwX86,
  };
  return &kAvx2;
}

}  // namespace shiftsplit::kernels

#else  // !(defined(__AVX2__) && defined(__SSE4_2__))

namespace shiftsplit::kernels {

const KernelOps* GetAvx2Kernels() { return nullptr; }

}  // namespace shiftsplit::kernels

#endif  // defined(__AVX2__) && defined(__SSE4_2__)
