// Runtime-dispatched hot-loop kernels: the 1-d Haar level passes, the
// contiguous accumulate/copy folds of the batched apply path, and CRC32C.
//
// Tiering. Every kernel has a scalar reference implementation plus, where
// the ISA helps, SSE4.2/AVX2 (x86-64) and NEON/ARMv8-CRC (aarch64)
// variants. One tier is selected at first use from CPUID/auxv feature bits
// (the widest tier the CPU supports wins) and never changes afterwards;
// setting SHIFTSPLIT_FORCE_SCALAR=1 in the environment pins the scalar
// tier regardless of the hardware — the escape hatch for benchmarking the
// fallback and for keeping both tiers green in CI.
//
// Bit-exactness contract. Every vector implementation computes each output
// element with exactly the scalar reference's operations in the scalar
// reference's order — lanes only batch *independent* elements, they never
// reassociate a dependent chain. Consequences:
//  * the Haar level passes and the fold kernels are vectorized (each
//    output element depends only on its own inputs);
//  * fold_chain — the overlay's sequence-ordered `stored + c1 + c2 + ...`
//    merge — is a serial dependency chain and therefore stays scalar in
//    every tier, by design and not as an omission: any SIMD evaluation
//    would reassociate the sum and break the serving layer's
//    merged-read-equals-applied-store guarantee;
//  * CRC32C is an exact integer function, so the hardware instruction and
//    the software table must (and do) agree on every input.
// The `kernels` ctest label holds the randomized differential suite that
// asserts tier-vs-scalar equality bit for bit.
//
// Adding an ISA tier: add a kernels_<isa>.cc translation unit compiled
// with the ISA's flags (see src/CMakeLists.txt), guard the implementation
// with the compiler's ISA macro and export Get<Isa>Kernels() returning
// nullptr when the TU was built without the ISA, then order it into the
// candidate list in dispatch.cc behind its runtime CPU feature check.
// DESIGN.md §8 documents the scheme.

#ifndef SHIFTSPLIT_KERNELS_KERNELS_H_
#define SHIFTSPLIT_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace shiftsplit::kernels {

/// \brief One dispatch tier: a named table of kernel entry points.
/// All pointers are always non-null.
struct KernelOps {
  /// Tier name for logs/benches: "scalar", "sse4.2", "avx2", "neon", ...
  const char* name;

  /// One forward Haar level over `half` input pairs:
  ///   avg[k] = (in[2k] + in[2k+1]) * scale
  ///   det[k] = (in[2k] - in[2k+1]) * scale
  /// `in` must not alias `avg`/`det`; `avg` and `det` must not overlap.
  /// scale is 0.5 (kAverage) or 1/sqrt(2) (kOrthonormal).
  void (*haar_forward_level)(const double* in, double* avg, double* det,
                             size_t half, double scale);

  /// One inverse Haar level over `half` (average, detail) pairs:
  ///   out[2k]     = (avg[k] + det[k]) * scale
  ///   out[2k + 1] = (avg[k] - det[k]) * scale
  /// `out` must not alias `avg`/`det`. scale is 1.0 (kAverage; the
  /// multiplication by 1.0 is exact) or 1/sqrt(2) (kOrthonormal).
  void (*haar_inverse_level)(const double* avg, const double* det,
                             double* out, size_t half, double scale);

  /// Contiguous accumulate: dst[i] += src[i] for i in [0, n).
  void (*fold_add)(double* dst, const double* src, size_t n);

  /// Strided-source accumulate over an AoS run: dst[i] += src[i * stride]
  /// for i in [0, n), stride counted in doubles. The batched-apply path
  /// uses it to fold a consecutive-slot run of SlotUpdates (stride 3)
  /// without materializing the values.
  void (*fold_add_strided)(double* dst, const double* src, size_t stride,
                           size_t n);

  /// Strided-source copy (the SHIFT overwrite analogue of
  /// fold_add_strided): dst[i] = src[i * stride] for i in [0, n).
  void (*fold_copy_strided)(double* dst, const double* src, size_t stride,
                            size_t n);

  /// Sequence-ordered merge chain: returns
  ///   (((init + src[0]) + src[stride]) + ...) + src[(n-1) * stride].
  /// Scalar in every tier — see the bit-exactness contract above.
  double (*fold_chain_strided)(double init, const double* src, size_t stride,
                               size_t n);

  /// CRC32C (Castagnoli), pre/post-inverted so chained calls compose.
  uint32_t (*crc32c)(uint32_t crc, const void* data, size_t size);
};

/// \brief The scalar reference tier (always available).
const KernelOps& Scalar();

/// \brief The tier selected for this process: the widest tier the CPU
/// supports, or Scalar() when SHIFTSPLIT_FORCE_SCALAR=1 is set. Selected
/// once on first call, thread-safe, stable for the process lifetime.
const KernelOps& Active();

/// \brief Every tier usable on this CPU, scalar first — the differential
/// tests and bench_kernels iterate this to cover tiers the dispatcher
/// would skip (e.g. sse4.2 on an AVX2 machine).
std::span<const KernelOps* const> AvailableTiers();

/// \brief Dispatch decision without the cached singleton: the widest
/// available tier, or Scalar() when `force_scalar`. Exposed so tests can
/// exercise both outcomes in one process (Active() caches the env lookup).
const KernelOps& Choose(bool force_scalar);

// Per-ISA tier accessors; each returns nullptr when its translation unit
// was compiled without the ISA (wrong architecture or unsupported flags).
// Runtime CPU support is the dispatcher's job, not theirs.
const KernelOps* GetSse42Kernels();
const KernelOps* GetAvx2Kernels();
const KernelOps* GetNeonKernels();

}  // namespace shiftsplit::kernels

#endif  // SHIFTSPLIT_KERNELS_KERNELS_H_
