// ARMv8 tier: NEON (AdvSIMD — architecturally mandatory on AArch64)
// 2-wide double lanes with ld2/st2 de/interleave for the Haar passes, and
// the ARMv8 CRC32 extension when the CPU reports it (HWCAP_CRC32) —
// otherwise this tier keeps the software CRC. Compiled with
// -march=armv8-a+crc on aarch64 (see src/CMakeLists.txt); elsewhere this
// TU only provides the nullptr accessor.

#include "shiftsplit/kernels/kernels.h"
#include "shiftsplit/kernels/kernels_internal.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#if defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#endif
#if defined(__linux__)
#include <sys/auxv.h>
#endif

namespace shiftsplit::kernels {

namespace {

void HaarForwardLevelNeon(const double* in, double* avg, double* det,
                          size_t half, double scale) {
  const float64x2_t vscale = vdupq_n_f64(scale);
  size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    // ld2 deinterleaves: val[0] = lefts, val[1] = rights.
    const float64x2x2_t pairs = vld2q_f64(in + 2 * k);
    const float64x2_t a = pairs.val[0];
    const float64x2_t b = pairs.val[1];
    vst1q_f64(avg + k, vmulq_f64(vaddq_f64(a, b), vscale));
    vst1q_f64(det + k, vmulq_f64(vsubq_f64(a, b), vscale));
  }
  internal::HaarForwardLevelScalar(in + 2 * k, avg + k, det + k, half - k,
                                   scale);
}

void HaarInverseLevelNeon(const double* avg, const double* det, double* out,
                          size_t half, double scale) {
  const float64x2_t vscale = vdupq_n_f64(scale);
  size_t k = 0;
  for (; k + 2 <= half; k += 2) {
    const float64x2_t a = vld1q_f64(avg + k);
    const float64x2_t d = vld1q_f64(det + k);
    float64x2x2_t pair;
    pair.val[0] = vmulq_f64(vaddq_f64(a, d), vscale);  // lefts
    pair.val[1] = vmulq_f64(vsubq_f64(a, d), vscale);  // rights
    vst2q_f64(out + 2 * k, pair);  // st2 interleaves
  }
  internal::HaarInverseLevelScalar(avg + k, det + k, out + 2 * k, half - k,
                                   scale);
}

void FoldAddNeon(double* dst, const double* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), vld1q_f64(src + i)));
  }
  internal::FoldAddScalar(dst + i, src + i, n - i);
}

#if defined(__ARM_FEATURE_CRC32)

uint32_t Crc32cHwArm(uint32_t crc, const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = ~crc;
  while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    c = __crc32cb(c, *p++);
    --size;
  }
  while (size >= 8) {
    uint64_t v;
    __builtin_memcpy(&v, p, sizeof(v));
    c = __crc32cd(c, v);
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    c = __crc32cb(c, *p++);
  }
  return ~c;
}

bool HaveArmCrc() {
#if defined(__linux__) && defined(HWCAP_CRC32)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
  return false;
#endif
}

#endif  // defined(__ARM_FEATURE_CRC32)

}  // namespace

const KernelOps* GetNeonKernels() {
  // The CRC entry is resolved once: hardware CRC32C only when both the TU
  // was built with the extension and the CPU reports it.
  static const KernelOps kNeon = {
      "neon",
      HaarForwardLevelNeon,
      HaarInverseLevelNeon,
      FoldAddNeon,
      internal::FoldAddStridedScalar,  // no gather on NEON
      internal::FoldCopyStridedScalar,
      internal::FoldChainStridedScalar,  // serial chain: scalar by contract
#if defined(__ARM_FEATURE_CRC32)
      HaveArmCrc() ? Crc32cHwArm : internal::Crc32cSoftware,
#else
      internal::Crc32cSoftware,
#endif
  };
  return &kNeon;
}

}  // namespace shiftsplit::kernels

#else  // !defined(__aarch64__)

namespace shiftsplit::kernels {

const KernelOps* GetNeonKernels() { return nullptr; }

}  // namespace shiftsplit::kernels

#endif  // defined(__aarch64__)
