// Scalar reference bodies shared across dispatch tiers. The vector tiers
// reuse these for loop tails (the < vector-width remainder) and for the
// deliberately-scalar serial chain, so "tier == scalar on every element"
// holds by construction wherever the tail runs.
//
// Internal to src/shiftsplit/kernels/ — include kernels.h everywhere else.

#ifndef SHIFTSPLIT_KERNELS_KERNELS_INTERNAL_H_
#define SHIFTSPLIT_KERNELS_KERNELS_INTERNAL_H_

#include <cstddef>
#include <cstdint>

namespace shiftsplit::kernels::internal {

inline void HaarForwardLevelScalar(const double* in, double* avg, double* det,
                                   size_t half, double scale) {
  for (size_t k = 0; k < half; ++k) {
    const double left = in[2 * k];
    const double right = in[2 * k + 1];
    avg[k] = (left + right) * scale;
    det[k] = (left - right) * scale;
  }
}

inline void HaarInverseLevelScalar(const double* avg, const double* det,
                                   double* out, size_t half, double scale) {
  for (size_t k = 0; k < half; ++k) {
    const double a = avg[k];
    const double d = det[k];
    out[2 * k] = (a + d) * scale;
    out[2 * k + 1] = (a - d) * scale;
  }
}

inline void FoldAddScalar(double* dst, const double* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

inline void FoldAddStridedScalar(double* dst, const double* src,
                                 size_t stride, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i * stride];
}

inline void FoldCopyStridedScalar(double* dst, const double* src,
                                  size_t stride, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = src[i * stride];
}

inline double FoldChainStridedScalar(double init, const double* src,
                                     size_t stride, size_t n) {
  double value = init;
  for (size_t i = 0; i < n; ++i) value += src[i * stride];
  return value;
}

/// Software slicing-by-4 CRC32C (the scalar tier and the fallback the
/// hardware tiers are verified against). Defined in kernels_scalar.cc.
uint32_t Crc32cSoftware(uint32_t crc, const void* data, size_t size);

#if defined(__SSE4_2__)
}  // namespace shiftsplit::kernels::internal

#include <nmmintrin.h>

#include <cstring>

namespace shiftsplit::kernels::internal {

/// Hardware CRC32C via the SSE4.2 crc32 instruction. Shared by every x86
/// tier TU compiled with -msse4.2 or wider; the instruction computes the
/// same reflected-Castagnoli function as Crc32cSoftware, byte for byte.
inline uint32_t Crc32cHwX86(uint32_t crc, const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t c = ~crc;  // zero-extended; the u64 step only uses the low 32 bits
  // Byte prologue up to 8-byte alignment, then the 8-bytes-per-instruction
  // main loop, then the byte tail.
  while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    c = _mm_crc32_u8(static_cast<uint32_t>(c), *p++);
    --size;
  }
  while (size >= 8) {
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    c = _mm_crc32_u64(c, v);
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    c = _mm_crc32_u8(static_cast<uint32_t>(c), *p++);
  }
  return ~static_cast<uint32_t>(c);
}
#endif  // defined(__SSE4_2__)

}  // namespace shiftsplit::kernels::internal

#endif  // SHIFTSPLIT_KERNELS_KERNELS_INTERNAL_H_
