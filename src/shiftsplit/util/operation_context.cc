#include "shiftsplit/util/operation_context.h"

#include <algorithm>
#include <thread>

namespace shiftsplit {

namespace {

// splitmix64 step — the same mixer Xoshiro256 seeds from; one 64-bit state
// word is plenty for jitter.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t BackoffDelayUs(const RetryPolicy& policy, uint32_t attempt,
                        uint64_t* jitter_state) {
  uint64_t delay = policy.initial_backoff_us;
  // Shift with saturation: attempt counts are small but unbounded in
  // principle.
  for (uint32_t i = 0; i < attempt && delay < policy.max_backoff_us; ++i) {
    delay <<= 1;
  }
  delay = std::min<uint64_t>(delay, policy.max_backoff_us);
  if (policy.jitter > 0.0 && delay > 0) {
    const double u =
        static_cast<double>(SplitMix64(jitter_state) >> 11) * 0x1.0p-53;
    delay = static_cast<uint64_t>(
        static_cast<double>(delay) * (1.0 - policy.jitter * u));
  }
  return delay;
}

bool IsTransientError(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kUnavailable;
}

Status OperationContext::Check() const {
  if (cancelled()) return Status::Cancelled("operation cancelled");
  if (deadline_exceeded()) {
    return Status::DeadlineExceeded("operation deadline exceeded");
  }
  return Status::OK();
}

bool OperationContext::BackoffBeforeRetry() {
  // The increment is refunded on every refusal below, so retries_used()
  // counts exactly the retries that were granted.
  const uint32_t used = retries_used_.fetch_add(1, std::memory_order_relaxed);
  const auto refuse = [this] {
    retries_used_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  };
  if (used >= retry_.max_retries || cancelled()) return refuse();
  uint64_t state = jitter_state_.load(std::memory_order_relaxed);
  const uint64_t delay_us = BackoffDelayUs(retry_, used, &state);
  jitter_state_.store(state, std::memory_order_relaxed);
  auto delay = std::chrono::microseconds(delay_us);
  if (has_deadline_) {
    const auto remaining = deadline_ - Clock::now();
    if (remaining <= remaining.zero()) return refuse();  // no time left
    delay = std::min(
        delay, std::chrono::duration_cast<std::chrono::microseconds>(
                   remaining));
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  if (cancelled() || deadline_exceeded()) return refuse();
  return true;
}

}  // namespace shiftsplit
