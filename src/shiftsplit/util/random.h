// Deterministic pseudo-random generation for the synthetic datasets and
// property tests: xoshiro256** core generator plus uniform, normal,
// exponential and Zipf samplers.
//
// The generators are seed-deterministic so that datasets can be streamed
// chunk-by-chunk (and re-streamed) without materializing them.

#ifndef SHIFTSPLIT_UTIL_RANDOM_H_
#define SHIFTSPLIT_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace shiftsplit {

/// \brief xoshiro256** 1.0 pseudo-random generator (Blackman & Vigna).
///
/// Satisfies the UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// \brief Seeds the state from a single 64-bit value via splitmix64.
  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  uint64_t operator()();

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform integer in [0, bound) (bound > 0).
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// \brief Standard normal variate (Box-Muller).
  double NextGaussian();

  /// \brief Exponential variate with the given mean.
  double NextExponential(double mean);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// \brief Zipf(alpha) sampler over {0, ..., n-1} via inverse-CDF on a
/// precomputed table (exact, O(log n) per sample).
class ZipfSampler {
 public:
  /// \param n      domain size (> 0)
  /// \param alpha  skew parameter (>= 0; 0 is uniform)
  ZipfSampler(uint64_t n, double alpha);

  /// \brief Draws one rank in [0, n).
  uint64_t Sample(Xoshiro256& rng) const;

 private:
  std::vector<double> cdf_;
};

/// \brief Bounded Zipf(theta) sampler over {0, ..., n-1} with O(1) state and
/// O(1) rejection-free draws — Gray's method (Gray et al., SIGMOD '94, the
/// YCSB key generator): one uniform variate is inverted through a closed-form
/// approximation of the skewed CDF whose two leading ranks are handled
/// exactly, so rank 0 is the most frequent and frequencies fall off as
/// ~1/(rank+1)^theta. Unlike ZipfSampler there is no O(n) CDF table, so a
/// load generator can draw keys from domains of billions of cells; the
/// constructor's harmonic sum is the only O(n) cost.
///
/// theta must lie in [0, 1) — the classic YCSB range (0 is uniform; the
/// tabulated ZipfSampler covers alpha >= 1).
class BoundedZipfSampler {
 public:
  /// \param n      domain size (> 0)
  /// \param theta  skew parameter in [0, 1)
  BoundedZipfSampler(uint64_t n, double theta);

  /// \brief Draws one rank in [0, n); rank 0 is the most frequent.
  uint64_t Sample(Xoshiro256& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_ = 1;
  double theta_ = 0.0;
  double alpha_ = 0.0;      // 1 / (1 - theta)
  double zetan_ = 0.0;      // generalized harmonic H_{n,theta}
  double eta_ = 0.0;
  double cut0_ = 0.0;       // P(rank == 0)
  double cut1_ = 0.0;       // P(rank <= 1)
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_UTIL_RANDOM_H_
