// Per-operation resilience envelope for the query/reconstruct path: a
// deadline, a cooperative cancellation flag, and a transient-I/O retry
// budget with capped exponential backoff and jitter.
//
// A context is created per logical operation (one query, one reconstruct,
// one batch) and threaded by pointer through TiledStore, the BufferPool and
// the BlockManager read path. A null context means "no deadline, no
// cancellation, single I/O attempt" — exactly the pre-resilience behaviour,
// so every existing call site keeps its semantics.
//
// Contexts are shared by pointer, never copied: the cancellation flag and
// the retry counters are atomics so one thread can RequestCancel() while
// another is inside the operation.

#ifndef SHIFTSPLIT_UTIL_OPERATION_CONTEXT_H_
#define SHIFTSPLIT_UTIL_OPERATION_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief Bounded retry with capped exponential backoff and jitter.
///
/// The delay before retry `attempt` (0-based) is
///   min(initial_backoff_us << attempt, max_backoff_us)
/// shrunk by a uniformly random factor in [1 - jitter, 1], so concurrent
/// retriers do not stampede in lockstep.
struct RetryPolicy {
  uint32_t max_retries = 3;          ///< retries after the first attempt
  uint32_t initial_backoff_us = 100;
  uint32_t max_backoff_us = 100'000;
  double jitter = 0.5;               ///< fraction of the delay randomized away

  /// A policy that never retries (the default for null contexts).
  static RetryPolicy None() { return RetryPolicy{0, 0, 0, 0.0}; }
};

/// \brief Jittered delay in microseconds before retry `attempt` (0-based).
/// Advances `jitter_state` (splitmix64), so repeated calls with the same
/// state pointer draw independent jitters; deterministic for a fixed seed.
uint64_t BackoffDelayUs(const RetryPolicy& policy, uint32_t attempt,
                        uint64_t* jitter_state);

/// \brief True for status codes worth retrying: transient device or
/// admission failures (IOError, Unavailable). Corruption, pin exhaustion,
/// deadline, cancellation and argument errors are not transient.
bool IsTransientError(const Status& status);

/// \brief Deadline + cancellation + retry budget for one operation.
class OperationContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline, not cancelled, default retry policy.
  OperationContext() = default;

  /// Deadline `timeout` from now.
  explicit OperationContext(std::chrono::nanoseconds timeout) {
    set_timeout(timeout);
  }

  OperationContext(const OperationContext&) = delete;
  OperationContext& operator=(const OperationContext&) = delete;

  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void set_timeout(std::chrono::nanoseconds timeout) {
    set_deadline(Clock::now() + timeout);
  }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  bool deadline_exceeded() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// \brief Requests cooperative cancellation; safe from any thread. The
  /// operation observes it at its next Check() — between block fetches.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// \brief Reseeds the jitter stream (deterministic tests).
  void set_jitter_seed(uint64_t seed) {
    jitter_state_.store(seed, std::memory_order_relaxed);
  }

  /// \brief The cheap gate called between block fetches: Cancelled if
  /// cancellation was requested, DeadlineExceeded past the deadline, OK
  /// otherwise. Cancellation wins when both hold.
  Status Check() const;

  /// \brief Called after a transient failure: consumes one unit of the
  /// retry budget and sleeps the jittered backoff (clipped to the time
  /// remaining before the deadline). Returns true when the caller should
  /// retry; false when the budget, the deadline, or cancellation ends the
  /// operation instead.
  bool BackoffBeforeRetry();

  /// Transient-failure retries consumed so far.
  uint64_t retries_used() const {
    return retries_used_.load(std::memory_order_relaxed);
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::atomic<bool> cancelled_{false};
  RetryPolicy retry_;
  std::atomic<uint32_t> retries_used_{0};
  std::atomic<uint64_t> jitter_state_{0x9e3779b97f4a7c15ull};
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_UTIL_OPERATION_CONTEXT_H_
