// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding on-disk block payloads and journal records. Routed
// through the kernel dispatch layer (src/shiftsplit/kernels/): the SSE4.2
// crc32 / ARMv8 CRC instructions when the CPU supports them, the software
// slicing-by-4 table otherwise (or under SHIFTSPLIT_FORCE_SCALAR=1). Every
// implementation computes the identical checksum, so stores written on one
// tier verify on any other.

#ifndef SHIFTSPLIT_UTIL_CRC32C_H_
#define SHIFTSPLIT_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace shiftsplit {

/// \brief Extends `crc` (a running CRC32C, 0 for a fresh computation) over
/// `size` bytes at `data`. The value is already pre/post-inverted, so chained
/// calls compose: Crc32c(Crc32c(0, a, n), b, m) == Crc32c(0, concat(a,b)).
uint32_t Crc32c(uint32_t crc, const void* data, size_t size);

/// \brief One-shot CRC32C of a byte range.
inline uint32_t Crc32c(const void* data, size_t size) {
  return Crc32c(0, data, size);
}

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_UTIL_CRC32C_H_
