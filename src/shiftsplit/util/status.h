// Status / Result<T> error handling for the shiftsplit library.
//
// The library does not throw exceptions on its hot or I/O paths; fallible
// operations return Status (or Result<T> when they produce a value), in the
// style of Apache Arrow and RocksDB.

#ifndef SHIFTSPLIT_UTIL_STATUS_H_
#define SHIFTSPLIT_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace shiftsplit {

/// \brief Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kIOError,
  kUnimplemented,
  kInternal,
  kChecksumMismatch,   ///< stored data failed its integrity check
  kUnavailable,        ///< transiently overloaded or unreachable; retry later
  kDeadlineExceeded,   ///< the operation's deadline passed before completion
  kCancelled,          ///< the operation was cancelled cooperatively
};

/// \brief Every StatusCode, in declaration order — the canonical list the
/// code→string round-trip test iterates so new codes cannot dodge it.
inline constexpr StatusCode kAllStatusCodes[] = {
    StatusCode::kOk,           StatusCode::kInvalidArgument,
    StatusCode::kOutOfRange,   StatusCode::kNotFound,
    StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
    StatusCode::kIOError,      StatusCode::kUnimplemented,
    StatusCode::kInternal,     StatusCode::kChecksumMismatch,
    StatusCode::kUnavailable,  StatusCode::kDeadlineExceeded,
    StatusCode::kCancelled,
};

/// \brief Human-readable name of a status code (e.g. "IOError").
const char* StatusCodeToString(StatusCode code);

/// \brief Inverse of StatusCodeToString; nullopt for unknown names.
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// \brief Stable on-the-wire value of a status code for the net protocol.
///
/// The enum's in-memory values are an implementation detail (codes may be
/// reordered or inserted); these explicit values are a public protocol
/// surface and must never change once shipped. New codes get new values.
uint32_t StatusCodeToWire(StatusCode code);

/// \brief Inverse of StatusCodeToWire; nullopt for values this build does
/// not know (e.g. a frame from a newer peer).
std::optional<StatusCode> StatusCodeFromWire(uint32_t wire);

/// \brief The outcome of a fallible operation: a code plus a message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (OK carries
/// no allocation; errors carry one string).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// \brief Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ChecksumMismatch(std::string msg) {
    return Status(StatusCode::kChecksumMismatch, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Accessing the value of an errored Result aborts in debug builds; callers
/// must check ok() (or use SS_ASSIGN_OR_RETURN) first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
// Concatenation helpers so SS_ASSIGN_OR_RETURN can create unique temporaries.
#define SS_CONCAT_IMPL(x, y) x##y
#define SS_CONCAT(x, y) SS_CONCAT_IMPL(x, y)
}  // namespace internal

/// Propagates a non-OK Status to the caller.
#define SS_RETURN_IF_ERROR(expr)             \
  do {                                       \
    ::shiftsplit::Status _st = (expr);       \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagating errors; otherwise assigns the
/// value to `lhs` (which may include a declaration, e.g. `auto v`).
#define SS_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  SS_ASSIGN_OR_RETURN_IMPL(SS_CONCAT(_ss_result_, __LINE__), lhs, rexpr)

#define SS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_UTIL_STATUS_H_
