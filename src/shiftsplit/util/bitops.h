// Power-of-two and dyadic-interval bit arithmetic used throughout the wavelet
// index algebra. All sizes in this library (vector lengths, chunk sizes, disk
// block capacities) are powers of two, mirroring the paper's N = 2^n,
// M = 2^m, B = 2^b convention.

#ifndef SHIFTSPLIT_UTIL_BITOPS_H_
#define SHIFTSPLIT_UTIL_BITOPS_H_

#include <bit>
#include <cstdint>

namespace shiftsplit {

/// \brief True iff `x` is a (positive) power of two.
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// \brief floor(log2(x)) for x >= 1. Log2(1) == 0.
constexpr uint32_t Log2(uint64_t x) {
  return 63u - static_cast<uint32_t>(std::countl_zero(x | 1));
}

/// \brief Exact log2 of a power of two.
constexpr uint32_t Log2Exact(uint64_t x) { return Log2(x); }

/// \brief ceil(log2(x)) for x >= 1.
constexpr uint32_t CeilLog2(uint64_t x) {
  return Log2(x) + (IsPowerOfTwo(x) ? 0u : 1u);
}

/// \brief Smallest power of two >= x (x >= 1).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  return uint64_t{1} << CeilLog2(x);
}

/// \brief ceil(a / b) for b > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// \brief Integer power base^exp (no overflow checking; exponents are small).
constexpr uint64_t IPow(uint64_t base, uint32_t exp) {
  uint64_t r = 1;
  for (uint32_t i = 0; i < exp; ++i) r *= base;
  return r;
}

/// \brief A half-open-free dyadic interval [k*2^j, (k+1)*2^j - 1] (paper
/// Definition 3): the support of Haar coefficients w_{j,k} / u_{j,k}.
struct DyadicInterval {
  uint32_t level = 0;   ///< j: log2 of the interval length.
  uint64_t index = 0;   ///< k: translation within the level.

  constexpr uint64_t length() const { return uint64_t{1} << level; }
  constexpr uint64_t begin() const { return index << level; }
  /// Inclusive upper end.
  constexpr uint64_t last() const { return begin() + length() - 1; }
  /// Exclusive upper end.
  constexpr uint64_t end() const { return begin() + length(); }

  /// \brief True iff position `pos` lies inside this interval.
  constexpr bool Contains(uint64_t pos) const {
    return (pos >> level) == index;
  }

  /// \brief True iff `other` is completely contained in this interval
  /// (paper Definition 2: this interval's coefficient "covers" the other's).
  constexpr bool Covers(const DyadicInterval& other) const {
    return other.level <= level && (other.index >> (level - other.level)) == index;
  }

  constexpr bool operator==(const DyadicInterval& other) const = default;
};

/// \brief Whether the dyadic interval (child_level, child_index) lies in the
/// *left* half of the covering interval at `parent_level` (> child_level).
///
/// This is the sign test of the SPLIT operation: a sub-range in the left half
/// contributes positively to the covering detail coefficient, in the right
/// half negatively.
constexpr bool InLeftHalf(uint32_t child_level, uint64_t child_index,
                          uint32_t parent_level) {
  // The bit of child_index that selects the half of the parent interval.
  return ((child_index >> (parent_level - child_level - 1)) & 1u) == 0;
}

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_UTIL_BITOPS_H_
