#include "shiftsplit/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace shiftsplit {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean_ << " sd=" << stddev()
     << " min=" << min_ << " max=" << max_;
  return os.str();
}

double SumSquaredError(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double sse = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sse += d * d;
  }
  return sse;
}

double RootMeanSquaredError(std::span<const double> a,
                            std::span<const double> b) {
  if (a.empty()) return 0.0;
  return std::sqrt(SumSquaredError(a, b) / static_cast<double>(a.size()));
}

double MaxAbsoluteError(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

double Energy(std::span<const double> a) {
  double e = 0.0;
  for (double x : a) e += x * x;
  return e;
}

}  // namespace shiftsplit
