// Morton (z-order) encoding for runtime dimensionality.
//
// The non-standard chunked transformation (paper §5.1, Result 2) requires the
// chunks to be visited in z-order so that the quadtree path kept in memory is
// reused maximally between consecutive chunks.

#ifndef SHIFTSPLIT_UTIL_MORTON_H_
#define SHIFTSPLIT_UTIL_MORTON_H_

#include <cstdint>
#include <vector>

#include "shiftsplit/util/bitops.h"

namespace shiftsplit {

/// \brief Interleaves the low `bits` bits of each coordinate into a single
/// Morton code. coords[0] supplies the least-significant bit of each group.
///
/// Requires d * bits <= 64.
inline uint64_t MortonEncode(const std::vector<uint64_t>& coords,
                             uint32_t bits) {
  const uint32_t d = static_cast<uint32_t>(coords.size());
  uint64_t code = 0;
  for (uint32_t bit = 0; bit < bits; ++bit) {
    for (uint32_t dim = 0; dim < d; ++dim) {
      code |= ((coords[dim] >> bit) & 1u) << (bit * d + dim);
    }
  }
  return code;
}

/// \brief Inverse of MortonEncode: extracts d coordinates of `bits` bits each.
inline std::vector<uint64_t> MortonDecode(uint64_t code, uint32_t d,
                                          uint32_t bits) {
  std::vector<uint64_t> coords(d, 0);
  for (uint32_t bit = 0; bit < bits; ++bit) {
    for (uint32_t dim = 0; dim < d; ++dim) {
      coords[dim] |= ((code >> (bit * d + dim)) & 1u) << bit;
    }
  }
  return coords;
}

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_UTIL_MORTON_H_
