#include "shiftsplit/util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace shiftsplit {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Xoshiro256::operator()() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Xoshiro256::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Xoshiro256::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = r * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return r * std::cos(2.0 * M_PI * u2);
}

double Xoshiro256::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

ZipfSampler::ZipfSampler(uint64_t n, double alpha) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t ZipfSampler::Sample(Xoshiro256& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

BoundedZipfSampler::BoundedZipfSampler(uint64_t n, double theta) {
  assert(n > 0);
  assert(theta >= 0.0 && theta < 1.0);
  n_ = n;
  theta_ = theta;
  alpha_ = 1.0 / (1.0 - theta);
  zetan_ = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  const double zeta2 = theta == 0.0 ? 2.0 : 1.0 + std::pow(0.5, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
  cut0_ = 1.0 / zetan_;
  cut1_ = (1.0 + std::pow(0.5, theta)) / zetan_;
}

uint64_t BoundedZipfSampler::Sample(Xoshiro256& rng) const {
  const double u = rng.NextDouble();
  if (u < cut0_ || n_ == 1) return 0;
  if (u < cut1_) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace shiftsplit
