#include "shiftsplit/util/crc32c.h"

#include "shiftsplit/kernels/kernels.h"

namespace shiftsplit {

uint32_t Crc32c(uint32_t crc, const void* data, size_t size) {
  // Hardware CRC32C (SSE4.2 crc32 / ARMv8 CRC) when the CPU has it; the
  // software slicing-by-4 table otherwise, or under
  // SHIFTSPLIT_FORCE_SCALAR=1. Both compute the identical function — the
  // kernels differential tests assert it on every compiled tier.
  return kernels::Active().crc32c(crc, data, size);
}

}  // namespace shiftsplit
