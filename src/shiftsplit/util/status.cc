#include "shiftsplit/util/status.h"

namespace shiftsplit {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kChecksumMismatch:
      return "ChecksumMismatch";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  for (StatusCode code : kAllStatusCodes) {
    if (name == StatusCodeToString(code)) return code;
  }
  return std::nullopt;
}

uint32_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kOutOfRange:
      return 2;
    case StatusCode::kNotFound:
      return 3;
    case StatusCode::kAlreadyExists:
      return 4;
    case StatusCode::kResourceExhausted:
      return 5;
    case StatusCode::kIOError:
      return 6;
    case StatusCode::kUnimplemented:
      return 7;
    case StatusCode::kInternal:
      return 8;
    case StatusCode::kChecksumMismatch:
      return 9;
    case StatusCode::kUnavailable:
      return 10;
    case StatusCode::kDeadlineExceeded:
      return 11;
    case StatusCode::kCancelled:
      return 12;
  }
  return 8;  // corrupt enum value: report as Internal
}

std::optional<StatusCode> StatusCodeFromWire(uint32_t wire) {
  for (StatusCode code : kAllStatusCodes) {
    if (wire == StatusCodeToWire(code)) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace shiftsplit
