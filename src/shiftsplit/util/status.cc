#include "shiftsplit/util/status.h"

namespace shiftsplit {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kChecksumMismatch:
      return "ChecksumMismatch";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  for (StatusCode code : kAllStatusCodes) {
    if (name == StatusCodeToString(code)) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace shiftsplit
