// Streaming summary statistics and approximation-error metrics, used by the
// benchmark harness (EXPERIMENTS.md tables) and by the synopsis-quality tests.

#ifndef SHIFTSPLIT_UTIL_STATS_H_
#define SHIFTSPLIT_UTIL_STATS_H_

#include <cstdint>
#include <span>
#include <string>

namespace shiftsplit {

/// \brief Single-pass running mean / variance / extrema (Welford).
class RunningStats {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// \brief "n=... mean=... sd=... min=... max=..." one-liner.
  std::string ToString() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Sum of squared errors between two equally-sized spans.
double SumSquaredError(std::span<const double> a, std::span<const double> b);

/// \brief Root-mean-square error between two equally-sized spans.
double RootMeanSquaredError(std::span<const double> a,
                            std::span<const double> b);

/// \brief Largest absolute element-wise difference.
double MaxAbsoluteError(std::span<const double> a, std::span<const double> b);

/// \brief Squared L2 norm (energy) of a span — used for Parseval checks.
double Energy(std::span<const double> a);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_UTIL_STATS_H_
