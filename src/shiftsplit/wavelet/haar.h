// One-dimensional Haar wavelet transform.
//
// Two normalizations are supported:
//  * kAverage    — the paper's convention: average (a+b)/2 and difference
//                  (a-b)/2. All SHIFT-SPLIT formulas in the paper assume it.
//  * kOrthonormal — (a+b)/sqrt(2), (a-b)/sqrt(2); preserves energy (Parseval),
//                  which is what "best K-term approximation" requires for the
//                  stream synopses.
//
// The transformed vector uses the paper's linear ordering (§2.1): index 0 is
// the overall average u_{n,0}; the detail w_{j,k} lives at index 2^(n-j) + k.

#ifndef SHIFTSPLIT_WAVELET_HAAR_H_
#define SHIFTSPLIT_WAVELET_HAAR_H_

#include <cstdint>
#include <span>

#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief Haar filter normalization convention.
enum class Normalization {
  kAverage,      ///< (a+b)/2 and (a-b)/2 — the paper's convention.
  kOrthonormal,  ///< (a+b)/sqrt(2) and (a-b)/sqrt(2) — energy preserving.
};

const char* NormalizationToString(Normalization norm);

/// \brief One smoothing filter step: the "average" of a pair.
double HaarAverage(double left, double right, Normalization norm);

/// \brief One detail filter step: the "difference" of a pair.
double HaarDetail(double left, double right, Normalization norm);

/// \brief Inverse filter: left element from (average, detail).
double HaarReconstructLeft(double average, double detail, Normalization norm);

/// \brief Inverse filter: right element from (average, detail).
double HaarReconstructRight(double average, double detail, Normalization norm);

/// \brief The multiplicative factor by which a scaling coefficient at level j
/// contributes to its covering scaling coefficient at level j+1 when the rest
/// of the covering interval is zero (the per-level attenuation used by SPLIT).
///
/// kAverage: 1/2 per level. kOrthonormal: 1/sqrt(2) per level.
double ScalingAttenuation(Normalization norm);

/// \brief The multiplicative factor per level in the *reconstruction*
/// direction: the weight of a level-j coefficient in the expansion of a
/// level-(j-1) scaling coefficient (u_{j-1} = g*(u_j +- w_j)).
///
/// kAverage: 1 (u_{j-1} = u_j +- w_j). kOrthonormal: 1/sqrt(2). The two
/// directions coincide only for the orthonormal filter.
double ReconstructionAttenuation(Normalization norm);

/// \brief In-place full 1-d Haar decomposition of `data` (size must be a
/// power of two) into the linear wavelet ordering described above.
Status ForwardHaar1D(std::span<double> data, Normalization norm);

/// \brief In-place inverse of ForwardHaar1D.
Status InverseHaar1D(std::span<double> data, Normalization norm);

/// \brief Partial decomposition: performs only `levels` filter steps, leaving
/// 2^(n-levels) scaling coefficients. With levels == n this equals
/// ForwardHaar1D. Layout: the first 2^(n-levels) entries are the remaining
/// scaling coefficients in positional order, followed by details of levels
/// `levels`, `levels-1`, ..., 1 — i.e. the natural truncation of the full
/// ordering.
Status ForwardHaar1DLevels(std::span<double> data, uint32_t levels,
                           Normalization norm);

/// \brief ForwardHaar1DLevels against caller-provided scratch space (at least
/// data.size() entries) — lets bulk callers transform many fibers without a
/// heap allocation per fiber. Identical arithmetic and results.
Status ForwardHaar1DLevels(std::span<double> data, uint32_t levels,
                           Normalization norm, std::span<double> scratch);

/// \brief Inverse of ForwardHaar1DLevels.
Status InverseHaar1DLevels(std::span<double> data, uint32_t levels,
                           Normalization norm);

/// \brief InverseHaar1DLevels against caller-provided scratch space (at
/// least data.size() entries) — the inverse counterpart of the scratch
/// ForwardHaar1DLevels overload, for bulk callers transforming many fibers.
Status InverseHaar1DLevels(std::span<double> data, uint32_t levels,
                           Normalization norm, std::span<double> scratch);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_WAVELET_HAAR_H_
