#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

WaveletCoord CoordOfIndex(uint32_t n, uint64_t index) {
  WaveletCoord c;
  if (index == 0) {
    c.is_scaling = true;
    c.level = n;
    c.pos = 0;
    return c;
  }
  const uint32_t row = Log2(index);        // n - j
  c.is_scaling = false;
  c.level = n - row;
  c.pos = index - (uint64_t{1} << row);
  return c;
}

DyadicInterval SupportOfIndex(uint32_t n, uint64_t index) {
  const WaveletCoord c = CoordOfIndex(n, index);
  return DyadicInterval{c.level, c.pos};
}

std::vector<uint64_t> PathToRoot(uint32_t n, uint64_t t) {
  std::vector<uint64_t> path;
  path.reserve(n + 1);
  path.push_back(0);
  for (uint32_t j = n; j >= 1; --j) {
    path.push_back(DetailIndex(n, j, t >> j));
  }
  return path;
}

int ReconstructionSign(uint32_t n, uint64_t index, uint64_t t) {
  if (index == 0) return 1;
  const WaveletCoord c = CoordOfIndex(n, index);
  const DyadicInterval support{c.level, c.pos};
  if (!support.Contains(t)) return 0;
  // Left half of the support -> +, right half -> -.
  return ((t >> (c.level - 1)) & 1u) == 0 ? 1 : -1;
}

Result<uint64_t> UnshiftIndex(uint32_t n, uint32_t m, uint64_t chunk_k,
                              uint64_t global_index) {
  if (global_index == 0) {
    return Status::InvalidArgument("scaling root is never shifted");
  }
  const WaveletCoord c = CoordOfIndex(n, global_index);
  if (c.level > m) {
    return Status::OutOfRange("coefficient level above the chunk");
  }
  const uint64_t first = chunk_k << (m - c.level);
  const uint64_t count = uint64_t{1} << (m - c.level);
  if (c.pos < first || c.pos >= first + count) {
    return Status::OutOfRange("coefficient support outside the chunk");
  }
  return DetailIndex(m, c.level, c.pos - first);
}

std::vector<uint64_t> SplitTargetIndices(uint32_t n, uint32_t m,
                                         uint64_t chunk_k) {
  std::vector<uint64_t> targets;
  targets.reserve(n - m + 1);
  for (uint32_t j = m + 1; j <= n; ++j) {
    targets.push_back(DetailIndex(n, j, chunk_k >> (j - m)));
  }
  targets.push_back(0);
  return targets;
}

}  // namespace shiftsplit
