// Standard-form multidimensional Haar decomposition (paper §2.1, Appendix B):
// a full 1-d decomposition applied along each dimension in turn. A
// transformed coefficient is addressed by a d-tuple of 1-d wavelet indices
// (see wavelet_index.h), stored row-major in the same tensor.

#ifndef SHIFTSPLIT_WAVELET_STANDARD_TRANSFORM_H_
#define SHIFTSPLIT_WAVELET_STANDARD_TRANSFORM_H_

#include "shiftsplit/util/status.h"
#include "shiftsplit/wavelet/haar.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief In-place standard-form decomposition of `tensor` (every extent a
/// power of two; extents need not be equal).
Status ForwardStandard(Tensor* tensor, Normalization norm);

/// \brief In-place inverse of ForwardStandard.
Status InverseStandard(Tensor* tensor, Normalization norm);

/// \brief Weight with which the 1-d coefficient at flat `index` contributes
/// to the reconstruction of data point `t` (0 when the support excludes t).
///
/// For kAverage the weight is the sign (+1/-1); for kOrthonormal it carries
/// the 2^(-j/2) basis magnitude. A standard-form d-dim coefficient
/// contributes the product of its per-dimension weights (and the
/// non-standard form the product of its per-dimension level-j weights).
double ReconstructionWeight(uint32_t n, uint64_t index, uint64_t t,
                            Normalization norm);

/// \brief Reconstructs a single data point from a standard-form transformed
/// tensor by combining the (n_i + 1)-long per-dimension root paths
/// (cross-product of Lemma 1) — O(prod_i (n_i + 1)) work.
double StandardReconstructPoint(const Tensor& transformed,
                                std::span<const uint64_t> point,
                                Normalization norm);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_WAVELET_STANDARD_TRANSFORM_H_
