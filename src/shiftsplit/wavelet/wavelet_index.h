// Index algebra of the 1-d Haar wavelet tree (paper §2).
//
// A transformed vector of size N = 2^n is addressed by a flat index:
//   index 0            -> the overall scaling coefficient u_{n,0}
//   index 2^(n-j) + k  -> the detail coefficient w_{j,k},  j in [1,n],
//                         k in [0, 2^(n-j))
//
// This file provides conversions between flat indices and (level, position)
// coordinates, tree navigation (parent/children/path-to-root), support
// intervals, and the SHIFT index translation of §4.

#ifndef SHIFTSPLIT_WAVELET_WAVELET_INDEX_H_
#define SHIFTSPLIT_WAVELET_WAVELET_INDEX_H_

#include <cstdint>
#include <vector>

#include "shiftsplit/util/bitops.h"
#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief Coordinates of a coefficient in the wavelet tree.
struct WaveletCoord {
  bool is_scaling = false;  ///< True for u_{n,0} (flat index 0).
  uint32_t level = 0;       ///< j (meaningful for details; n for the scaling).
  uint64_t pos = 0;         ///< k within the level.

  bool operator==(const WaveletCoord&) const = default;
};

/// \brief Flat index of the detail coefficient w_{j,k} in a transform of
/// size 2^n.
constexpr uint64_t DetailIndex(uint32_t n, uint32_t level, uint64_t pos) {
  return (uint64_t{1} << (n - level)) + pos;
}

/// \brief Decodes a flat index into tree coordinates.
WaveletCoord CoordOfIndex(uint32_t n, uint64_t index);

/// \brief Support interval (paper Property 1) of the coefficient at `index`:
/// the dyadic interval [k*2^j, (k+1)*2^j - 1].
DyadicInterval SupportOfIndex(uint32_t n, uint64_t index);

/// \brief Flat index of the parent of the detail at `index` in the wavelet
/// tree; the parent of w_{n,0} (index 1) is the scaling root (index 0).
/// Index 0 has no parent (returns 0).
constexpr uint64_t ParentIndex(uint64_t index) { return index >> 1; }

/// \brief Flat indices of the two children of the detail at `index`
/// (index >= 1; details at level 1 have data values as children, for which
/// this returns indices >= N — callers must check).
constexpr uint64_t LeftChildIndex(uint64_t index) { return index << 1; }
constexpr uint64_t RightChildIndex(uint64_t index) { return (index << 1) + 1; }

/// \brief Flat indices of the n+1 coefficients needed to reconstruct data
/// point `t` (Lemma 1): the scaling root plus one detail per level.
///
/// Returned root-first: {0, w_{n, t/2^n}, ..., w_{1, t/2}}.
std::vector<uint64_t> PathToRoot(uint32_t n, uint64_t t);

/// \brief The sign with which the detail coefficient at `index` contributes
/// to the reconstruction of data point `t`: +1 if t lies in the left half of
/// the coefficient's support, -1 in the right half, 0 if outside. The scaling
/// root (index 0) always contributes +1.
int ReconstructionSign(uint32_t n, uint64_t index, uint64_t t);

/// \brief SHIFT index translation (paper §4): maps the flat index of a detail
/// coefficient of the transform of the (k+1)-th dyadic sub-range of size 2^m
/// to its flat index in the transform of the whole vector of size 2^n.
///
/// For local detail w^b_{j,i} (local flat index 2^(m-j) + i) the global
/// coefficient is w^a_{j, k*2^(m-j) + i}. `local_index` must be >= 1 (the
/// local scaling coefficient is not shifted — it is SPLIT).
constexpr uint64_t ShiftIndex(uint32_t n, uint32_t m, uint64_t chunk_k,
                              uint64_t local_index) {
  // local_index = 2^(m-j) + i. The power-of-two part identifies the level.
  const uint64_t level_base = uint64_t{1} << Log2(local_index);  // 2^(m-j)
  const uint64_t i = local_index - level_base;
  // Global index = 2^(n-j) + chunk_k * 2^(m-j) + i
  //             = level_base * (2^(n-m) + chunk_k) + i.
  return level_base * ((uint64_t{1} << (n - m)) + chunk_k) + i;
}

/// \brief Inverse of ShiftIndex: given a global detail index that lies inside
/// the shifted image of chunk `chunk_k` (size 2^m of 2^n), returns the local
/// index. Returns an error if the global coefficient's support is not
/// contained in the chunk.
Result<uint64_t> UnshiftIndex(uint32_t n, uint32_t m, uint64_t chunk_k,
                              uint64_t global_index);

/// \brief The flat indices (in the transform of size 2^n) of the n-m detail
/// coefficients receiving SPLIT contributions from the (k+1)-th dyadic range
/// of size 2^m, ordered from level m+1 up to level n, followed by index 0
/// (the overall average). Total n-m+1 entries.
std::vector<uint64_t> SplitTargetIndices(uint32_t n, uint32_t m,
                                         uint64_t chunk_k);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_WAVELET_WAVELET_INDEX_H_
