// Dense in-memory multidimensional arrays with runtime dimensionality.
//
// Tensors hold chunks and small working sets; the disk-resident transformed
// data lives in TiledStore (src/tile). All dimension sizes are powers of two,
// per the paper's convention.

#ifndef SHIFTSPLIT_WAVELET_TENSOR_H_
#define SHIFTSPLIT_WAVELET_TENSOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "shiftsplit/util/status.h"

namespace shiftsplit {

/// \brief Shape of a d-dimensional array; row-major (last dimension fastest).
class TensorShape {
 public:
  TensorShape() = default;

  /// \brief Constructs a shape; every extent must be a power of two (>= 1).
  explicit TensorShape(std::vector<uint64_t> dims);

  /// \brief Validating factory (returns InvalidArgument on bad extents).
  static Result<TensorShape> Make(std::vector<uint64_t> dims);

  /// \brief Hypercube shape: d dimensions of extent `n` each.
  static TensorShape Cube(uint32_t d, uint64_t n);

  uint32_t ndim() const { return static_cast<uint32_t>(dims_.size()); }
  uint64_t dim(uint32_t i) const { return dims_[i]; }
  const std::vector<uint64_t>& dims() const { return dims_; }
  uint64_t num_elements() const { return num_elements_; }
  /// Row-major stride of dimension i.
  uint64_t stride(uint32_t i) const { return strides_[i]; }

  /// \brief log2 of each extent.
  std::vector<uint32_t> LogDims() const;

  /// \brief True iff all extents are equal.
  bool IsCube() const;

  /// \brief Flat row-major offset of the coordinate tuple.
  uint64_t FlatIndex(std::span<const uint64_t> coords) const;

  /// \brief Inverse of FlatIndex.
  std::vector<uint64_t> Coords(uint64_t flat) const;

  /// \brief Advances `coords` to the next row-major tuple; returns false when
  /// iteration wraps past the end (coords reset to all-zero).
  bool Next(std::vector<uint64_t>& coords) const;

  std::string ToString() const;

  bool operator==(const TensorShape& other) const {
    return dims_ == other.dims_;
  }

 private:
  std::vector<uint64_t> dims_;
  std::vector<uint64_t> strides_;
  uint64_t num_elements_ = 1;
};

/// \brief Dense row-major array of doubles.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorShape shape)
      : shape_(std::move(shape)), data_(shape_.num_elements(), 0.0) {}
  Tensor(TensorShape shape, std::vector<double> data);

  const TensorShape& shape() const { return shape_; }
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }
  uint64_t size() const { return data_.size(); }

  double operator[](uint64_t flat) const { return data_[flat]; }
  double& operator[](uint64_t flat) { return data_[flat]; }

  double At(std::span<const uint64_t> coords) const {
    return data_[shape_.FlatIndex(coords)];
  }
  double& At(std::span<const uint64_t> coords) {
    return data_[shape_.FlatIndex(coords)];
  }

  /// \brief Fills with a constant.
  void Fill(double value);

  /// \brief Extracts the axis-`dim` fiber through the point `base` (whose
  /// dim-th coordinate is ignored) into `out` (size = extent of `dim`).
  void GatherFiber(uint32_t dim, std::span<const uint64_t> base,
                   std::span<double> out) const;

  /// \brief Writes a fiber back; inverse of GatherFiber.
  void ScatterFiber(uint32_t dim, std::span<const uint64_t> base,
                    std::span<const double> in);

 private:
  TensorShape shape_;
  std::vector<double> data_;
};

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_WAVELET_TENSOR_H_
