// Non-standard-form multidimensional Haar decomposition (paper §2.1, §3.1,
// Appendix B): at each level every 2^d-cell block of current averages is
// decomposed into one average and 2^d - 1 detail coefficients (one per
// non-zero subband), and only the averages are decomposed further. The
// support intervals form a 2^d-ary "quadtree".
//
// Addressing. A non-standard coefficient is identified by
//   (level j in [1, n], node p in [0, 2^(n-j))^d, subband sigma in [1, 2^d)),
// plus the root scaling coefficient. It is stored in the same N^d tensor at
// the d-tuple address
//   address[t] = (sigma bit t set) ? 2^(n-j) + p[t] : p[t],
// which is a bijection between coefficients and tensor cells (the root maps
// to the all-zero tuple). This shares the per-axis banded layout of the
// standard form, so the same tuple-keyed tile stores serve both forms.
//
// The transform requires a hypercube tensor (all extents equal).

#ifndef SHIFTSPLIT_WAVELET_NONSTANDARD_TRANSFORM_H_
#define SHIFTSPLIT_WAVELET_NONSTANDARD_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "shiftsplit/util/status.h"
#include "shiftsplit/wavelet/haar.h"
#include "shiftsplit/wavelet/tensor.h"

namespace shiftsplit {

/// \brief Identity of a non-standard coefficient.
struct NsCoeffId {
  bool is_scaling = false;     ///< True only for the root average.
  uint32_t level = 0;          ///< j in [1, n] (n for the root).
  std::vector<uint64_t> node;  ///< p, per-dimension node position.
  uint64_t subband = 0;        ///< sigma in [1, 2^d); 0 for the root.

  bool operator==(const NsCoeffId&) const = default;
};

/// \brief Sign with which subband `sigma`'s coefficient combines with the
/// block corner `eps` (both d-bit masks): +1 if popcount(sigma & eps) is
/// even, -1 otherwise.
inline int NsSign(uint64_t sigma, uint64_t eps) {
  return (__builtin_popcountll(sigma & eps) & 1) ? -1 : 1;
}

/// \brief Tensor address (d-tuple) of a non-standard coefficient in a cube of
/// side 2^n.
std::vector<uint64_t> NsAddress(uint32_t n, const NsCoeffId& id);

/// \brief Inverse of NsAddress: decodes a tensor address into the coefficient
/// identity. Every address is valid (the mapping is a bijection).
NsCoeffId NsCoeffOfAddress(uint32_t n, std::span<const uint64_t> address);

/// \brief In-place non-standard decomposition of a hypercube tensor.
Status ForwardNonstandard(Tensor* tensor, Normalization norm);

/// \brief Like ForwardNonstandard, but also captures the scaling pyramid:
/// pyramid[j] is the cube of node averages (scaling coefficients) at level j
/// (side 2^(n-j)); pyramid[0] is the input data. The chunked transformation
/// uses the pyramid to fill the redundant tile-root scaling slots.
Status ForwardNonstandardWithPyramid(Tensor* tensor, Normalization norm,
                                     std::vector<Tensor>* pyramid);

/// \brief In-place inverse of ForwardNonstandard.
Status InverseNonstandard(Tensor* tensor, Normalization norm);

/// \brief Weight with which the non-standard coefficient with identity
/// (level, subband) at the node covering `point` contributes to that point's
/// reconstruction (paper Figure 7's bottom-up traversal):
/// sign(sigma, corner) for kAverage, sign * 2^(-j*d/2) for kOrthonormal.
double NsReconstructionWeight(uint32_t d, uint32_t level, uint64_t sigma,
                              uint64_t corner, Normalization norm);

/// \brief Reconstructs one data point from a non-standard-transformed cube:
/// walks the quadtree path using all 2^d - 1 coefficients per node —
/// O((2^d - 1) n + 1) coefficient touches.
double NsReconstructPoint(const Tensor& transformed,
                          std::span<const uint64_t> point, Normalization norm);

}  // namespace shiftsplit

#endif  // SHIFTSPLIT_WAVELET_NONSTANDARD_TRANSFORM_H_
