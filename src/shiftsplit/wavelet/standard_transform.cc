#include "shiftsplit/wavelet/standard_transform.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "shiftsplit/util/bitops.h"
#include "shiftsplit/wavelet/wavelet_index.h"

namespace shiftsplit {

namespace {

// Applies `op` (a 1-d in-place transform) along every fiber of `dim`.
// Innermost-dimension fibers are contiguous rows and are transformed in
// place; strided fibers are gathered into a reused buffer.
template <typename Op>
Status TransformAlongDim(Tensor* tensor, uint32_t dim, Op op) {
  const TensorShape& shape = tensor->shape();
  const uint64_t extent = shape.dim(dim);
  if (shape.stride(dim) == 1) {
    const std::span<double> data = tensor->data();
    for (uint64_t off = 0; off < data.size(); off += extent) {
      SS_RETURN_IF_ERROR(op(data.subspan(off, extent)));
    }
    return Status::OK();
  }
  std::vector<double> fiber(extent);
  std::vector<uint64_t> base(shape.ndim(), 0);
  // Iterate over all coordinates with base[dim] fixed at 0.
  for (;;) {
    tensor->GatherFiber(dim, base, fiber);
    SS_RETURN_IF_ERROR(op(std::span<double>(fiber)));
    tensor->ScatterFiber(dim, base, fiber);
    // Advance the base over all dims except `dim`.
    uint32_t i = shape.ndim();
    bool advanced = false;
    while (i-- > 0) {
      if (i == dim) continue;
      if (++base[i] < shape.dim(i)) {
        advanced = true;
        break;
      }
      base[i] = 0;
    }
    if (!advanced) break;
  }
  return Status::OK();
}

}  // namespace

Status ForwardStandard(Tensor* tensor, Normalization norm) {
  uint64_t max_extent = 0;
  for (uint32_t i = 0; i < tensor->shape().ndim(); ++i) {
    max_extent = std::max(max_extent, tensor->shape().dim(i));
  }
  std::vector<double> scratch(max_extent);
  for (uint32_t dim = 0; dim < tensor->shape().ndim(); ++dim) {
    SS_RETURN_IF_ERROR(TransformAlongDim(
        tensor, dim, [norm, &scratch](std::span<double> f) {
          return ForwardHaar1DLevels(
              f, Log2(f.size()), norm,
              std::span<double>(scratch.data(), f.size()));
        }));
  }
  return Status::OK();
}

Status InverseStandard(Tensor* tensor, Normalization norm) {
  uint64_t max_extent = 0;
  for (uint32_t i = 0; i < tensor->shape().ndim(); ++i) {
    max_extent = std::max(max_extent, tensor->shape().dim(i));
  }
  std::vector<double> scratch(max_extent);
  for (uint32_t dim = 0; dim < tensor->shape().ndim(); ++dim) {
    SS_RETURN_IF_ERROR(TransformAlongDim(
        tensor, dim, [norm, &scratch](std::span<double> f) {
          return InverseHaar1DLevels(
              f, Log2(f.size()), norm,
              std::span<double>(scratch.data(), f.size()));
        }));
  }
  return Status::OK();
}

double ReconstructionWeight(uint32_t n, uint64_t index, uint64_t t,
                            Normalization norm) {
  const int sign = ReconstructionSign(n, index, t);
  if (sign == 0) return 0.0;
  if (norm == Normalization::kAverage) return static_cast<double>(sign);
  // Orthonormal basis magnitudes: scaling phi_{n,0} has value 2^(-n/2);
  // detail psi_{j,k} has value +-2^(-j/2).
  const uint32_t level = (index == 0) ? n : CoordOfIndex(n, index).level;
  return sign * std::pow(2.0, -0.5 * static_cast<double>(level));
}

double StandardReconstructPoint(const Tensor& transformed,
                                std::span<const uint64_t> point,
                                Normalization norm) {
  const TensorShape& shape = transformed.shape();
  const uint32_t d = shape.ndim();
  // Per-dimension path indices and weights.
  std::vector<std::vector<uint64_t>> paths(d);
  std::vector<std::vector<double>> weights(d);
  for (uint32_t i = 0; i < d; ++i) {
    const uint32_t n = Log2(shape.dim(i));
    paths[i] = PathToRoot(n, point[i]);
    weights[i].reserve(paths[i].size());
    for (uint64_t idx : paths[i]) {
      weights[i].push_back(ReconstructionWeight(n, idx, point[i], norm));
    }
  }
  // Cross product of the d paths.
  std::vector<size_t> pick(d, 0);
  std::vector<uint64_t> coords(d);
  double value = 0.0;
  for (;;) {
    double w = 1.0;
    for (uint32_t i = 0; i < d; ++i) {
      coords[i] = paths[i][pick[i]];
      w *= weights[i][pick[i]];
    }
    value += w * transformed.At(coords);
    uint32_t i = d;
    bool advanced = false;
    while (i-- > 0) {
      if (++pick[i] < paths[i].size()) {
        advanced = true;
        break;
      }
      pick[i] = 0;
    }
    if (!advanced) break;
  }
  return value;
}

}  // namespace shiftsplit
