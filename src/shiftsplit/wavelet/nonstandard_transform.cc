#include "shiftsplit/wavelet/nonstandard_transform.h"

#include <cassert>
#include <cmath>

#include "shiftsplit/util/bitops.h"

namespace shiftsplit {

namespace {

Status ValidateCube(const Tensor& tensor) {
  if (!tensor.shape().IsCube()) {
    return Status::InvalidArgument(
        "non-standard transform requires a hypercube tensor");
  }
  return Status::OK();
}

// Forward per-coefficient factor applied to the 2^d-corner signed sum.
double ForwardFactor(uint32_t d, Normalization norm) {
  const double f = (norm == Normalization::kAverage) ? 0.5 : 1.0 / std::sqrt(2.0);
  return std::pow(f, static_cast<double>(d));
}

// Inverse per-corner factor applied to the 2^d-subband signed sum.
double InverseFactor(uint32_t d, Normalization norm) {
  const double g = (norm == Normalization::kAverage) ? 1.0 : 1.0 / std::sqrt(2.0);
  return std::pow(g, static_cast<double>(d));
}

}  // namespace

std::vector<uint64_t> NsAddress(uint32_t n, const NsCoeffId& id) {
  const uint32_t d = static_cast<uint32_t>(id.node.size());
  std::vector<uint64_t> address(d);
  if (id.is_scaling) {
    return address;  // all-zero tuple
  }
  assert(id.level >= 1 && id.level <= n);
  assert(id.subband >= 1 && id.subband < (uint64_t{1} << d));
  const uint64_t band_base = uint64_t{1} << (n - id.level);
  for (uint32_t t = 0; t < d; ++t) {
    assert(id.node[t] < band_base);
    address[t] = ((id.subband >> t) & 1u) ? band_base + id.node[t] : id.node[t];
  }
  return address;
}

NsCoeffId NsCoeffOfAddress(uint32_t n, std::span<const uint64_t> address) {
  const uint32_t d = static_cast<uint32_t>(address.size());
  NsCoeffId id;
  id.node.assign(d, 0);
  uint64_t max_index = 0;
  for (uint64_t a : address) max_index = std::max(max_index, a);
  if (max_index == 0) {
    id.is_scaling = true;
    id.level = n;
    return id;
  }
  const uint32_t row = Log2(max_index);  // n - j
  id.level = n - row;
  const uint64_t band_base = uint64_t{1} << row;
  for (uint32_t t = 0; t < d; ++t) {
    if (address[t] >= band_base) {
      id.subband |= uint64_t{1} << t;
      id.node[t] = address[t] - band_base;
    } else {
      id.node[t] = address[t];
    }
  }
  return id;
}

namespace {

Status ForwardNonstandardImpl(Tensor* tensor, Normalization norm,
                              std::vector<Tensor>* pyramid);

}  // namespace

Status ForwardNonstandard(Tensor* tensor, Normalization norm) {
  return ForwardNonstandardImpl(tensor, norm, nullptr);
}

Status ForwardNonstandardWithPyramid(Tensor* tensor, Normalization norm,
                                     std::vector<Tensor>* pyramid) {
  return ForwardNonstandardImpl(tensor, norm, pyramid);
}

namespace {

Status ForwardNonstandardImpl(Tensor* tensor, Normalization norm,
                              std::vector<Tensor>* pyramid) {
  SS_RETURN_IF_ERROR(ValidateCube(*tensor));
  const TensorShape& shape = tensor->shape();
  const uint32_t d = shape.ndim();
  const uint64_t extent = shape.dim(0);
  const uint32_t n = Log2(extent);
  const uint64_t corners = uint64_t{1} << d;
  const double factor = ForwardFactor(d, norm);

  if (pyramid != nullptr) {
    pyramid->assign(n + 1, Tensor());
    (*pyramid)[0] = *tensor;
  }
  std::vector<double> block(corners);
  std::vector<uint64_t> in_coords(d), out_coords(d);
  for (uint32_t level = 0; level < n; ++level) {
    const uint64_t s = extent >> level;      // current averages cube side
    const uint64_t half = s / 2;             // next level cube side
    // Snapshot the [0,s)^d subcube of current averages (reads must not see
    // this level's detail writes, whose addresses fall inside the subcube).
    TensorShape sub_shape = TensorShape::Cube(d, s);
    Tensor snapshot(sub_shape);
    {
      std::vector<uint64_t> c(d, 0);
      uint64_t flat = 0;
      do {
        snapshot[flat++] = tensor->At(c);
      } while (sub_shape.Next(c));
    }
    // Decompose each 2^d block of the snapshot.
    TensorShape node_shape = TensorShape::Cube(d, half);
    std::vector<uint64_t> p(d, 0);
    do {
      for (uint64_t eps = 0; eps < corners; ++eps) {
        for (uint32_t t = 0; t < d; ++t) {
          in_coords[t] = 2 * p[t] + ((eps >> t) & 1u);
        }
        block[eps] = snapshot.At(in_coords);
      }
      for (uint64_t sigma = 0; sigma < corners; ++sigma) {
        double acc = 0.0;
        for (uint64_t eps = 0; eps < corners; ++eps) {
          acc += NsSign(sigma, eps) * block[eps];
        }
        acc *= factor;
        for (uint32_t t = 0; t < d; ++t) {
          out_coords[t] = ((sigma >> t) & 1u) ? half + p[t] : p[t];
        }
        tensor->At(out_coords) = acc;
      }
    } while (node_shape.Next(p));
    if (pyramid != nullptr) {
      // The level+1 node averages now live in the [0, half)^d subcube.
      TensorShape avg_shape = TensorShape::Cube(d, half);
      Tensor averages(avg_shape);
      std::vector<uint64_t> c(d, 0);
      uint64_t flat = 0;
      do {
        averages[flat++] = tensor->At(c);
      } while (avg_shape.Next(c));
      (*pyramid)[level + 1] = std::move(averages);
    }
  }
  return Status::OK();
}

}  // namespace

Status InverseNonstandard(Tensor* tensor, Normalization norm) {
  SS_RETURN_IF_ERROR(ValidateCube(*tensor));
  const TensorShape& shape = tensor->shape();
  const uint32_t d = shape.ndim();
  const uint64_t extent = shape.dim(0);
  const uint32_t n = Log2(extent);
  const uint64_t corners = uint64_t{1} << d;
  const double factor = InverseFactor(d, norm);

  std::vector<double> coeffs(corners);
  std::vector<uint64_t> in_coords(d), out_coords(d);
  for (uint32_t level = n; level >= 1; --level) {
    const uint64_t half = extent >> level;   // node cube side at this level
    const uint64_t s = half * 2;             // reconstructed cube side
    TensorShape sub_shape = TensorShape::Cube(d, s);
    Tensor snapshot(sub_shape);
    {
      std::vector<uint64_t> c(d, 0);
      uint64_t flat = 0;
      do {
        snapshot[flat++] = tensor->At(c);
      } while (sub_shape.Next(c));
    }
    TensorShape node_shape = TensorShape::Cube(d, half);
    std::vector<uint64_t> p(d, 0);
    do {
      for (uint64_t sigma = 0; sigma < corners; ++sigma) {
        for (uint32_t t = 0; t < d; ++t) {
          in_coords[t] = ((sigma >> t) & 1u) ? half + p[t] : p[t];
        }
        coeffs[sigma] = snapshot.At(in_coords);
      }
      for (uint64_t eps = 0; eps < corners; ++eps) {
        double acc = 0.0;
        for (uint64_t sigma = 0; sigma < corners; ++sigma) {
          acc += NsSign(sigma, eps) * coeffs[sigma];
        }
        acc *= factor;
        for (uint32_t t = 0; t < d; ++t) {
          out_coords[t] = 2 * p[t] + ((eps >> t) & 1u);
        }
        tensor->At(out_coords) = acc;
      }
    } while (node_shape.Next(p));
  }
  return Status::OK();
}

double NsReconstructionWeight(uint32_t d, uint32_t level, uint64_t sigma,
                              uint64_t corner, Normalization norm) {
  const int sign = NsSign(sigma, corner);
  if (norm == Normalization::kAverage) return static_cast<double>(sign);
  return sign *
         std::pow(2.0, -0.5 * static_cast<double>(d) * static_cast<double>(level));
}

double NsReconstructPoint(const Tensor& transformed,
                          std::span<const uint64_t> point,
                          Normalization norm) {
  const TensorShape& shape = transformed.shape();
  const uint32_t d = shape.ndim();
  const uint64_t extent = shape.dim(0);
  const uint32_t n = Log2(extent);
  const uint64_t corners = uint64_t{1} << d;

  NsCoeffId id;
  id.node.assign(d, 0);
  // Root average.
  double value =
      transformed[0] * (norm == Normalization::kAverage
                            ? 1.0
                            : std::pow(2.0, -0.5 * static_cast<double>(d) *
                                                static_cast<double>(n)));
  std::vector<uint64_t> address(d);
  for (uint32_t level = n; level >= 1; --level) {
    uint64_t corner = 0;
    id.level = level;
    for (uint32_t t = 0; t < d; ++t) {
      id.node[t] = point[t] >> level;
      corner |= ((point[t] >> (level - 1)) & 1u) << t;
    }
    for (uint64_t sigma = 1; sigma < corners; ++sigma) {
      id.subband = sigma;
      address = NsAddress(n, id);
      value += NsReconstructionWeight(d, level, sigma, corner, norm) *
               transformed.At(address);
    }
  }
  return value;
}

}  // namespace shiftsplit
