#include "shiftsplit/wavelet/haar.h"

#include <cmath>
#include <vector>

#include "shiftsplit/util/bitops.h"

namespace shiftsplit {

namespace {
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
const double kSqrt2 = std::sqrt(2.0);
}  // namespace

const char* NormalizationToString(Normalization norm) {
  switch (norm) {
    case Normalization::kAverage:
      return "average";
    case Normalization::kOrthonormal:
      return "orthonormal";
  }
  return "unknown";
}

double HaarAverage(double left, double right, Normalization norm) {
  if (norm == Normalization::kAverage) return (left + right) * 0.5;
  return (left + right) * kInvSqrt2;
}

double HaarDetail(double left, double right, Normalization norm) {
  if (norm == Normalization::kAverage) return (left - right) * 0.5;
  return (left - right) * kInvSqrt2;
}

double HaarReconstructLeft(double average, double detail, Normalization norm) {
  if (norm == Normalization::kAverage) return average + detail;
  return (average + detail) * kInvSqrt2;
}

double HaarReconstructRight(double average, double detail,
                            Normalization norm) {
  if (norm == Normalization::kAverage) return average - detail;
  return (average - detail) * kInvSqrt2;
}

double ScalingAttenuation(Normalization norm) {
  return norm == Normalization::kAverage ? 0.5 : kInvSqrt2;
}

double ReconstructionAttenuation(Normalization norm) {
  return norm == Normalization::kAverage ? 1.0 : kInvSqrt2;
}

namespace {

Status ValidateSize(size_t size) {
  if (size == 0 || !IsPowerOfTwo(size)) {
    return Status::InvalidArgument("Haar transform size must be a power of 2");
  }
  return Status::OK();
}

}  // namespace

Status ForwardHaar1DLevels(std::span<double> data, uint32_t levels,
                           Normalization norm) {
  std::vector<double> scratch(data.size());
  return ForwardHaar1DLevels(data, levels, norm, scratch);
}

Status ForwardHaar1DLevels(std::span<double> data, uint32_t levels,
                           Normalization norm, std::span<double> scratch) {
  SS_RETURN_IF_ERROR(ValidateSize(data.size()));
  const uint32_t n = Log2(data.size());
  if (levels > n) {
    return Status::InvalidArgument("more decomposition levels than log2(N)");
  }
  if (scratch.size() < data.size()) {
    return Status::InvalidArgument("scratch smaller than the data");
  }
  if (levels == 0) return Status::OK();
  size_t s = data.size();
  for (uint32_t level = 0; level < levels; ++level) {
    const size_t half = s / 2;
    for (size_t k = 0; k < half; ++k) {
      const double left = data[2 * k];
      const double right = data[2 * k + 1];
      scratch[k] = HaarAverage(left, right, norm);
      scratch[half + k] = HaarDetail(left, right, norm);
    }
    std::copy(scratch.begin(), scratch.begin() + s, data.begin());
    s = half;
  }
  return Status::OK();
}

Status InverseHaar1DLevels(std::span<double> data, uint32_t levels,
                           Normalization norm) {
  SS_RETURN_IF_ERROR(ValidateSize(data.size()));
  const uint32_t n = Log2(data.size());
  if (levels > n) {
    return Status::InvalidArgument("more decomposition levels than log2(N)");
  }
  if (levels == 0) return Status::OK();
  std::vector<double> scratch(data.size());
  size_t s = data.size() >> (levels - 1);
  for (uint32_t level = 0; level < levels; ++level) {
    const size_t half = s / 2;
    for (size_t k = 0; k < half; ++k) {
      const double average = data[k];
      const double detail = data[half + k];
      scratch[2 * k] = HaarReconstructLeft(average, detail, norm);
      scratch[2 * k + 1] = HaarReconstructRight(average, detail, norm);
    }
    std::copy(scratch.begin(), scratch.begin() + s, data.begin());
    s *= 2;
  }
  return Status::OK();
}

Status ForwardHaar1D(std::span<double> data, Normalization norm) {
  SS_RETURN_IF_ERROR(ValidateSize(data.size()));
  return ForwardHaar1DLevels(data, Log2(data.size()), norm);
}

Status InverseHaar1D(std::span<double> data, Normalization norm) {
  SS_RETURN_IF_ERROR(ValidateSize(data.size()));
  return InverseHaar1DLevels(data, Log2(data.size()), norm);
}

}  // namespace shiftsplit
