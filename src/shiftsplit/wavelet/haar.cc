#include "shiftsplit/wavelet/haar.h"

#include <cmath>
#include <vector>

#include "shiftsplit/kernels/kernels.h"
#include "shiftsplit/util/bitops.h"

namespace shiftsplit {

namespace {
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
const double kSqrt2 = std::sqrt(2.0);

// Per-pair multipliers of the level passes, chosen so the kernel's
// (a ± b) * scale matches the Haar{Average,Detail} / HaarReconstruct{Left,
// Right} arithmetic bit for bit (for kAverage the inverse scale is 1.0 and
// the multiplication is exact).
double ForwardScale(Normalization norm) {
  return norm == Normalization::kAverage ? 0.5 : kInvSqrt2;
}

double InverseScale(Normalization norm) {
  return norm == Normalization::kAverage ? 1.0 : kInvSqrt2;
}
}  // namespace

const char* NormalizationToString(Normalization norm) {
  switch (norm) {
    case Normalization::kAverage:
      return "average";
    case Normalization::kOrthonormal:
      return "orthonormal";
  }
  return "unknown";
}

double HaarAverage(double left, double right, Normalization norm) {
  if (norm == Normalization::kAverage) return (left + right) * 0.5;
  return (left + right) * kInvSqrt2;
}

double HaarDetail(double left, double right, Normalization norm) {
  if (norm == Normalization::kAverage) return (left - right) * 0.5;
  return (left - right) * kInvSqrt2;
}

double HaarReconstructLeft(double average, double detail, Normalization norm) {
  if (norm == Normalization::kAverage) return average + detail;
  return (average + detail) * kInvSqrt2;
}

double HaarReconstructRight(double average, double detail,
                            Normalization norm) {
  if (norm == Normalization::kAverage) return average - detail;
  return (average - detail) * kInvSqrt2;
}

double ScalingAttenuation(Normalization norm) {
  return norm == Normalization::kAverage ? 0.5 : kInvSqrt2;
}

double ReconstructionAttenuation(Normalization norm) {
  return norm == Normalization::kAverage ? 1.0 : kInvSqrt2;
}

namespace {

Status ValidateSize(size_t size) {
  if (size == 0 || !IsPowerOfTwo(size)) {
    return Status::InvalidArgument("Haar transform size must be a power of 2");
  }
  return Status::OK();
}

}  // namespace

Status ForwardHaar1DLevels(std::span<double> data, uint32_t levels,
                           Normalization norm) {
  std::vector<double> scratch(data.size());
  return ForwardHaar1DLevels(data, levels, norm, scratch);
}

Status ForwardHaar1DLevels(std::span<double> data, uint32_t levels,
                           Normalization norm, std::span<double> scratch) {
  SS_RETURN_IF_ERROR(ValidateSize(data.size()));
  const uint32_t n = Log2(data.size());
  if (levels > n) {
    return Status::InvalidArgument("more decomposition levels than log2(N)");
  }
  if (scratch.size() < data.size()) {
    return Status::InvalidArgument("scratch smaller than the data");
  }
  if (levels == 0) return Status::OK();
  const kernels::KernelOps& kernel = kernels::Active();
  const double scale = ForwardScale(norm);
  size_t s = data.size();
  for (uint32_t level = 0; level < levels; ++level) {
    const size_t half = s / 2;
    kernel.haar_forward_level(data.data(), scratch.data(),
                              scratch.data() + half, half, scale);
    std::copy(scratch.begin(), scratch.begin() + s, data.begin());
    s = half;
  }
  return Status::OK();
}

Status InverseHaar1DLevels(std::span<double> data, uint32_t levels,
                           Normalization norm) {
  std::vector<double> scratch(data.size());
  return InverseHaar1DLevels(data, levels, norm, scratch);
}

Status InverseHaar1DLevels(std::span<double> data, uint32_t levels,
                           Normalization norm, std::span<double> scratch) {
  SS_RETURN_IF_ERROR(ValidateSize(data.size()));
  const uint32_t n = Log2(data.size());
  if (levels > n) {
    return Status::InvalidArgument("more decomposition levels than log2(N)");
  }
  if (scratch.size() < data.size()) {
    return Status::InvalidArgument("scratch smaller than the data");
  }
  if (levels == 0) return Status::OK();
  const kernels::KernelOps& kernel = kernels::Active();
  const double scale = InverseScale(norm);
  size_t s = data.size() >> (levels - 1);
  for (uint32_t level = 0; level < levels; ++level) {
    const size_t half = s / 2;
    kernel.haar_inverse_level(data.data(), data.data() + half, scratch.data(),
                              half, scale);
    std::copy(scratch.begin(), scratch.begin() + s, data.begin());
    s *= 2;
  }
  return Status::OK();
}

Status ForwardHaar1D(std::span<double> data, Normalization norm) {
  SS_RETURN_IF_ERROR(ValidateSize(data.size()));
  return ForwardHaar1DLevels(data, Log2(data.size()), norm);
}

Status InverseHaar1D(std::span<double> data, Normalization norm) {
  SS_RETURN_IF_ERROR(ValidateSize(data.size()));
  return InverseHaar1DLevels(data, Log2(data.size()), norm);
}

}  // namespace shiftsplit
