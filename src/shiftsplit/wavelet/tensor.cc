#include "shiftsplit/wavelet/tensor.h"

#include <cassert>
#include <sstream>

#include "shiftsplit/util/bitops.h"

namespace shiftsplit {

TensorShape::TensorShape(std::vector<uint64_t> dims) : dims_(std::move(dims)) {
  strides_.resize(dims_.size());
  num_elements_ = 1;
  for (size_t i = dims_.size(); i-- > 0;) {
    assert(IsPowerOfTwo(dims_[i]) && "tensor extents must be powers of two");
    strides_[i] = num_elements_;
    num_elements_ *= dims_[i];
  }
}

Result<TensorShape> TensorShape::Make(std::vector<uint64_t> dims) {
  if (dims.empty()) {
    return Status::InvalidArgument("shape must have at least one dimension");
  }
  for (uint64_t d : dims) {
    if (!IsPowerOfTwo(d)) {
      return Status::InvalidArgument("tensor extents must be powers of two");
    }
  }
  return TensorShape(std::move(dims));
}

TensorShape TensorShape::Cube(uint32_t d, uint64_t n) {
  return TensorShape(std::vector<uint64_t>(d, n));
}

std::vector<uint32_t> TensorShape::LogDims() const {
  std::vector<uint32_t> logs(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) logs[i] = Log2(dims_[i]);
  return logs;
}

bool TensorShape::IsCube() const {
  for (uint64_t d : dims_) {
    if (d != dims_[0]) return false;
  }
  return true;
}

uint64_t TensorShape::FlatIndex(std::span<const uint64_t> coords) const {
  assert(coords.size() == dims_.size());
  uint64_t flat = 0;
  for (size_t i = 0; i < dims_.size(); ++i) {
    assert(coords[i] < dims_[i]);
    flat += coords[i] * strides_[i];
  }
  return flat;
}

std::vector<uint64_t> TensorShape::Coords(uint64_t flat) const {
  std::vector<uint64_t> coords(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    coords[i] = (flat / strides_[i]) % dims_[i];
  }
  return coords;
}

bool TensorShape::Next(std::vector<uint64_t>& coords) const {
  assert(coords.size() == dims_.size());
  for (size_t i = dims_.size(); i-- > 0;) {
    if (++coords[i] < dims_[i]) return true;
    coords[i] = 0;
  }
  return false;
}

std::string TensorShape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << "x";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(TensorShape shape, std::vector<double> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  assert(data_.size() == shape_.num_elements());
}

void Tensor::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::GatherFiber(uint32_t dim, std::span<const uint64_t> base,
                         std::span<double> out) const {
  assert(out.size() == shape_.dim(dim));
  uint64_t offset = 0;
  for (uint32_t i = 0; i < shape_.ndim(); ++i) {
    if (i != dim) offset += base[i] * shape_.stride(i);
  }
  const uint64_t stride = shape_.stride(dim);
  for (uint64_t k = 0; k < shape_.dim(dim); ++k) {
    out[k] = data_[offset + k * stride];
  }
}

void Tensor::ScatterFiber(uint32_t dim, std::span<const uint64_t> base,
                          std::span<const double> in) {
  assert(in.size() == shape_.dim(dim));
  uint64_t offset = 0;
  for (uint32_t i = 0; i < shape_.ndim(); ++i) {
    if (i != dim) offset += base[i] * shape_.stride(i);
  }
  const uint64_t stride = shape_.stride(dim);
  for (uint64_t k = 0; k < shape_.dim(dim); ++k) {
    data_[offset + k * stride] = in[k];
  }
}

}  // namespace shiftsplit
