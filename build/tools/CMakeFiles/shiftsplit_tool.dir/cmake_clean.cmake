file(REMOVE_RECURSE
  "CMakeFiles/shiftsplit_tool.dir/shiftsplit_tool.cc.o"
  "CMakeFiles/shiftsplit_tool.dir/shiftsplit_tool.cc.o.d"
  "shiftsplit_tool"
  "shiftsplit_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shiftsplit_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
