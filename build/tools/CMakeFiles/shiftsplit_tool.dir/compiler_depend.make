# Empty compiler generated dependencies file for shiftsplit_tool.
# This may be replaced when dependencies are built.
