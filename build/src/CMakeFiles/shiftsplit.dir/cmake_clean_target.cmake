file(REMOVE_RECURSE
  "libshiftsplit.a"
)
