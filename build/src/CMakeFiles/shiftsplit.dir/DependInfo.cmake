
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shiftsplit/baseline/gilbert_stream.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/baseline/gilbert_stream.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/baseline/gilbert_stream.cc.o.d"
  "/root/repo/src/shiftsplit/baseline/naive_reconstruct.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/baseline/naive_reconstruct.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/baseline/naive_reconstruct.cc.o.d"
  "/root/repo/src/shiftsplit/baseline/naive_update.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/baseline/naive_update.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/baseline/naive_update.cc.o.d"
  "/root/repo/src/shiftsplit/baseline/vitter_transform.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/baseline/vitter_transform.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/baseline/vitter_transform.cc.o.d"
  "/root/repo/src/shiftsplit/core/aggregate.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/aggregate.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/aggregate.cc.o.d"
  "/root/repo/src/shiftsplit/core/appender.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/appender.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/appender.cc.o.d"
  "/root/repo/src/shiftsplit/core/approx.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/approx.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/approx.cc.o.d"
  "/root/repo/src/shiftsplit/core/chunked_transform.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/chunked_transform.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/chunked_transform.cc.o.d"
  "/root/repo/src/shiftsplit/core/md_shift_split.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/md_shift_split.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/md_shift_split.cc.o.d"
  "/root/repo/src/shiftsplit/core/md_stream_synopsis.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/md_stream_synopsis.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/md_stream_synopsis.cc.o.d"
  "/root/repo/src/shiftsplit/core/query.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/query.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/query.cc.o.d"
  "/root/repo/src/shiftsplit/core/reconstruct.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/reconstruct.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/reconstruct.cc.o.d"
  "/root/repo/src/shiftsplit/core/shift_split.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/shift_split.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/shift_split.cc.o.d"
  "/root/repo/src/shiftsplit/core/stream_synopsis.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/stream_synopsis.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/stream_synopsis.cc.o.d"
  "/root/repo/src/shiftsplit/core/synopsis.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/synopsis.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/synopsis.cc.o.d"
  "/root/repo/src/shiftsplit/core/updater.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/updater.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/updater.cc.o.d"
  "/root/repo/src/shiftsplit/core/wavelet_cube.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/wavelet_cube.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/core/wavelet_cube.cc.o.d"
  "/root/repo/src/shiftsplit/data/dataset.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/data/dataset.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/data/dataset.cc.o.d"
  "/root/repo/src/shiftsplit/data/precipitation.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/data/precipitation.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/data/precipitation.cc.o.d"
  "/root/repo/src/shiftsplit/data/synthetic.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/data/synthetic.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/data/synthetic.cc.o.d"
  "/root/repo/src/shiftsplit/data/temperature.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/data/temperature.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/data/temperature.cc.o.d"
  "/root/repo/src/shiftsplit/storage/buffer_pool.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/storage/buffer_pool.cc.o.d"
  "/root/repo/src/shiftsplit/storage/file_block_manager.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/storage/file_block_manager.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/storage/file_block_manager.cc.o.d"
  "/root/repo/src/shiftsplit/storage/manifest.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/storage/manifest.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/storage/manifest.cc.o.d"
  "/root/repo/src/shiftsplit/storage/memory_block_manager.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/storage/memory_block_manager.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/storage/memory_block_manager.cc.o.d"
  "/root/repo/src/shiftsplit/tile/naive_tiling.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/tile/naive_tiling.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/tile/naive_tiling.cc.o.d"
  "/root/repo/src/shiftsplit/tile/nonstandard_tiling.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/tile/nonstandard_tiling.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/tile/nonstandard_tiling.cc.o.d"
  "/root/repo/src/shiftsplit/tile/standard_tiling.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/tile/standard_tiling.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/tile/standard_tiling.cc.o.d"
  "/root/repo/src/shiftsplit/tile/tiled_store.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/tile/tiled_store.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/tile/tiled_store.cc.o.d"
  "/root/repo/src/shiftsplit/tile/tree_tiling.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/tile/tree_tiling.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/tile/tree_tiling.cc.o.d"
  "/root/repo/src/shiftsplit/util/random.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/util/random.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/util/random.cc.o.d"
  "/root/repo/src/shiftsplit/util/stats.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/util/stats.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/util/stats.cc.o.d"
  "/root/repo/src/shiftsplit/util/status.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/util/status.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/util/status.cc.o.d"
  "/root/repo/src/shiftsplit/wavelet/haar.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/wavelet/haar.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/wavelet/haar.cc.o.d"
  "/root/repo/src/shiftsplit/wavelet/nonstandard_transform.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/wavelet/nonstandard_transform.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/wavelet/nonstandard_transform.cc.o.d"
  "/root/repo/src/shiftsplit/wavelet/standard_transform.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/wavelet/standard_transform.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/wavelet/standard_transform.cc.o.d"
  "/root/repo/src/shiftsplit/wavelet/tensor.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/wavelet/tensor.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/wavelet/tensor.cc.o.d"
  "/root/repo/src/shiftsplit/wavelet/wavelet_index.cc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/wavelet/wavelet_index.cc.o" "gcc" "src/CMakeFiles/shiftsplit.dir/shiftsplit/wavelet/wavelet_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
