# Empty compiler generated dependencies file for shiftsplit.
# This may be replaced when dependencies are built.
