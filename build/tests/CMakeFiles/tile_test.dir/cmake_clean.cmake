file(REMOVE_RECURSE
  "CMakeFiles/tile_test.dir/tile/nonstandard_tiling_test.cc.o"
  "CMakeFiles/tile_test.dir/tile/nonstandard_tiling_test.cc.o.d"
  "CMakeFiles/tile_test.dir/tile/standard_tiling_test.cc.o"
  "CMakeFiles/tile_test.dir/tile/standard_tiling_test.cc.o.d"
  "CMakeFiles/tile_test.dir/tile/tiled_store_test.cc.o"
  "CMakeFiles/tile_test.dir/tile/tiled_store_test.cc.o.d"
  "CMakeFiles/tile_test.dir/tile/tiling_property_test.cc.o"
  "CMakeFiles/tile_test.dir/tile/tiling_property_test.cc.o.d"
  "CMakeFiles/tile_test.dir/tile/tree_tiling_test.cc.o"
  "CMakeFiles/tile_test.dir/tile/tree_tiling_test.cc.o.d"
  "tile_test"
  "tile_test.pdb"
  "tile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
