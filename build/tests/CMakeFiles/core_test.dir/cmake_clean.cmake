file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/aggregate_test.cc.o"
  "CMakeFiles/core_test.dir/core/aggregate_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/appender_test.cc.o"
  "CMakeFiles/core_test.dir/core/appender_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/approx_test.cc.o"
  "CMakeFiles/core_test.dir/core/approx_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/chunked_transform_test.cc.o"
  "CMakeFiles/core_test.dir/core/chunked_transform_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/md_shift_split_test.cc.o"
  "CMakeFiles/core_test.dir/core/md_shift_split_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/md_stream_synopsis_test.cc.o"
  "CMakeFiles/core_test.dir/core/md_stream_synopsis_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/progressive_test.cc.o"
  "CMakeFiles/core_test.dir/core/progressive_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/query_test.cc.o"
  "CMakeFiles/core_test.dir/core/query_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/reconstruct_test.cc.o"
  "CMakeFiles/core_test.dir/core/reconstruct_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/shift_split_test.cc.o"
  "CMakeFiles/core_test.dir/core/shift_split_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/stream_synopsis_test.cc.o"
  "CMakeFiles/core_test.dir/core/stream_synopsis_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/synopsis_test.cc.o"
  "CMakeFiles/core_test.dir/core/synopsis_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/updater_test.cc.o"
  "CMakeFiles/core_test.dir/core/updater_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/wavelet_cube_test.cc.o"
  "CMakeFiles/core_test.dir/core/wavelet_cube_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
