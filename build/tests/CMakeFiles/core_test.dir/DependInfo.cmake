
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/aggregate_test.cc" "tests/CMakeFiles/core_test.dir/core/aggregate_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/aggregate_test.cc.o.d"
  "/root/repo/tests/core/appender_test.cc" "tests/CMakeFiles/core_test.dir/core/appender_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/appender_test.cc.o.d"
  "/root/repo/tests/core/approx_test.cc" "tests/CMakeFiles/core_test.dir/core/approx_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/approx_test.cc.o.d"
  "/root/repo/tests/core/chunked_transform_test.cc" "tests/CMakeFiles/core_test.dir/core/chunked_transform_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/chunked_transform_test.cc.o.d"
  "/root/repo/tests/core/md_shift_split_test.cc" "tests/CMakeFiles/core_test.dir/core/md_shift_split_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/md_shift_split_test.cc.o.d"
  "/root/repo/tests/core/md_stream_synopsis_test.cc" "tests/CMakeFiles/core_test.dir/core/md_stream_synopsis_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/md_stream_synopsis_test.cc.o.d"
  "/root/repo/tests/core/progressive_test.cc" "tests/CMakeFiles/core_test.dir/core/progressive_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/progressive_test.cc.o.d"
  "/root/repo/tests/core/query_test.cc" "tests/CMakeFiles/core_test.dir/core/query_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/query_test.cc.o.d"
  "/root/repo/tests/core/reconstruct_test.cc" "tests/CMakeFiles/core_test.dir/core/reconstruct_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/reconstruct_test.cc.o.d"
  "/root/repo/tests/core/shift_split_test.cc" "tests/CMakeFiles/core_test.dir/core/shift_split_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/shift_split_test.cc.o.d"
  "/root/repo/tests/core/stream_synopsis_test.cc" "tests/CMakeFiles/core_test.dir/core/stream_synopsis_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/stream_synopsis_test.cc.o.d"
  "/root/repo/tests/core/synopsis_test.cc" "tests/CMakeFiles/core_test.dir/core/synopsis_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/synopsis_test.cc.o.d"
  "/root/repo/tests/core/updater_test.cc" "tests/CMakeFiles/core_test.dir/core/updater_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/updater_test.cc.o.d"
  "/root/repo/tests/core/wavelet_cube_test.cc" "tests/CMakeFiles/core_test.dir/core/wavelet_cube_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/wavelet_cube_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shiftsplit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
