file(REMOVE_RECURSE
  "CMakeFiles/wavelet_test.dir/wavelet/haar_test.cc.o"
  "CMakeFiles/wavelet_test.dir/wavelet/haar_test.cc.o.d"
  "CMakeFiles/wavelet_test.dir/wavelet/nonstandard_transform_test.cc.o"
  "CMakeFiles/wavelet_test.dir/wavelet/nonstandard_transform_test.cc.o.d"
  "CMakeFiles/wavelet_test.dir/wavelet/standard_transform_test.cc.o"
  "CMakeFiles/wavelet_test.dir/wavelet/standard_transform_test.cc.o.d"
  "CMakeFiles/wavelet_test.dir/wavelet/tensor_test.cc.o"
  "CMakeFiles/wavelet_test.dir/wavelet/tensor_test.cc.o.d"
  "CMakeFiles/wavelet_test.dir/wavelet/wavelet_index_test.cc.o"
  "CMakeFiles/wavelet_test.dir/wavelet/wavelet_index_test.cc.o.d"
  "wavelet_test"
  "wavelet_test.pdb"
  "wavelet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavelet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
