# Empty dependencies file for bench_synopsis.
# This may be replaced when dependencies are built.
