file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_tiles.dir/bench_table1_tiles.cpp.o"
  "CMakeFiles/bench_table1_tiles.dir/bench_table1_tiles.cpp.o.d"
  "bench_table1_tiles"
  "bench_table1_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
