# Empty compiler generated dependencies file for bench_table1_tiles.
# This may be replaced when dependencies are built.
