# Empty compiler generated dependencies file for bench_realdisk.
# This may be replaced when dependencies are built.
