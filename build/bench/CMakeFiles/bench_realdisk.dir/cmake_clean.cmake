file(REMOVE_RECURSE
  "CMakeFiles/bench_realdisk.dir/bench_realdisk.cpp.o"
  "CMakeFiles/bench_realdisk.dir/bench_realdisk.cpp.o.d"
  "bench_realdisk"
  "bench_realdisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_realdisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
