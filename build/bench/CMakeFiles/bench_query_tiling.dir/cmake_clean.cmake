file(REMOVE_RECURSE
  "CMakeFiles/bench_query_tiling.dir/bench_query_tiling.cpp.o"
  "CMakeFiles/bench_query_tiling.dir/bench_query_tiling.cpp.o.d"
  "bench_query_tiling"
  "bench_query_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
