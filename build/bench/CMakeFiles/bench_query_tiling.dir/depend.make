# Empty dependencies file for bench_query_tiling.
# This may be replaced when dependencies are built.
