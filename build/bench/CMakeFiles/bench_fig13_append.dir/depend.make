# Empty dependencies file for bench_fig13_append.
# This may be replaced when dependencies are built.
