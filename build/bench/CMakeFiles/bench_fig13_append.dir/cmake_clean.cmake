file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_append.dir/bench_fig13_append.cpp.o"
  "CMakeFiles/bench_fig13_append.dir/bench_fig13_append.cpp.o.d"
  "bench_fig13_append"
  "bench_fig13_append.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_append.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
