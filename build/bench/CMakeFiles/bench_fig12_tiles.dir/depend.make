# Empty dependencies file for bench_fig12_tiles.
# This may be replaced when dependencies are built.
