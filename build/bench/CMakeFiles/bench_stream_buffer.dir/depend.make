# Empty dependencies file for bench_stream_buffer.
# This may be replaced when dependencies are built.
