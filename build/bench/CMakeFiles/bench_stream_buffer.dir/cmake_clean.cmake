file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_buffer.dir/bench_stream_buffer.cpp.o"
  "CMakeFiles/bench_stream_buffer.dir/bench_stream_buffer.cpp.o.d"
  "bench_stream_buffer"
  "bench_stream_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
