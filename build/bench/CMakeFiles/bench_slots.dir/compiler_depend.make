# Empty compiler generated dependencies file for bench_slots.
# This may be replaced when dependencies are built.
