file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_md.dir/bench_stream_md.cpp.o"
  "CMakeFiles/bench_stream_md.dir/bench_stream_md.cpp.o.d"
  "bench_stream_md"
  "bench_stream_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
