# Empty compiler generated dependencies file for bench_stream_md.
# This may be replaced when dependencies are built.
