file(REMOVE_RECURSE
  "CMakeFiles/approx_olap.dir/approx_olap.cpp.o"
  "CMakeFiles/approx_olap.dir/approx_olap.cpp.o.d"
  "approx_olap"
  "approx_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
