# Empty compiler generated dependencies file for approx_olap.
# This may be replaced when dependencies are built.
