# Empty compiler generated dependencies file for precipitation_append.
# This may be replaced when dependencies are built.
