file(REMOVE_RECURSE
  "CMakeFiles/precipitation_append.dir/precipitation_append.cpp.o"
  "CMakeFiles/precipitation_append.dir/precipitation_append.cpp.o.d"
  "precipitation_append"
  "precipitation_append.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precipitation_append.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
