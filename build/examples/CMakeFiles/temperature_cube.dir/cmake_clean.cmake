file(REMOVE_RECURSE
  "CMakeFiles/temperature_cube.dir/temperature_cube.cpp.o"
  "CMakeFiles/temperature_cube.dir/temperature_cube.cpp.o.d"
  "temperature_cube"
  "temperature_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temperature_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
