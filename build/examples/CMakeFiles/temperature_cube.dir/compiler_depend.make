# Empty compiler generated dependencies file for temperature_cube.
# This may be replaced when dependencies are built.
