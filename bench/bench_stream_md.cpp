// Results 4 and 5 — multidimensional stream synopses: measured open-state
// memory of the two maintainers as the stream grows in time.
//
// Result 4 (standard form): the open set is N^(d-1) coefficient tuples per
// open time-tree level — O(K + M^d + N^(d-1) log T), "prohibitive, except
// ... very small domain size" (measured below: it multiplies with N).
// Result 5 (non-standard form): the open set is the in-cube quadtree crest
// (2^d - 1) log(N/M) plus the 1-d time crest log T — small and nearly flat.

#include "bench_util.h"
#include "shiftsplit/core/md_stream_synopsis.h"
#include "shiftsplit/util/morton.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

int main() {
  const uint64_t kK = 64;
  std::printf(
      "Results 4/5: open (mutable) coefficients while streaming, K=%llu\n\n",
      static_cast<unsigned long long>(kK));

  // ---- Result 4: standard form, d=2, constant dimension of size N -------
  std::printf("Result 4 (standard form), slabs of thickness 2, d=2:\n");
  PrintRow({"T", "open(N=8)", "open(N=32)", "open(N=128)"});
  std::vector<uint32_t> const_logs{3, 5, 7};
  std::vector<std::unique_ptr<StandardStreamSynopsis>> streams;
  for (uint32_t logn : const_logs) {
    streams.push_back(std::make_unique<StandardStreamSynopsis>(
        std::vector<uint32_t>{logn}, /*m=*/1, kK));
  }
  Xoshiro256 rng(3);
  for (uint64_t t = 1; t <= 256; ++t) {
    for (size_t s = 0; s < streams.size(); ++s) {
      TensorShape slab_shape({uint64_t{1} << const_logs[s], 2});
      Tensor slab(slab_shape);
      for (uint64_t i = 0; i < slab.size(); ++i) slab[i] = rng.NextGaussian();
      DieOnError(streams[s]->Push(slab), "push");
    }
    if ((t & (t - 1)) == 0 && t >= 4) {  // powers of two
      PrintRow({U(t * 2), U(streams[0]->open_coefficients()),
                U(streams[1]->open_coefficients()),
                U(streams[2]->open_coefficients())});
    }
  }

  // ---- Result 5: non-standard form, cubes of N^2 over time --------------
  std::printf(
      "\nResult 5 (non-standard form), 2x2 sub-cubes in z-order, d=2:\n");
  PrintRow({"T(cubes)", "open(N=8)", "open(N=32)", "open(N=128)"});
  std::vector<uint32_t> cube_logs{3, 5, 7};
  std::vector<std::unique_ptr<NonstandardStreamSynopsis>> ns_streams;
  for (uint32_t logn : cube_logs) {
    ns_streams.push_back(std::make_unique<NonstandardStreamSynopsis>(
        2, logn, /*m=*/1, kK));
  }
  std::vector<uint64_t> max_open(cube_logs.size(), 0);
  for (uint64_t cube = 1; cube <= 16; ++cube) {
    for (size_t s = 0; s < cube_logs.size(); ++s) {
      const uint64_t subcubes = uint64_t{1} << (2 * (cube_logs[s] - 1));
      TensorShape sub_shape = TensorShape::Cube(2, 2);
      for (uint64_t z = 0; z < subcubes; ++z) {
        Tensor sub(sub_shape);
        for (uint64_t i = 0; i < sub.size(); ++i) sub[i] = rng.NextGaussian();
        DieOnError(ns_streams[s]->Push(sub), "push");
        max_open[s] = std::max(max_open[s],
                               ns_streams[s]->open_coefficients());
      }
    }
    if ((cube & (cube - 1)) == 0 && cube >= 2) {
      PrintRow({U(cube), U(max_open[0]), U(max_open[1]), U(max_open[2])});
    }
  }
  std::printf(
      "\nPaper shape check: the standard form's open state multiplies with\n"
      "the constant-dimension size (N^(d-1) tuples per open level) and\n"
      "grows with log T — prohibitive unless N is small (Result 4); the\n"
      "non-standard form's open state is the (2^d-1) log(N/M) quadtree\n"
      "crest plus log T — dozens of coefficients, nearly flat (Result 5).\n");
  return 0;
}
