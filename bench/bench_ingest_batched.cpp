// Ingest-pipeline ablation: per-coefficient apply (the reference path)
// versus tile-batched apply, batched + buffer-pool prefetch, and batched +
// prefetch + 4 worker threads, constructing the standard transform of a
// 2^22-cell dataset. All four configurations produce bit-identical stores
// (the parity tests assert this); what changes is the wall time and the
// number of buffer-pool lookups. Emits one JSON object per configuration.

#include <chrono>
#include <cstdio>
#include <iterator>
#include <thread>

#include "bench_util.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/data/dataset.h"
#include "shiftsplit/data/synthetic.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

namespace {

struct Config {
  const char* name;
  bool batched;
  bool prefetch;
  uint32_t threads;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);
  BenchJson report("bench_ingest_batched");
  const std::vector<uint32_t> log_dims{11, 11};  // 2048 x 2048 = 2^22 cells
  const uint32_t log_chunk = 6;                  // 64 x 64 chunks, 1024 total
  const uint32_t b = 3;                          // 8 x 8 tiles, 64-slot blocks
  const uint64_t pool_blocks = 4096;

  const Config configs[] = {
      {"per-coefficient", false, false, 1},
      {"batched", true, false, 1},
      {"batched+prefetch", true, true, 1},
      {"batched+4threads", true, false, 4},
  };

  // Materialize the smooth dataset once, outside the timed region: the bench
  // measures the ingest pipeline, not synthetic cell generation. Every
  // configuration streams chunks from the same immutable tensor.
  Tensor cells = DieOnError(
      MakeSmoothDataset(TensorShape({uint64_t{1} << log_dims[0],
                                     uint64_t{1} << log_dims[1]}),
                        21)
          ->Materialize(),
      "materialize");
  TensorDataset dataset(std::move(cells));

  double base_ms = 0.0;
  std::printf("[\n");
  for (size_t i = 0; i < std::size(configs); ++i) {
    const Config& c = configs[i];
    auto bundle = MakeStandardStore(log_dims, b, pool_blocks);

    TransformOptions options;
    options.batched = c.batched;
    options.prefetch = c.prefetch;
    options.num_threads = c.threads;
    // The multi-thread configuration means what it says even on single-CPU
    // hosts, where the worker count otherwise clamps to 1.
    options.oversubscribe = c.threads > 1;

    const auto start = std::chrono::steady_clock::now();
    const TransformResult result =
        DieOnError(TransformDatasetStandard(&dataset, log_chunk,
                                            bundle.store.get(), options),
                   c.name);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (i == 0) base_ms = wall_ms;

    // Context for cross-machine comparisons: a "4 threads" row means
    // something very different on a 1-core host, where the workers time-slice
    // one CPU — the oversubscribed flag marks exactly that situation.
    const uint64_t hardware =
        std::max(1u, std::thread::hardware_concurrency());
    const bool oversubscribed = c.threads > hardware;

    const BufferPool::Stats pool = bundle.store->pool_stats();
    std::printf(
        "  {\"config\": \"%s\", \"threads\": %u, "
        "\"hardware_concurrency\": %llu, \"oversubscribed\": %s, "
        "\"wall_ms\": %.1f, "
        "\"speedup_vs_per_coefficient\": %.2f, \"chunks\": %llu, "
        "\"get_block_calls\": %llu, \"hit_rate\": %.4f, "
        "\"prefetched\": %llu, \"write_backs\": %llu, "
        "\"block_reads\": %llu, \"block_writes\": %llu, "
        "\"coeff_writes\": %llu}%s\n",
        c.name, c.threads, static_cast<unsigned long long>(hardware),
        oversubscribed ? "true" : "false", wall_ms, base_ms / wall_ms,
        static_cast<unsigned long long>(result.chunks),
        static_cast<unsigned long long>(pool.hits + pool.misses),
        pool.hit_rate(), static_cast<unsigned long long>(pool.prefetched),
        static_cast<unsigned long long>(pool.write_backs),
        static_cast<unsigned long long>(result.store_io.block_reads),
        static_cast<unsigned long long>(result.store_io.block_writes),
        static_cast<unsigned long long>(result.store_io.coeff_writes),
        i + 1 < std::size(configs) ? "," : "");
    report.Row(c.name)
        .Field("threads", uint64_t{c.threads})
        .Field("hardware_concurrency", hardware)
        .Field("oversubscribed", oversubscribed)
        .Field("wall_ms", wall_ms, 1)
        .Field("speedup_vs_per_coefficient", base_ms / wall_ms, 2)
        .Field("chunks", result.chunks)
        .Field("get_block_calls", pool.hits + pool.misses)
        .Field("hit_rate", pool.hit_rate(), 4)
        .Field("prefetched", pool.prefetched)
        .Field("write_backs", pool.write_backs)
        .Field("block_reads", result.store_io.block_reads)
        .Field("block_writes", result.store_io.block_writes)
        .Field("coeff_writes", result.store_io.coeff_writes);
  }
  std::printf("]\n");
  report.Write(json_path);
  return 0;
}
