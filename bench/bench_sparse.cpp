// Sparse-data ablation (paper §5.1: "in the case of sparse data with z
// non-zero values the I/O complexity is O(z ... + z log(N^d / z))"):
// transformation coefficient I/O of the sparse-aware SHIFT-SPLIT versus the
// dense path, sweeping the non-zero fraction of a clustered 2-d dataset.

#include "bench_util.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/data/synthetic.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

namespace {

uint64_t Run(double density, bool sparse, uint64_t* nonzero) {
  const uint32_t n = 8, m = 3, b = 2;
  const std::vector<uint32_t> log_dims{n, n};
  // Zipf-clustered sparse data (hot region along dimension 0).
  auto dataset =
      MakeSparseDataset(TensorShape::Cube(2, uint64_t{1} << n), density, 1.5,
                        42);
  if (nonzero != nullptr) {
    *nonzero = 0;
    std::vector<uint64_t> c(2, 0);
    do {
      if (dataset->Cell(c) != 0.0) ++*nonzero;
    } while (dataset->shape().Next(c));
  }
  auto bundle = MakeStandardStore(log_dims, b, 1u << 12);
  TransformOptions options;
  options.maintain_scaling_slots = false;
  options.sparse = sparse;
  const TransformResult result = DieOnError(
      TransformDatasetStandard(dataset.get(), m, bundle.store.get(), options),
      "transform");
  return result.store_io.coeff_writes;
}

}  // namespace

int main() {
  std::printf(
      "Sparse transformation: coefficient writes, dense vs sparse-aware\n"
      "SHIFT-SPLIT (d=2, N=256^2 cells, chunk 8^2, Zipf-clustered data)\n");
  PrintRow({"density", "nonzero z", "dense", "sparse", "sparse/z"});
  for (double density : {0.002, 0.01, 0.05, 0.25, 1.0}) {
    uint64_t z = 0;
    const uint64_t dense = Run(density, false, &z);
    const uint64_t sparse = Run(density, true, nullptr);
    PrintRow({F(density, 3), U(z), U(dense), U(sparse),
              F(z > 0 ? static_cast<double>(sparse) / z : 0.0, 2)});
  }
  std::printf(
      "\nClaim check (§5.1): the dense cost is flat in the density; the\n"
      "sparse-aware cost tracks z within a small factor (the log(N/z)-style\n"
      "path overhead), converging to the dense cost as density -> 1.\n");
  return 0;
}
