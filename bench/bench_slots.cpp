// Ablation — cost of maintaining the paper's redundant subtree-root scaling
// slots (§3): extra coefficient writes during the chunked transformation
// (they live in already-touched tiles, so block I/O is unchanged) against
// the query-side payoff (single-block point queries).

#include "bench_util.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

int main() {
  const uint32_t n = 7, b = 2, m = 4;
  const std::vector<uint32_t> log_dims{n, n};

  std::printf(
      "Scaling-slot ablation (d=2, N=%u^2, chunk %u^2, tile %u^2)\n\n",
      1u << n, 1u << m, 1u << b);
  PrintRow({"maintain", "coeff writes", "block writes", "pq blocks"}, 16);
  for (const bool maintain : {false, true}) {
    auto dataset =
        MakeUniformDataset(TensorShape::Cube(2, uint64_t{1} << n), 0, 1, 9);
    auto bundle = MakeStandardStore(log_dims, b, 1u << 12);
    TransformOptions options;
    options.maintain_scaling_slots = maintain;
    const TransformResult result = DieOnError(
        TransformDatasetStandard(dataset.get(), m, bundle.store.get(),
                                 options),
        "transform");
    // Average cold point-query block reads in the mode the store supports.
    QueryOptions q;
    q.use_scaling_slots = maintain;
    Xoshiro256 rng(10);
    uint64_t blocks = 0;
    const int kQueries = 100;
    for (int i = 0; i < kQueries; ++i) {
      std::vector<uint64_t> p{rng.NextBounded(uint64_t{1} << n),
                              rng.NextBounded(uint64_t{1} << n)};
      DieOnError(bundle.store->pool().Clear(), "clear");
      bundle.manager->stats().Reset();
      DieOnError(PointQueryStandard(bundle.store.get(), log_dims, p, q)
                     .status(),
                 "query");
      blocks += bundle.manager->stats().block_reads;
    }
    PrintRow({maintain ? "yes" : "no", U(result.store_io.coeff_writes),
              U(result.store_io.block_writes),
              F(static_cast<double>(blocks) / kQueries, 2)},
             16);
  }
  std::printf(
      "\nClaim check (§3): storing the subtree-root scalings costs extra\n"
      "coefficient writes but *no* extra blocks (they share the tiles the\n"
      "SHIFT-SPLIT already touches), and buys single-block point queries —\n"
      "\"they can dramatically reduce query costs\".\n");
  return 0;
}
