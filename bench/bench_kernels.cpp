// Kernel-tier throughput: runs every dispatch tier the build and the CPU
// support (scalar plus sse4.2/avx2/neon, see src/shiftsplit/kernels) over
// the hot inner loops — Haar level passes, contiguous and strided folds,
// CRC32C — and reports per-tier throughput with speedup over the scalar
// reference. Before timing, every tier's output is checked bit-identical to
// scalar on the same input (the cheap in-bench echo of the differential
// tests). Emits one JSON object per (kernel, tier) pair.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "bench_util.h"
#include "shiftsplit/kernels/kernels.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

namespace {

constexpr size_t kHaarHalf = 1 << 15;    // 2^16-element level pass
constexpr size_t kFoldN = 1 << 16;       // contiguous fold elements
constexpr size_t kStride = 3;            // the SlotUpdate AoS stride
constexpr size_t kCrcBytes = 1 << 16;    // 64 KiB CRC buffer
constexpr int kReps = 400;

std::vector<double> RandomDoubles(size_t n, uint32_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> out(n);
  for (double& v : out) v = dist(rng);
  return out;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// Keeps results alive across reps so the timed loops cannot be elided.
volatile double g_sink_d = 0.0;
volatile uint32_t g_sink_u = 0;

struct Timed {
  double wall_ms = 0.0;
  double throughput = 0.0;  // elements (or bytes) per second
};

template <typename Body>
Timed Time(size_t units_per_rep, Body body) {
  body();  // warm up (and fault in the buffers)
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < kReps; ++r) body();
  Timed t;
  const double secs = Seconds(start);
  t.wall_ms = secs * 1e3;
  t.throughput = static_cast<double>(units_per_rep) * kReps / secs;
  return t;
}

void Report(BenchJson& report, const char* kernel, const char* tier,
            const Timed& t, double scalar_ms, const char* unit) {
  std::printf("  %-18s %-8s %9.2f ms   %8.1f M%s/s   %5.2fx\n", kernel, tier,
              t.wall_ms, t.throughput / 1e6, unit, scalar_ms / t.wall_ms);
  report.Row(std::string(kernel) + "/" + tier)
      .Field("kernel", std::string(kernel))
      .Field("tier", std::string(tier))
      .Field("wall_ms", t.wall_ms, 3)
      .Field("throughput_m_per_s", t.throughput / 1e6, 1)
      .Field("speedup_vs_scalar", scalar_ms / t.wall_ms, 2);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);
  BenchJson report("bench_kernels");
  const auto tiers = kernels::AvailableTiers();
  const kernels::KernelOps& scalar = kernels::Scalar();

  const std::vector<double> haar_in = RandomDoubles(2 * kHaarHalf, 1);
  const std::vector<double> fold_src = RandomDoubles(kFoldN * kStride, 2);
  std::vector<uint8_t> crc_buf(kCrcBytes);
  {
    std::mt19937_64 rng(3);
    for (uint8_t& b : crc_buf) b = static_cast<uint8_t>(rng());
  }

  // Scalar reference outputs for the pre-timing bit-identity check.
  std::vector<double> ref_avg(kHaarHalf), ref_det(kHaarHalf);
  std::vector<double> ref_inv(2 * kHaarHalf);
  scalar.haar_forward_level(haar_in.data(), ref_avg.data(), ref_det.data(),
                            kHaarHalf, 0.5);
  scalar.haar_inverse_level(ref_avg.data(), ref_det.data(), ref_inv.data(),
                            kHaarHalf, 1.0);
  std::vector<double> ref_fold(kFoldN, 0.25);
  scalar.fold_add_strided(ref_fold.data(), fold_src.data(), kStride, kFoldN);
  const uint32_t ref_crc = scalar.crc32c(0, crc_buf.data(), crc_buf.size());

  std::printf("  %-18s %-8s %12s   %14s   %7s\n", "kernel", "tier", "wall",
              "throughput", "speedup");
  double scalar_ms[5] = {0, 0, 0, 0, 0};
  for (const kernels::KernelOps* tier : tiers) {
    // Parity gate: a tier that is not bit-identical to scalar must never
    // publish a throughput number.
    std::vector<double> avg(kHaarHalf), det(kHaarHalf), inv(2 * kHaarHalf);
    tier->haar_forward_level(haar_in.data(), avg.data(), det.data(),
                             kHaarHalf, 0.5);
    tier->haar_inverse_level(ref_avg.data(), ref_det.data(), inv.data(),
                             kHaarHalf, 1.0);
    std::vector<double> fold(kFoldN, 0.25);
    tier->fold_add_strided(fold.data(), fold_src.data(), kStride, kFoldN);
    if (!BitsEqual(avg, ref_avg) || !BitsEqual(det, ref_det) ||
        !BitsEqual(inv, ref_inv) || !BitsEqual(fold, ref_fold) ||
        tier->crc32c(0, crc_buf.data(), crc_buf.size()) != ref_crc) {
      std::fprintf(stderr, "tier %s diverges from scalar\n", tier->name);
      return 1;
    }

    std::vector<double> dst(2 * kHaarHalf, 0.0);
    const Timed fwd = Time(kHaarHalf, [&] {
      tier->haar_forward_level(haar_in.data(), avg.data(), det.data(),
                               kHaarHalf, 0.5);
      g_sink_d = avg[0];
    });
    const Timed bwd = Time(kHaarHalf, [&] {
      tier->haar_inverse_level(ref_avg.data(), ref_det.data(), inv.data(),
                               kHaarHalf, 1.0);
      g_sink_d = inv[0];
    });
    const Timed fa = Time(kFoldN, [&] {
      tier->fold_add(dst.data(), haar_in.data(), kFoldN);
      g_sink_d = dst[0];
    });
    const Timed fas = Time(kFoldN, [&] {
      tier->fold_add_strided(fold.data(), fold_src.data(), kStride, kFoldN);
      g_sink_d = fold[0];
    });
    const Timed crc = Time(kCrcBytes, [&] {
      g_sink_u = tier->crc32c(0, crc_buf.data(), crc_buf.size());
    });

    const Timed* all[5] = {&fwd, &bwd, &fa, &fas, &crc};
    const char* names[5] = {"haar_forward", "haar_inverse", "fold_add",
                            "fold_add_strided", "crc32c"};
    const char* units[5] = {"pair", "pair", "elem", "elem", "B"};
    for (int k = 0; k < 5; ++k) {
      if (tier == &scalar) scalar_ms[k] = all[k]->wall_ms;
      Report(report, names[k], tier->name, *all[k], scalar_ms[k], units[k]);
    }
  }
  std::printf("active tier: %s\n", kernels::Active().name);
  report.Row("active").Field("tier", std::string(kernels::Active().name));
  report.Write(json_path);
  return 0;
}
