// Synopsis-quality sweep: reconstruction error and guaranteed range-sum
// error bound of the K-term CompressedSynopsis as K grows, on data of
// different compressibility — the approximate-OLAP trade-off the paper's
// introduction cites wavelets for.

#include <cmath>

#include "bench_util.h"
#include "shiftsplit/core/approx.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/data/temperature.h"
#include "shiftsplit/wavelet/standard_transform.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

namespace {

struct Quality {
  double rms;
  double energy_kept;
};

Quality Measure(const Tensor& data, const Tensor& transformed, uint64_t k) {
  const CompressedSynopsis synopsis = CompressedSynopsis::FromTensor(
      transformed, k, Normalization::kOrthonormal);
  double sse = 0.0;
  std::vector<uint64_t> point(data.shape().ndim(), 0);
  do {
    const double e = synopsis.PointEstimate(point) - data.At(point);
    sse += e * e;
  } while (data.shape().Next(point));
  return {std::sqrt(sse / static_cast<double>(data.size())),
          synopsis.energy_fraction()};
}

Tensor Materialize(FunctionDataset* dataset) {
  auto r = dataset->Materialize();
  if (!r.ok()) std::exit(1);
  return std::move(*r);
}

}  // namespace

int main() {
  const TensorShape shape({64, 64});
  auto smooth = MakeSmoothDataset(shape, 1);
  auto uniform = MakeUniformDataset(shape, -10.0, 10.0, 2);
  TemperatureOptions t_options;
  t_options.log_lat = 6;
  t_options.log_lon = 6;
  t_options.log_alt = 0;
  t_options.log_time = 0;
  auto temperature = MakeTemperatureDataset(t_options);

  Tensor smooth_data = Materialize(smooth.get());
  FunctionDataset temp2d(shape, [&](std::span<const uint64_t> c) {
    std::vector<uint64_t> cell{c[0], c[1], 0, 0};
    return temperature->Cell(cell);
  });
  Tensor temp_data = Materialize(&temp2d);
  Tensor uniform_data = Materialize(uniform.get());

  auto transform = [](Tensor t) {
    DieOnError(ForwardStandard(&t, Normalization::kOrthonormal), "transform");
    return t;
  };
  Tensor smooth_t = transform(smooth_data);
  Tensor temp_t = transform(temp_data);
  Tensor uniform_t = transform(uniform_data);

  std::printf(
      "K-term synopsis quality (64x64 = 4096 cells): RMS point error and\n"
      "energy kept, by dataset compressibility\n");
  PrintRow({"K", "smooth RMS", "temp RMS", "uniform RMS", "temp kept%"});
  for (uint64_t k : {8u, 32u, 128u, 512u, 2048u}) {
    const Quality s = Measure(smooth_data, smooth_t, k);
    const Quality t = Measure(temp_data, temp_t, k);
    const Quality u = Measure(uniform_data, uniform_t, k);
    PrintRow({U(k), F(s.rms, 3), F(t.rms, 3), F(u.rms, 3),
              F(100.0 * t.energy_kept, 2)});
  }
  std::printf(
      "\nClaim check: error falls steeply with K on smooth/climate-like\n"
      "data (the wavelet compressibility OLAP applications rely on) and\n"
      "only linearly-in-energy on incompressible uniform noise.\n");
  return 0;
}
