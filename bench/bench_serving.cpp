// Serving-layer throughput: sustained updates/sec through the buffered
// ServingCube (durable group-commit acks, background maintenance draining
// batches through the tile-batched SHIFT-SPLIT path) versus the synchronous
// per-call Updater path (one apply + one atomic flush per delta — the only
// way a plain WaveletCube can make each update durable before acking), and
// versus the sharded configurations (2 and 4 dyadic shards, each with its
// own delta log, latch and maintenance worker). Readers run concurrently
// against every serving configuration, so the p50/p99 rows show query
// latency while maintenance is actively draining — the read tail a
// monolithic cube's exclusive latch inflates and sharding is meant to cut.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/service/sharded_cube.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

namespace {

constexpr uint32_t kLogDim = 5;  // 32 x 32 domain
constexpr uint64_t kDim = uint64_t{1} << kLogDim;
constexpr int kSyncDeltas = 200;      // per-call fsync makes these expensive
constexpr int kServingDeltas = 2000;  // spread over the writer threads
constexpr int kWriterThreads = 8;     // deep enough for real commit groups
constexpr int kReaderThreads = 1;     // latency sampler

// Silent single-byte corruption, as a failing disk would leave it: no
// crash, no error, just a payload byte that no longer matches its CRC.
void FlipOneByte(const std::string& file, uint64_t offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

std::string FreshDir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("shiftsplit_bench_serving_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// One serving configuration under test: the monolithic ServingCube and the
// ShardedCube behind the same four calls the workload needs.
struct Target {
  std::function<Status(std::span<const uint64_t>, double)> add;
  std::function<Result<double>(std::span<const uint64_t>)> point;
  std::function<Status()> drain_all;
  std::function<ServingStats()> stats;
  std::function<Status()> close;
};

struct RunResult {
  double wall_ms = 0.0;
  double updates_per_sec = 0.0;
  std::vector<double> read_us;
  ServingStats stats;
};

// Concurrent writers stream random cell deltas while readers sample merged
// point-query latency; returns wall time over the write phase.
RunResult RunWorkload(Target& target) {
  RunResult out;
  std::mutex lat_mu;
  std::atomic<bool> writers_done{false};
  const auto writer = [&](int id) {
    Xoshiro256 rng(100 + static_cast<uint64_t>(id));
    for (int i = 0; i < kServingDeltas / kWriterThreads; ++i) {
      const std::vector<uint64_t> at{rng.NextBounded(kDim),
                                     rng.NextBounded(kDim)};
      DieOnError(target.add(at, rng.NextUniform(-1.0, 1.0)), "serving add");
    }
  };
  const auto reader = [&](int id) {
    Xoshiro256 rng(999 + static_cast<uint64_t>(id));
    std::vector<double> local;
    while (!writers_done.load()) {
      const std::vector<uint64_t> at{rng.NextBounded(kDim),
                                     rng.NextBounded(kDim)};
      const auto start = std::chrono::steady_clock::now();
      DieOnError(target.point(at).status(), "serving point query");
      local.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count());
      // Sample, don't saturate: a free-spinning reader would monopolize a
      // single-CPU host and measure contention instead of latency.
      std::this_thread::sleep_for(std::chrono::microseconds(250));
    }
    std::lock_guard<std::mutex> lock(lat_mu);
    out.read_us.insert(out.read_us.end(), local.begin(), local.end());
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriterThreads; ++w) threads.emplace_back(writer, w);
  std::vector<std::thread> samplers;
  for (int r = 0; r < kReaderThreads; ++r) samplers.emplace_back(reader, r);
  for (auto& t : threads) t.join();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  writers_done.store(true);
  for (auto& t : samplers) t.join();
  DieOnError(target.drain_all(), "final drain");
  out.stats = target.stats();
  DieOnError(target.close(), "close serving store");
  out.updates_per_sec = 1000.0 * kServingDeltas / out.wall_ms;
  return out;
}

void ReportRow(BenchJson& report, const char* config, uint32_t shards,
               const RunResult& run, double sync_per_sec) {
  report.Row(config)
      .Field("deltas", uint64_t{kServingDeltas})
      .Field("writer_threads", uint64_t{kWriterThreads})
      .Field("reader_threads", uint64_t{kReaderThreads})
      .Field("shards", uint64_t{shards})
      .Field("wall_ms", run.wall_ms, 1)
      .Field("updates_per_sec", run.updates_per_sec, 1)
      .Field("speedup_vs_synchronous", run.updates_per_sec / sync_per_sec, 2)
      .Field("apply_batches", run.stats.apply_batches)
      .Field("coalesced_deltas", run.stats.coalesced_deltas)
      .Field("log_appends", run.stats.log_appends)
      .Field("log_syncs", run.stats.log_syncs)
      .Field("latch_wait_us", run.stats.latch_wait_us_total)
      .Field("latch_hold_us_max", run.stats.latch_hold_us_max)
      .Field("read_p50_us", Percentile(run.read_us, 50), 2)
      .Field("read_p99_us", Percentile(run.read_us, 99), 2);
  std::printf(
      "%-18s %d shard(s): %.1f ms, %6.0f updates/sec (%.1fx), read p50 "
      "%.1f us p99 %.1f us, max latch hold %llu us\n",
      config, shards, run.wall_ms, run.updates_per_sec,
      run.updates_per_sec / sync_per_sec, Percentile(run.read_us, 50),
      Percentile(run.read_us, 99),
      static_cast<unsigned long long>(run.stats.latch_hold_us_max));
}

ServingCube::Options ServingOptions(uint32_t num_workers) {
  ServingCube::Options options;
  options.oversubscribe = true;  // real concurrency on 1-CPU hosts too
  options.num_workers = num_workers;
  options.drain_min_deltas = 64;
  options.max_delta_age = std::chrono::milliseconds(5);
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);
  BenchJson report("bench_serving");
  std::vector<std::string> dirs;

  // Baseline: the per-call Updater path. Every delta is applied through the
  // store and committed atomically before the next one — durable, but each
  // call pays the full journal + fsync round trip.
  double sync_per_sec = 0.0;
  {
    const std::string dir = FreshDir("sync");
    dirs.push_back(dir);
    WaveletCube::Options options;
    {
      auto fresh = DieOnError(
          WaveletCube::CreateOnDisk(dir, {kLogDim, kLogDim}, options),
          "create sync store");
      DieOnError(fresh->Close(), "close fresh sync store");
    }
    auto cube =
        DieOnError(WaveletCube::OpenOnDisk(dir, 256), "open sync store");
    Xoshiro256 rng(7);
    Tensor one(TensorShape({1, 1}));
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSyncDeltas; ++i) {
      one[0] = rng.NextUniform(-1.0, 1.0);
      const std::vector<uint64_t> at{rng.NextBounded(kDim),
                                     rng.NextBounded(kDim)};
      DieOnError(cube->Update(one, at), "sync update");
      DieOnError(cube->Flush(), "sync flush");
    }
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    DieOnError(cube->Close(), "close sync store");
    sync_per_sec = 1000.0 * kSyncDeltas / wall_ms;
    report.Row("synchronous_updater")
        .Field("deltas", uint64_t{kSyncDeltas})
        .Field("writer_threads", uint64_t{1})
        .Field("reader_threads", uint64_t{0})
        .Field("shards", uint64_t{1})
        .Field("wall_ms", wall_ms, 1)
        .Field("updates_per_sec", sync_per_sec, 1);
    std::printf("synchronous per-call updater: %d deltas, %.1f ms, "
                "%.0f updates/sec\n",
                kSyncDeltas, wall_ms, sync_per_sec);
  }

  // Monolithic serving path: concurrent writers ack through one
  // group-committed delta log while maintenance drains under one latch.
  {
    const std::string dir = FreshDir("serve");
    dirs.push_back(dir);
    WaveletCube::Options options;
    {
      auto fresh = DieOnError(
          WaveletCube::CreateOnDisk(dir, {kLogDim, kLogDim}, options),
          "create serving store");
      DieOnError(fresh->Close(), "close fresh serving store");
    }
    auto serving = DieOnError(
        ServingCube::OpenOnDisk(dir, 256, ServingOptions(/*num_workers=*/2)),
        "open serving store");
    Target target{
        [&](std::span<const uint64_t> at, double v) {
          return serving->Add(at, v);
        },
        [&](std::span<const uint64_t> at) { return serving->PointQuery(at); },
        [&] { return serving->DrainAll(); },
        [&] { return serving->stats(); },
        [&] { return serving->Close(); }};
    ReportRow(report, "serving_buffered", 1, RunWorkload(target),
              sync_per_sec);
  }

  // Sharded serving: 2^k independent sub-domain cubes behind the router —
  // per-shard delta logs parallelize group commit, and a drain's exclusive
  // latch stalls only the readers of that one shard.
  for (const uint32_t shards : {uint32_t{2}, uint32_t{4}}) {
    const std::string dir =
        FreshDir(("sharded" + std::to_string(shards)).c_str());
    dirs.push_back(dir);
    WaveletCube::Options cube_options;
    ShardedCube::Options options;
    options.serving = ServingOptions(/*num_workers=*/1);  // one per shard
    auto sharded = DieOnError(
        ShardedCube::CreateOnDisk(dir, {kLogDim, kLogDim}, shards,
                                  cube_options, options),
        "create sharded store");
    Target target{
        [&](std::span<const uint64_t> at, double v) {
          return sharded->Add(at, v);
        },
        [&](std::span<const uint64_t> at) { return sharded->PointQuery(at); },
        [&] { return sharded->DrainAll(); },
        [&] { return sharded->stats(); },
        [&] { return sharded->Close(); }};
    const std::string config = "sharded_" + std::to_string(shards);
    ReportRow(report, config.c_str(), shards, RunWorkload(target),
              sync_per_sec);
  }

  // Faulty sharded serving (DESIGN.md §11): the same 4-shard workload, but
  // one shard is poisoned halfway through and the background supervisor
  // quarantines, rebuilds and re-admits it while writers and readers keep
  // going — this row prices an update stream that rides through a shard
  // failure, not a clean run. Writes bounced by the healing shard count as
  // rejected (the clean rows die on any write error); reads absorb the
  // exact-path kUnavailable of the quarantined shard the same way.
  {
    const std::string dir = FreshDir("sharded4_faulty");
    dirs.push_back(dir);
    WaveletCube::Options cube_options;
    ShardedCube::Options options;
    options.serving = ServingOptions(/*num_workers=*/1);
    options.supervisor_poll = std::chrono::milliseconds(2);
    auto sharded = DieOnError(
        ShardedCube::CreateOnDisk(dir, {kLogDim, kLogDim}, 4, cube_options,
                                  options),
        "create faulty sharded store");
    std::atomic<int> ops{0};
    std::atomic<uint64_t> rejected_writes{0};
    std::atomic<uint64_t> unavailable_reads{0};
    Target target{
        [&](std::span<const uint64_t> at, double v) {
          if (ops.fetch_add(1) == kServingDeltas / 2) {
            if (auto victim = sharded->shard_for_test(1)) {
              DieOnError(victim->CrashForTest(), "poison shard 1");
            }
          }
          const Status added = sharded->Add(at, v);
          if (!added.ok() && added.code() == StatusCode::kUnavailable) {
            ++rejected_writes;
            return Status::OK();
          }
          return added;
        },
        [&](std::span<const uint64_t> at) -> Result<double> {
          auto r = sharded->PointQuery(at);
          if (!r.ok() && r.status().code() == StatusCode::kUnavailable) {
            ++unavailable_reads;
            return 0.0;
          }
          return r;
        },
        [&]() -> Status {
          // Wait out the supervised recovery, then drain everything —
          // DrainAll on a still-quarantined shard would fail the bench.
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(30);
          while (sharded->shard_health(1).health != ShardHealth::kHealthy) {
            if (std::chrono::steady_clock::now() >= deadline) {
              return Status::DeadlineExceeded("shard 1 never recovered");
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
          return sharded->DrainAll();
        },
        [&] { return sharded->stats(); },
        [&] { return sharded->Close(); }};
    const RunResult run = RunWorkload(target);
    ReportRow(report, "sharded_4_faulty", 4, run, sync_per_sec);
    report.Field("rejected_writes", rejected_writes.load())
        .Field("unavailable_reads", unavailable_reads.load())
        .Field("quarantines", run.stats.quarantines)
        .Field("recoveries", run.stats.recoveries)
        .Field("parked_writes", run.stats.parked_writes);
    std::printf("  self-healing: %llu quarantine(s), %llu recover(ies), "
                "%llu write(s) rejected, %llu parked, %llu read(s) "
                "unavailable\n",
                static_cast<unsigned long long>(run.stats.quarantines),
                static_cast<unsigned long long>(run.stats.recoveries),
                static_cast<unsigned long long>(rejected_writes.load()),
                static_cast<unsigned long long>(run.stats.parked_writes),
                static_cast<unsigned long long>(unavailable_reads.load()));
  }

  // Bit-rotted sharded serving (DESIGN.md §12): the same 4-shard workload
  // on a parity-protected (v3) store, with a payload byte of one shard
  // flipped halfway through. Unlike the poisoned row above, bit rot on a
  // parity store heals in place — inline on the next read of the block, or
  // by the supervisor's in-place repair if a drain trips over it first —
  // so the row prices riding through silent corruption with zero
  // quarantines. The mid-run flip may even vanish on its own — a drain
  // rewriting the block computes parity from the pooled payload and
  // overwrites the rot — so a second flip lands after the final drain,
  // where the closing ScrubAll must find and heal it: parity_repairs below
  // is nonzero every run.
  {
    const std::string dir = FreshDir("sharded4_bitrot");
    dirs.push_back(dir);
    WaveletCube::Options cube_options;
    cube_options.parity_group = 4;
    ShardedCube::Options options;
    options.serving = ServingOptions(/*num_workers=*/1);
    options.supervisor_poll = std::chrono::milliseconds(2);
    auto sharded = DieOnError(
        ShardedCube::CreateOnDisk(dir, {kLogDim, kLogDim}, 4, cube_options,
                                  options),
        "create bitrot sharded store");
    const uint64_t stride =
        sharded->shard_for_test(0)->cube()->store()->layout()
                .block_capacity() *
            sizeof(double) +
        16;
    std::atomic<int> ops{0};
    std::atomic<uint64_t> rejected_writes{0};
    std::atomic<uint64_t> unavailable_reads{0};
    Target target{
        [&](std::span<const uint64_t> at, double v) {
          if (ops.fetch_add(1) == kServingDeltas / 2) {
            FlipOneByte(dir + "/shard-0001/blocks.bin", stride + 5);
          }
          const Status added = sharded->Add(at, v);
          if (!added.ok() && added.code() == StatusCode::kUnavailable) {
            ++rejected_writes;
            return Status::OK();
          }
          return added;
        },
        [&](std::span<const uint64_t> at) -> Result<double> {
          auto r = sharded->PointQuery(at);
          if (!r.ok() && r.status().code() == StatusCode::kUnavailable) {
            ++unavailable_reads;
            return 0.0;
          }
          return r;
        },
        [&]() -> Status {
          // If a drain tripped over the rot the shard is DEGRADED while the
          // supervisor repairs it in place; wait that out before draining.
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(30);
          while (sharded->shard_health(1).health != ShardHealth::kHealthy) {
            if (std::chrono::steady_clock::now() >= deadline) {
              return Status::DeadlineExceeded("shard 1 never healed");
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
          if (const Status drained = sharded->DrainAll(); !drained.ok()) {
            return drained;
          }
          // Quiesced now: this flip cannot be absorbed by a drain, so the
          // scrub below must repair it from parity.
          FlipOneByte(dir + "/shard-0001/blocks.bin", stride + 5);
          return sharded->ScrubAll().status();
        },
        [&] { return sharded->stats(); },
        [&] { return sharded->Close(); }};
    const RunResult run = RunWorkload(target);
    ReportRow(report, "sharded_4_bitrot", 4, run, sync_per_sec);
    report.Field("rejected_writes", rejected_writes.load())
        .Field("unavailable_reads", unavailable_reads.load())
        .Field("quarantines", run.stats.quarantines)
        .Field("recoveries", run.stats.recoveries)
        .Field("parity_repairs", run.stats.parity_repairs)
        .Field("parity_unrepairable", run.stats.parity_unrepairable)
        .Field("scrubbed_blocks", run.stats.scrubbed_blocks);
    std::printf("  bit rot: %llu parity repair(s), %llu unrepairable, "
                "%llu quarantine(s), %llu block(s) scrubbed\n",
                static_cast<unsigned long long>(run.stats.parity_repairs),
                static_cast<unsigned long long>(run.stats.parity_unrepairable),
                static_cast<unsigned long long>(run.stats.quarantines),
                static_cast<unsigned long long>(run.stats.scrubbed_blocks));
  }

  for (const std::string& dir : dirs) std::filesystem::remove_all(dir);
  report.Write(json_path);
  return 0;
}
