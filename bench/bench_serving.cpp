// Serving-layer throughput: sustained updates/sec through the buffered
// ServingCube (durable group-commit acks, background maintenance draining
// batches through the tile-batched SHIFT-SPLIT path) versus the synchronous
// per-call Updater path (one apply + one atomic flush per delta — the only
// way a plain WaveletCube can make each update durable before acking).
// Readers run concurrently against the serving configuration, so the p50/p99
// rows show query latency while maintenance is actively draining.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/service/serving_cube.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

namespace {

constexpr uint32_t kLogDim = 5;  // 32 x 32 domain
constexpr uint64_t kDim = uint64_t{1} << kLogDim;
constexpr int kSyncDeltas = 200;      // per-call fsync makes these expensive
constexpr int kServingDeltas = 2000;  // spread over the writer threads
constexpr int kWriterThreads = 8;     // deep enough for real commit groups

std::string FreshStore(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("shiftsplit_bench_serving_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  WaveletCube::Options options;
  auto cube = DieOnError(
      WaveletCube::CreateOnDisk(dir.string(), {kLogDim, kLogDim}, options),
      "create store");
  DieOnError(cube->Close(), "close fresh store");
  return dir.string();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);
  BenchJson report("bench_serving");

  // Baseline: the per-call Updater path. Every delta is applied through the
  // store and committed atomically before the next one — durable, but each
  // call pays the full journal + fsync round trip.
  const std::string sync_dir = FreshStore("sync");
  double sync_per_sec = 0.0;
  {
    auto cube =
        DieOnError(WaveletCube::OpenOnDisk(sync_dir, 256), "open sync store");
    Xoshiro256 rng(7);
    Tensor one(TensorShape({1, 1}));
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSyncDeltas; ++i) {
      one[0] = rng.NextUniform(-1.0, 1.0);
      const std::vector<uint64_t> at{rng.NextBounded(kDim),
                                     rng.NextBounded(kDim)};
      DieOnError(cube->Update(one, at), "sync update");
      DieOnError(cube->Flush(), "sync flush");
    }
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    DieOnError(cube->Close(), "close sync store");
    sync_per_sec = 1000.0 * kSyncDeltas / wall_ms;
    report.Row("synchronous_updater")
        .Field("deltas", uint64_t{kSyncDeltas})
        .Field("wall_ms", wall_ms, 1)
        .Field("updates_per_sec", sync_per_sec, 1);
    std::printf("synchronous per-call updater: %d deltas, %.1f ms, "
                "%.0f updates/sec\n",
                kSyncDeltas, wall_ms, sync_per_sec);
  }

  // Serving path: concurrent writers ack through the group-committed delta
  // log while maintenance workers drain coalesced batches; readers sample
  // merged-query latency the whole time.
  const std::string serve_dir = FreshStore("serve");
  double serve_per_sec = 0.0;
  std::vector<double> read_us;
  {
    ServingCube::Options options;
    options.oversubscribe = true;  // real concurrency on 1-CPU hosts too
    options.num_workers = 2;
    options.drain_min_deltas = 64;
    options.max_delta_age = std::chrono::milliseconds(5);
    auto serving = DieOnError(ServingCube::OpenOnDisk(serve_dir, 256, options),
                              "open serving store");

    std::mutex lat_mu;
    std::atomic<bool> writers_done{false};
    const auto writer = [&](int id) {
      Xoshiro256 rng(100 + static_cast<uint64_t>(id));
      for (int i = 0; i < kServingDeltas / kWriterThreads; ++i) {
        const std::vector<uint64_t> at{rng.NextBounded(kDim),
                                       rng.NextBounded(kDim)};
        DieOnError(serving->Add(at, rng.NextUniform(-1.0, 1.0)),
                   "serving add");
      }
    };
    const auto reader = [&] {
      Xoshiro256 rng(999);
      std::vector<double> local;
      while (!writers_done.load()) {
        const std::vector<uint64_t> at{rng.NextBounded(kDim),
                                       rng.NextBounded(kDim)};
        const auto start = std::chrono::steady_clock::now();
        DieOnError(serving->PointQuery(at).status(), "serving point query");
        local.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count());
        // Sample, don't saturate: a free-spinning reader would monopolize a
        // single-CPU host and measure contention instead of latency.
        std::this_thread::sleep_for(std::chrono::microseconds(250));
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      read_us.insert(read_us.end(), local.begin(), local.end());
    };

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriterThreads; ++w) threads.emplace_back(writer, w);
    std::thread sampler(reader);
    for (auto& t : threads) t.join();
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    writers_done.store(true);
    sampler.join();
    DieOnError(serving->DrainAll(), "final drain");
    const ServingStats stats = serving->stats();
    DieOnError(serving->Close(), "close serving store");

    serve_per_sec = 1000.0 * kServingDeltas / wall_ms;
    report.Row("serving_buffered")
        .Field("deltas", uint64_t{kServingDeltas})
        .Field("writer_threads", uint64_t{kWriterThreads})
        .Field("wall_ms", wall_ms, 1)
        .Field("updates_per_sec", serve_per_sec, 1)
        .Field("speedup_vs_synchronous", serve_per_sec / sync_per_sec, 2)
        .Field("apply_batches", stats.apply_batches)
        .Field("coalesced_deltas", stats.coalesced_deltas)
        .Field("log_appends", stats.log_appends)
        .Field("log_syncs", stats.log_syncs)
        .Field("read_p50_us", Percentile(read_us, 50), 2)
        .Field("read_p99_us", Percentile(read_us, 99), 2);
    std::printf(
        "buffered serving path:        %d deltas, %.1f ms, %.0f updates/sec "
        "(%.1fx)\n",
        kServingDeltas, wall_ms, serve_per_sec, serve_per_sec / sync_per_sec);
    std::printf(
        "reads during maintenance:     %zu samples, p50 %.1f us, p99 %.1f us\n",
        read_us.size(), Percentile(read_us, 50), Percentile(read_us, 99));
    std::printf(
        "maintenance:                  %llu batch(es), %llu coalesced, "
        "%llu log appends in %llu fsync group(s)\n",
        static_cast<unsigned long long>(stats.apply_batches),
        static_cast<unsigned long long>(stats.coalesced_deltas),
        static_cast<unsigned long long>(stats.log_appends),
        static_cast<unsigned long long>(stats.log_syncs));
  }

  std::filesystem::remove_all(sync_dir);
  std::filesystem::remove_all(serve_dir);
  report.Write(json_path);
  return 0;
}
