// Kernel throughput micro-benchmarks (google-benchmark): the in-memory
// primitives every maintenance operation is built from.

#include <benchmark/benchmark.h>

#include "shiftsplit/core/shift_split.h"
#include "shiftsplit/util/random.h"
#include "shiftsplit/wavelet/haar.h"
#include "shiftsplit/wavelet/nonstandard_transform.h"
#include "shiftsplit/wavelet/standard_transform.h"

namespace shiftsplit {
namespace {

std::vector<double> RandomVec(size_t size, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(size);
  for (auto& x : v) x = rng.NextGaussian();
  return v;
}

void BM_ForwardHaar1D(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  auto data = RandomVec(size, 1);
  for (auto _ : state) {
    auto copy = data;
    benchmark::DoNotOptimize(ForwardHaar1D(copy, Normalization::kAverage));
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * size);
}
BENCHMARK(BM_ForwardHaar1D)->Range(1 << 8, 1 << 16);

void BM_InverseHaar1D(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  auto data = RandomVec(size, 2);
  (void)ForwardHaar1D(data, Normalization::kAverage);
  for (auto _ : state) {
    auto copy = data;
    benchmark::DoNotOptimize(InverseHaar1D(copy, Normalization::kAverage));
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * size);
}
BENCHMARK(BM_InverseHaar1D)->Range(1 << 8, 1 << 16);

void BM_ForwardStandard2D(benchmark::State& state) {
  const uint64_t edge = static_cast<uint64_t>(state.range(0));
  Tensor t(TensorShape::Cube(2, edge), RandomVec(edge * edge, 3));
  for (auto _ : state) {
    Tensor copy = t;
    benchmark::DoNotOptimize(ForwardStandard(&copy, Normalization::kAverage));
  }
  state.SetItemsProcessed(state.iterations() * edge * edge);
}
BENCHMARK(BM_ForwardStandard2D)->Range(16, 256);

void BM_ForwardNonstandard2D(benchmark::State& state) {
  const uint64_t edge = static_cast<uint64_t>(state.range(0));
  Tensor t(TensorShape::Cube(2, edge), RandomVec(edge * edge, 4));
  for (auto _ : state) {
    Tensor copy = t;
    benchmark::DoNotOptimize(
        ForwardNonstandard(&copy, Normalization::kAverage));
  }
  state.SetItemsProcessed(state.iterations() * edge * edge);
}
BENCHMARK(BM_ForwardNonstandard2D)->Range(16, 256);

void BM_HaarPyramid(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  auto data = RandomVec(size, 5);
  std::vector<std::vector<double>> pyramid;
  std::vector<double> transform;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HaarPyramid(data, Normalization::kAverage, &pyramid, &transform));
  }
  state.SetItemsProcessed(state.iterations() * size);
}
BENCHMARK(BM_HaarPyramid)->Range(1 << 8, 1 << 14);

void BM_Split1D(benchmark::State& state) {
  const uint32_t n = 30, m = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Split1D(n, m, 12345, 3.25, Normalization::kAverage));
  }
}
BENCHMARK(BM_Split1D)->DenseRange(5, 25, 10);

void BM_ApplyChunk1DInMemory(benchmark::State& state) {
  const uint32_t n = 20, m = static_cast<uint32_t>(state.range(0));
  auto chunk = RandomVec(size_t{1} << m, 6);
  (void)ForwardHaar1D(chunk, Normalization::kAverage);
  std::vector<double> global(size_t{1} << n, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ApplyChunk1D(chunk, n, 7, global, Normalization::kAverage,
                     ApplyMode::kUpdate));
  }
  state.SetItemsProcessed(state.iterations() * (uint64_t{1} << m));
}
BENCHMARK(BM_ApplyChunk1DInMemory)->DenseRange(4, 12, 4);

}  // namespace
}  // namespace shiftsplit

BENCHMARK_MAIN();
