// Table 1 — "Shift-Split of Tiles": number of tiles (disk blocks) touched
// when one dyadic chunk is SHIFT-SPLIT into a tiled store, against the
// paper's closed forms:
//     standard:      SHIFT (M/B)^d,  SPLIT (M/B + ceil(log_B(N/M)))^d - SHIFT
//     non-standard:  SHIFT (M/B)^d,  SPLIT ~ ceil(log_B(N/M)) path tiles
//
// Measured by applying a single chunk to a fresh store with a large pool:
// every touched block is missed (read) exactly once.

#include "bench_util.h"
#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/util/bitops.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

namespace {

Tensor RandomChunk(uint32_t d, uint32_t m, uint64_t seed) {
  TensorShape shape = TensorShape::Cube(d, uint64_t{1} << m);
  Tensor chunk(shape);
  Xoshiro256 rng(seed);
  for (uint64_t i = 0; i < chunk.size(); ++i) chunk[i] = rng.NextDouble();
  return chunk;
}

// Tiles whose subtree intersects the chunk's detail rows (the SHIFT image):
// one root tile on the chunk boundary plus the full per-band tile grids
// below it.
uint64_t SubtreeTiles1D(const TreeTiling& tiling, uint32_t m) {
  const uint32_t n = tiling.n();
  uint64_t tiles = 0;
  for (uint32_t t = 0; t < tiling.num_bands(); ++t) {
    const uint32_t row = tiling.BandRootRow(t);
    if (row + tiling.BandHeight(t) <= n - m) continue;  // above the chunk
    const uint32_t top_row = std::max(row, n - m);
    tiles += uint64_t{1} << (top_row - (n - m));
  }
  return tiles;
}

}  // namespace

int main() {
  std::printf("Table 1: tiles touched by one chunk apply (measured vs "
              "paper's closed form)\n");
  PrintRow({"form", "d", "N", "M", "B", "measured", "shift(M/B)^d",
            "split-extra"},
           13);

  struct Case {
    uint32_t d, n, m, b;
  };
  const Case cases[] = {
      {1, 12, 6, 2}, {1, 16, 8, 3}, {2, 8, 4, 2},
      {2, 10, 6, 2}, {3, 6, 3, 1},  {3, 6, 4, 2},
  };
  for (const Case& c : cases) {
    const uint64_t shift_formula =
        IPow(uint64_t{1} << (c.m > c.b ? c.m - c.b : 0), c.d);
    // Standard form.
    {
      auto bundle = MakeStandardStore(std::vector<uint32_t>(c.d, c.n), c.b,
                                      1u << 18);
      Tensor chunk = RandomChunk(c.d, c.m, c.n);
      std::vector<uint64_t> pos(c.d, (uint64_t{1} << (c.n - c.m)) - 1);
      ApplyOptions options;
      options.maintain_scaling_slots = false;
      bundle.manager->stats().Reset();
      DieOnError(ApplyChunkStandard(chunk, pos,
                                    std::vector<uint32_t>(c.d, c.n),
                                    bundle.store.get(),
                                    Normalization::kAverage, options),
                 "standard apply");
      const uint64_t measured = bundle.manager->stats().block_reads;
      const uint64_t shift_tiles =
          IPow(SubtreeTiles1D(TreeTiling(c.n, c.b), c.m), c.d);
      PrintRow({"std", U(c.d), U(uint64_t{1} << c.n), U(uint64_t{1} << c.m),
                U(uint64_t{1} << c.b), U(measured), U(shift_tiles),
                U(measured - shift_tiles)},
               13);
      (void)shift_formula;
    }
    // Non-standard form.
    {
      auto bundle = MakeNonstandardStore(c.d, c.n, c.b, 1u << 18);
      Tensor chunk = RandomChunk(c.d, c.m, c.n + 1);
      std::vector<uint64_t> pos(c.d, (uint64_t{1} << (c.n - c.m)) - 1);
      ApplyOptions options;
      options.maintain_scaling_slots = false;
      bundle.manager->stats().Reset();
      DieOnError(ApplyChunkNonstandard(chunk, pos, c.n, bundle.store.get(),
                                       Normalization::kAverage, options),
                 "non-standard apply");
      const uint64_t measured = bundle.manager->stats().block_reads;
      // Quadtree subtree tiles: sum over bands below the chunk root.
      const NonstandardTiling& nt =
          *dynamic_cast<const NonstandardTiling*>(&bundle.store->layout());
      uint64_t shift_tiles = 0;
      for (uint32_t t = 0; t < nt.num_bands(); ++t) {
        const uint32_t row = nt.BandRootRow(t);
        const uint32_t height =
            (t + 1 < nt.num_bands() ? nt.BandRootRow(t + 1) : c.n) - row;
        if (row + height <= c.n - c.m) continue;
        const uint32_t top_row = std::max(row, c.n - c.m);
        shift_tiles += IPow(uint64_t{1} << (top_row - (c.n - c.m)), c.d);
      }
      PrintRow({"ns", U(c.d), U(uint64_t{1} << c.n), U(uint64_t{1} << c.m),
                U(uint64_t{1} << c.b), U(measured), U(shift_tiles),
                U(measured - shift_tiles)},
               13);
    }
  }
  std::printf(
      "\nPaper shape check: the SHIFT part dominates and matches the\n"
      "(M/B)^d-style subtree tile count exactly; the SPLIT extra is the\n"
      "short ceil(log_B(N/M))-deep path (standard: its d-fold product with\n"
      "the shift tiles; non-standard: a single path).\n");
  return 0;
}
