// Figure 12 — "Effect of Larger Tiles": block I/O of the SHIFT-SPLIT
// transformation as the dataset grows, for two tile (disk block) sizes and
// both decomposition forms.
//
// Paper setup: d=2, memory 64 MB, tiles of 1 KB and 4 KB, dataset 1..16 GB.
// Scaled-down setup: d=2 squares from 64^2 to 512^2 cells, tiles of
// 16 coefficients (b=2, 128 B) and 256 coefficients (b=4, 2 KB).
//
// Expected shape (paper): block I/O grows linearly with the dataset; the
// larger tile divides it by roughly the capacity ratio; non-standard needs
// fewer blocks than standard.

#include "bench_util.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/data/synthetic.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

namespace {

uint64_t RunStandard(uint32_t n, uint32_t b, uint32_t m) {
  auto dataset =
      MakeUniformDataset(TensorShape::Cube(2, uint64_t{1} << n), 0, 1, n);
  auto bundle = MakeStandardStore({n, n}, b, 1u << 12);
  TransformOptions options;
  options.maintain_scaling_slots = false;
  const TransformResult r = DieOnError(
      TransformDatasetStandard(dataset.get(), m, bundle.store.get(), options),
      "standard");
  return r.store_io.total_blocks();
}

uint64_t RunNonstandard(uint32_t n, uint32_t b, uint32_t m) {
  auto dataset =
      MakeUniformDataset(TensorShape::Cube(2, uint64_t{1} << n), 0, 1, n);
  auto bundle = MakeNonstandardStore(2, n, b, 1u << 12);
  TransformOptions options;
  options.maintain_scaling_slots = false;
  options.zorder = true;
  const TransformResult r = DieOnError(
      TransformDatasetNonstandard(dataset.get(), m, bundle.store.get(),
                                  options),
      "non-standard");
  return r.store_io.total_blocks();
}

}  // namespace

int main() {
  const uint32_t m = 4;  // 16x16-cell chunks (fixed memory, like the paper)
  std::printf(
      "Figure 12: transformation block I/O vs dataset size (d=2, chunk "
      "%ux%u)\n",
      1u << m, 1u << m);
  PrintRow({"cells", "Std(B=4)", "NonStd(B=4)", "Std(B=16)", "NonStd(B=16)"});
  for (uint32_t n = 6; n <= 9; ++n) {
    PrintRow({U(uint64_t{1} << (2 * n)),
              U(RunStandard(n, 2, m)),
              U(RunNonstandard(n, 2, m)),
              U(RunStandard(n, 4, m)),
              U(RunNonstandard(n, 4, m))});
  }
  std::printf(
      "\nPaper shape check: linear growth in the dataset size; the 16x16\n"
      "tile cuts block I/O by ~the capacity ratio vs the 4x4 tile, and the\n"
      "non-standard form stays below the standard form at equal tile size.\n");
  return 0;
}
