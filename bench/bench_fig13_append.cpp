// Figure 13 — "SHIFT-SPLIT in Appending": the PRECIPITATION cube receives
// one month of data at a time; the per-append block I/O is flat and cheap,
// with jumps at the domain expansions, and larger tiles shrink the jumps.
//
// Paper setup: 8 x 8 x time cube, 45 years of monthly appends, tiles of
// 2 KB / 4 KB / 8 KB. Setup here: the same 8 x 8 x (32/month) grid over 48
// months, with three tile edge sizes (B = 2, 4, 8 per dimension).

#include "bench_util.h"
#include "shiftsplit/core/appender.h"
#include "shiftsplit/data/precipitation.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

namespace {

std::vector<uint64_t> Run(uint32_t b, uint64_t months) {
  Appender::Options options;
  options.b = b;
  options.pool_blocks = 512;
  auto appender = DieOnError(
      Appender::Create({3, 3, 5}, /*append_dim=*/2, options), "appender");
  std::vector<uint64_t> per_month;
  uint64_t last = 0;
  PrecipitationOptions data_options;
  for (uint64_t month = 0; month < months; ++month) {
    DieOnError(appender->Append(MakePrecipitationMonth(month, data_options)),
               "append");
    const uint64_t now = appender->total_io().total_blocks();
    per_month.push_back(now - last);
    last = now;
  }
  return per_month;
}

}  // namespace

int main() {
  const uint64_t kMonths = 48;
  std::printf(
      "Figure 13: per-append block I/O over time (8x8 grid, 32-day months,\n"
      "appending rate = one month). Jumps mark wavelet-domain expansions.\n");
  PrintRow({"month", "tile B=2^3", "tile B=4^3", "tile B=8^3"});
  const auto b2 = Run(1, kMonths);
  const auto b4 = Run(2, kMonths);
  const auto b8 = Run(3, kMonths);
  for (uint64_t month = 0; month < kMonths; ++month) {
    PrintRow({U(month + 1), U(b2[month]), U(b4[month]), U(b8[month])});
  }
  std::printf(
      "\nPaper shape check: cost is low and flat between expansions; the\n"
      "expansion spikes (months 2, 3, 5, 9, 17, 33) shrink as the tile\n"
      "grows, so \"this expansion process is not such a dominating factor,\n"
      "especially for larger disk block sizes\".\n");
  return 0;
}
