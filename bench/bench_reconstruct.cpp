// Result 6 — partial reconstruction: coefficient reads to extract a dyadic
// range of size M^d from a transformed store, for SHIFT-SPLIT inverse
// (O((M + log(N/M))^d) standard / O(M^d + (2^d-1) log(N/M)) non-standard)
// versus the two naive strategies of §5.4's dilemma: point-by-point
// (O(M^d log^d N)) and full decompression (O(N^d)).

#include "bench_util.h"
#include "shiftsplit/baseline/naive_reconstruct.h"
#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

int main() {
  const uint32_t d = 2, n = 8, b = 2;
  const std::vector<uint32_t> log_dims(d, n);

  // Load a transformed store once.
  TensorShape shape = TensorShape::Cube(d, uint64_t{1} << n);
  Tensor data(shape);
  Xoshiro256 rng(9);
  for (uint64_t i = 0; i < data.size(); ++i) data[i] = rng.NextGaussian();
  auto std_bundle = MakeStandardStore(log_dims, b, 1u << 14);
  auto ns_bundle = MakeNonstandardStore(d, n, b, 1u << 14);
  {
    std::vector<uint64_t> zero(d, 0);
    DieOnError(ApplyChunkStandard(data, zero, log_dims,
                                  std_bundle.store.get(),
                                  Normalization::kAverage),
               "load standard");
    DieOnError(ApplyChunkNonstandard(data, zero, n, ns_bundle.store.get(),
                                     Normalization::kAverage),
               "load non-standard");
  }

  std::printf(
      "Result 6: coefficient reads to extract an M^2 dyadic range from a\n"
      "%llux%llu transform\n",
      static_cast<unsigned long long>(shape.dim(0)),
      static_cast<unsigned long long>(shape.dim(1)));
  PrintRow({"M", "SS-std", "SS-ns", "pointwise", "full-decomp"});
  for (uint32_t m = 1; m < n; ++m) {
    const std::vector<uint32_t> range_log(d, m);
    const std::vector<uint64_t> range_pos(d,
                                          (uint64_t{1} << (n - m)) - 1);
    std::vector<uint64_t> lo(d), hi(d);
    for (uint32_t i = 0; i < d; ++i) {
      lo[i] = range_pos[i] << m;
      hi[i] = lo[i] + (uint64_t{1} << m) - 1;
    }

    std_bundle.manager->stats().Reset();
    DieOnError(ReconstructDyadicStandard(std_bundle.store.get(), log_dims,
                                         range_log, range_pos,
                                         Normalization::kAverage)
                   .status(),
               "ss reconstruct");
    const uint64_t ss_std = std_bundle.manager->stats().coeff_reads;

    ns_bundle.manager->stats().Reset();
    DieOnError(ReconstructDyadicNonstandard(ns_bundle.store.get(), n, m,
                                            range_pos,
                                            Normalization::kAverage)
                   .status(),
               "ns reconstruct");
    const uint64_t ss_ns = ns_bundle.manager->stats().coeff_reads;

    std_bundle.manager->stats().Reset();
    DieOnError(PointwiseReconstructStandard(std_bundle.store.get(), log_dims,
                                            lo, hi, Normalization::kAverage)
                   .status(),
               "pointwise");
    const uint64_t pointwise = std_bundle.manager->stats().coeff_reads;

    std_bundle.manager->stats().Reset();
    DieOnError(FullReconstructExtractStandard(std_bundle.store.get(),
                                              log_dims, lo, hi,
                                              Normalization::kAverage)
                   .status(),
               "full");
    const uint64_t full = std_bundle.manager->stats().coeff_reads;

    PrintRow({U(uint64_t{1} << m), U(ss_std), U(ss_ns), U(pointwise),
              U(full)});
  }
  std::printf(
      "\nPaper shape check: SHIFT-SPLIT reconstruction beats point-by-point\n"
      "everywhere (log^d-factor) and beats full decompression until the\n"
      "range approaches the dataset; the non-standard inverse needs the\n"
      "fewest reads (single split path).\n");
  return 0;
}
