// Ablation — the §3 block-allocation claim: the subtree tiling minimizes
// the blocks a query touches. Point queries and range sums on the same
// transformed data under (a) naive row-major allocation, (b) subtree tiling
// walking full paths, (c) subtree tiling using the stored redundant
// scalings (slot mode). Cold cache per query (pool cleared).

#include <chrono>

#include "bench_util.h"
#include "shiftsplit/core/md_shift_split.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

namespace {

struct Workload {
  std::vector<std::vector<uint64_t>> points;
  std::vector<std::pair<std::vector<uint64_t>, std::vector<uint64_t>>> ranges;
};

Workload MakeWorkload(uint32_t d, uint32_t n, int count) {
  Workload w;
  Xoshiro256 rng(11);
  for (int i = 0; i < count; ++i) {
    std::vector<uint64_t> p(d), q(d);
    for (uint32_t j = 0; j < d; ++j) {
      p[j] = rng.NextBounded(uint64_t{1} << n);
      q[j] = rng.NextBounded(uint64_t{1} << n);
    }
    w.points.push_back(p);
    std::vector<uint64_t> lo(d), hi(d);
    for (uint32_t j = 0; j < d; ++j) {
      lo[j] = std::min(p[j], q[j]);
      hi[j] = std::max(p[j], q[j]);
    }
    w.ranges.emplace_back(lo, hi);
  }
  return w;
}

}  // namespace

int main() {
  const uint32_t d = 2, n = 8, b = 2;
  const std::vector<uint32_t> log_dims(d, n);
  const int kQueries = 200;

  Tensor data(TensorShape::Cube(d, uint64_t{1} << n));
  Xoshiro256 rng(10);
  for (uint64_t i = 0; i < data.size(); ++i) data[i] = rng.NextGaussian();
  std::vector<uint64_t> zero(d, 0);

  auto naive = MakeNaiveStore(log_dims, uint64_t{1} << (b * d), 1u << 12);
  DieOnError(ApplyChunkStandard(data, zero, log_dims, naive.store.get(),
                                Normalization::kAverage),
             "load naive");
  auto tiled = MakeStandardStore(log_dims, b, 1u << 12);
  DieOnError(ApplyChunkStandard(data, zero, log_dims, tiled.store.get(),
                                Normalization::kAverage),
             "load tiled");

  const Workload workload = MakeWorkload(d, n, kQueries);

  auto run_points = [&](StoreBundle& bundle, const QueryOptions& options) {
    uint64_t blocks = 0;
    for (const auto& p : workload.points) {
      DieOnError(bundle.store->pool().Clear(), "clear");
      bundle.manager->stats().Reset();
      DieOnError(
          PointQueryStandard(bundle.store.get(), log_dims, p, options)
              .status(),
          "point query");
      blocks += bundle.manager->stats().block_reads;
    }
    return static_cast<double>(blocks) / kQueries;
  };
  auto run_ranges = [&](StoreBundle& bundle, const QueryOptions& options) {
    uint64_t blocks = 0;
    for (const auto& [lo, hi] : workload.ranges) {
      DieOnError(bundle.store->pool().Clear(), "clear");
      bundle.manager->stats().Reset();
      DieOnError(RangeSumStandard(bundle.store.get(), log_dims, lo, hi,
                                  options)
                     .status(),
                 "range query");
      blocks += bundle.manager->stats().block_reads;
    }
    return static_cast<double>(blocks) / kQueries;
  };

  QueryOptions path_mode;
  QueryOptions slot_mode;
  slot_mode.use_scaling_slots = true;

  std::printf(
      "Query-cost ablation: blocks read per cold query (d=2, N=%u, tile "
      "%ux%u, %d queries)\n",
      1u << n, 1u << b, 1u << b, kQueries);
  PrintRow({"allocation", "point q", "range sum"}, 18);
  PrintRow({"row-major", F(run_points(naive, path_mode)),
            F(run_ranges(naive, path_mode))},
           18);
  PrintRow({"tiling (paths)", F(run_points(tiled, path_mode)),
            F(run_ranges(tiled, path_mode))},
           18);
  PrintRow({"tiling (scalings)", F(run_points(tiled, slot_mode)),
            F(run_ranges(tiled, path_mode))},
           18);
  std::printf(
      "\nClaim check (paper §3): the subtree tiling groups each root path\n"
      "into ceil(n/b) blocks per dimension, far below the row-major layout's\n"
      "scatter; the stored subtree-root scalings cut a point query to a\n"
      "single block.\n");

  // Resilience tax: per-query wall latency of cold range sums with no
  // context, with an armed (generous) deadline — the cost of the deadline/
  // cancellation gates on the fetch path — and with a tight deadline under
  // the approximate path, where queries degrade instead of overrunning.
  auto run_latency = [&](OperationContext* (*make_ctx)(OperationContext&),
                         bool resilient, uint64_t* degraded) {
    std::vector<double> us;
    us.reserve(workload.ranges.size());
    for (const auto& [lo, hi] : workload.ranges) {
      DieOnError(tiled.store->pool().Clear(), "clear");
      OperationContext storage;
      QueryOptions options;
      options.context = make_ctx(storage);
      const auto start = std::chrono::steady_clock::now();
      if (resilient) {
        const DegradedResult r = DieOnError(
            RangeSumStandardResilient(tiled.store.get(), log_dims, lo, hi,
                                      options),
            "resilient range query");
        if (degraded != nullptr && !r.exact()) ++*degraded;
      } else {
        DieOnError(RangeSumStandard(tiled.store.get(), log_dims, lo, hi,
                                    options)
                       .status(),
                   "range query");
      }
      us.push_back(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start)
                       .count());
    }
    return us;
  };

  const auto no_ctx = [](OperationContext&) -> OperationContext* {
    return nullptr;
  };
  const auto generous = [](OperationContext& ctx) -> OperationContext* {
    ctx.set_timeout(std::chrono::seconds(10));
    return &ctx;
  };
  const auto tight = [](OperationContext& ctx) -> OperationContext* {
    ctx.set_timeout(std::chrono::microseconds(50));
    return &ctx;
  };

  std::printf("\nQuery latency, cold range sums (%d queries, microseconds)\n",
              kQueries);
  PrintRow({"configuration", "p50 us", "p99 us", "degraded"}, 22);
  uint64_t degraded = 0;
  auto base = run_latency(no_ctx, false, nullptr);
  PrintRow({"no deadline", F(Percentile(base, 50)), F(Percentile(base, 99)),
            "-"},
           22);
  auto gated = run_latency(generous, false, nullptr);
  PrintRow({"10 s deadline", F(Percentile(gated, 50)),
            F(Percentile(gated, 99)), "-"},
           22);
  auto approx = run_latency(tight, true, &degraded);
  PrintRow({"50 us deadline, approx", F(Percentile(approx, 50)),
            F(Percentile(approx, 99)), U(degraded)},
           22);
  std::printf(
      "\nThe deadline gate is a branch per block fetch: the armed-deadline\n"
      "row should sit within noise of the no-deadline row, while the tight\n"
      "deadline caps tail latency by degrading to bounded approximations.\n");
  return 0;
}
