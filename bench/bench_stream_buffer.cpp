// §6.3 / Result 3 — stream synopsis maintenance cost: per-item coefficient
// touches of the buffered SHIFT-SPLIT maintainer versus Gilbert et al.'s
// per-item maintainer, as the buffer grows ("the significant improvement in
// the update cost ... by employing additional memory as buffer").
//
// Expected shape: Gilbert flat at log N + 1; SHIFT-SPLIT falling as
// 1 + (1/B) log(N/B) towards ~1 touch per item, at the cost of B + log(N/B)
// extra memory.

#include <cmath>

#include "bench_util.h"
#include "shiftsplit/baseline/gilbert_stream.h"
#include "shiftsplit/core/stream_synopsis.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

int main() {
  const uint32_t n = 18;  // 262144-item stream
  const uint64_t kItems = uint64_t{1} << n;
  const uint64_t kK = 128;

  std::vector<double> trace(kItems);
  Xoshiro256 rng(6);
  for (auto& x : trace) x = rng.NextGaussian();

  std::printf(
      "Result 3: K-term synopsis maintenance (N=%llu, K=%llu)\n",
      static_cast<unsigned long long>(kItems),
      static_cast<unsigned long long>(kK));
  PrintRow({"buffer B", "touches/item", "predicted", "open coeffs"});

  {
    GilbertStreamSynopsis gilbert(n, kK);
    for (double x : trace) DieOnError(gilbert.Push(x), "push");
    DieOnError(gilbert.Finish(), "finish");
    PrintRow({"Gilbert(1)",
              F(static_cast<double>(gilbert.coeff_touches()) / kItems, 3),
              F(n + 1.0, 3), U(n + 1)});
  }
  for (uint32_t b = 1; b <= 12; b += 1) {
    BufferedStreamSynopsis stream(n, kK, b);
    uint64_t max_open = 0;
    for (double x : trace) {
      DieOnError(stream.Push(x), "push");
      max_open = std::max(max_open, stream.open_coefficients());
    }
    DieOnError(stream.Finish(), "finish");
    const double measured =
        static_cast<double>(stream.coeff_touches()) / kItems;
    const double predicted =
        (std::pow(2.0, b) - 1 + (n - b + 1)) / std::pow(2.0, b);
    PrintRow({U(uint64_t{1} << b), F(measured, 3), F(predicted, 3),
              U(max_open)});
  }
  std::printf(
      "\nPaper shape check: per-item cost falls from log N + 1 towards ~1 as"
      "\nthe buffer grows — Result 3's O(1 + (1/B) log(N/B)) — while the\n"
      "extra open state stays at the log(N/B) crest.\n");
  return 0;
}
