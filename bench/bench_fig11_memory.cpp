// Figure 11 — "Effect of Larger Memory": transformation I/O (coefficients)
// of the 4-d TEMPERATURE cube as the memory budget grows, for Vitter et
// al., SHIFT-SPLIT standard and SHIFT-SPLIT non-standard.
//
// Paper setup: d=4, 16 GB cube, memory 2..16 MB. Scaled-down setup here:
// a 16^4 hypercube (synthetic TEMPERATURE; I/O counts depend only on the
// shapes) with the memory budget swept as the chunk volume M^d; I/O is
// reported in coefficients like the paper's y-axis (store reads+writes plus
// the one-pass read of the source data).
//
// Expected shape (paper): Vitter flat and highest; SS-Standard decreasing
// markedly with memory; SS-Non-Standard flat and lowest.

#include "bench_util.h"
#include "shiftsplit/baseline/vitter_transform.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/data/temperature.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

int main() {
  const uint32_t d = 4, n = 4, b = 1;  // 16^4 cube = 65536 cells
  TemperatureOptions data_options;
  data_options.log_lat = n;
  data_options.log_lon = n;
  data_options.log_alt = n;
  data_options.log_time = n;
  const std::vector<uint32_t> log_dims(d, n);

  std::printf("Figure 11: transformation I/O vs memory (d=%u, N=%u^4 cells)\n",
              d, 1u << n);
  PrintRow({"memory(coeff)", "Vitter", "SS-Standard", "SS-NonStd"});

  // Vitter's cost is memory-insensitive; measure it once.
  uint64_t vitter_io = 0;
  {
    auto dataset = MakeTemperatureDataset(data_options);
    auto bundle = MakeNaiveStore(log_dims, uint64_t{1} << (b * d), 512);
    const TransformResult r =
        DieOnError(VitterTransformStandard(dataset.get(), bundle.store.get(),
                                           Normalization::kAverage),
                   "vitter");
    vitter_io = r.store_io.total_coeffs() + r.cells_read;
  }

  for (uint32_t m = 1; m <= n; ++m) {
    TransformOptions options;
    options.maintain_scaling_slots = false;  // count primary I/O, like the paper

    auto std_dataset = MakeTemperatureDataset(data_options);
    auto std_bundle = MakeStandardStore(log_dims, b, 4096);
    const TransformResult std_r = DieOnError(
        TransformDatasetStandard(std_dataset.get(), m, std_bundle.store.get(),
                                 options),
        "standard");

    auto ns_dataset = MakeTemperatureDataset(data_options);
    auto ns_bundle = MakeNonstandardStore(d, n, b, 4096);
    TransformOptions ns_options = options;
    ns_options.zorder = true;
    const TransformResult ns_r = DieOnError(
        TransformDatasetNonstandard(ns_dataset.get(), m, ns_bundle.store.get(),
                                    ns_options),
        "non-standard");

    PrintRow({U(uint64_t{1} << (m * d)), U(vitter_io),
              U(std_r.store_io.total_coeffs() + std_r.cells_read),
              U(ns_r.store_io.total_coeffs() + ns_r.cells_read)});
  }
  std::printf(
      "\nPaper shape check: SS-Standard falls steeply with memory;\n"
      "SS-Non-Standard stays flat and lowest; Vitter stays flat and is beaten"
      "\nby both once the chunk holds a few coefficients per dimension.\n");
  return 0;
}
