// Real-device run: the Figure-12-style transformation workload executed on
// the POSIX file backend with wall-clock timing, plus the analytic
// disk-model estimate for a 2005-era drive (the paper's hardware
// generation) derived from the identical block counts. Demonstrates that
// the experiments are "accurate implementations of the operations on real
// disks with real disk blocks".

#include <chrono>
#include <filesystem>

#include "bench_util.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/storage/disk_model.h"
#include "shiftsplit/storage/file_block_manager.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

int main() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "shiftsplit_bench_disk";
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::printf(
      "Real-file backend: standard-form transformation, wall clock vs the\n"
      "2005-era disk model applied to the same block counts (d=2, chunk\n"
      "16x16, tile 8x8)\n");
  PrintRow({"cells", "blocks", "wall ms", "2005-disk ms", "ssd ms"});
  for (uint32_t n = 7; n <= 9; ++n) {
    auto dataset =
        MakeUniformDataset(TensorShape::Cube(2, uint64_t{1} << n), 0, 1, n);
    auto layout =
        std::make_unique<StandardTiling>(std::vector<uint32_t>{n, n}, 3);
    const double block_bytes =
        static_cast<double>(layout->block_capacity()) * sizeof(double);
    const std::string path =
        (dir / ("n" + std::to_string(n) + ".blocks")).string();
    auto manager = DieOnError(
        FileBlockManager::Open(path, layout->block_capacity()), "open");
    auto store = DieOnError(
        TiledStore::Create(std::move(layout), manager.get(), 1u << 10),
        "store");
    TransformOptions options;
    options.maintain_scaling_slots = false;

    const auto start = std::chrono::steady_clock::now();
    const TransformResult result = DieOnError(
        TransformDatasetStandard(dataset.get(), 4, store.get(), options),
        "transform");
    DieOnError(store->Close(), "close");
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    PrintRow({U(uint64_t{1} << (2 * n)),
              U(result.store_io.total_blocks()), F(wall_ms, 1),
              F(DiskModel::Circa2005(block_bytes).EstimateMs(result.store_io),
                1),
              F(DiskModel::ModernSsd(block_bytes).EstimateMs(result.store_io),
                1)});
  }
  fs::remove_all(dir);
  std::printf(
      "\nNote: wall clock reflects this machine's page cache; the model\n"
      "columns are what the identical block counts cost on the paper's\n"
      "hardware generation vs a modern SSD — the count reductions the\n"
      "library optimizes for translate directly into device time.\n");
  return 0;
}
