// Table 2 — "I/O Complexities": measured transformation cost of the three
// methods as the dataset grows, in both coefficient units and block units,
// next to the closed forms the paper tabulates:
//     Vitter et al. (standard):   O(N^d log N)          [measured ~ d N^d]
//     Shift-Split (standard):     O(N^d + (N/M)^d log(N/M)) coefficients,
//                                 /B^d .. with log_B in blocks
//     Shift-Split (non-standard): O(N^d) coefficients, O((N/B)^d) blocks

#include "bench_util.h"
#include "shiftsplit/baseline/vitter_transform.h"
#include "shiftsplit/core/chunked_transform.h"
#include "shiftsplit/data/synthetic.h"
#include "shiftsplit/util/bitops.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

int main() {
  const uint32_t d = 2, m = 4, b = 2;
  std::printf(
      "Table 2: measured I/O of the three transformation methods (d=2,\n"
      "chunk %u^2, tile %u^2); coefficient and block units\n",
      1u << m, 1u << b);
  PrintRow({"N^d", "Vitter/c", "SS-std/c", "SS-ns/c", "Vitter/b", "SS-std/b",
            "SS-ns/b"},
           11);
  for (uint32_t n = 6; n <= 9; ++n) {
    const TensorShape shape = TensorShape::Cube(d, uint64_t{1} << n);
    const std::vector<uint32_t> log_dims(d, n);

    auto v_data = MakeUniformDataset(shape, 0, 1, n);
    auto v_bundle = MakeNaiveStore(log_dims, uint64_t{1} << (b * d), 64);
    const TransformResult vitter = DieOnError(
        VitterTransformStandard(v_data.get(), v_bundle.store.get(),
                                Normalization::kAverage),
        "vitter");

    TransformOptions options;
    options.maintain_scaling_slots = false;
    auto s_data = MakeUniformDataset(shape, 0, 1, n);
    auto s_bundle = MakeStandardStore(log_dims, b, 1u << 12);
    const TransformResult ss_std = DieOnError(
        TransformDatasetStandard(s_data.get(), m, s_bundle.store.get(),
                                 options),
        "ss standard");

    TransformOptions ns_options = options;
    ns_options.zorder = true;
    auto n_data = MakeUniformDataset(shape, 0, 1, n);
    auto n_bundle = MakeNonstandardStore(d, n, b, 1u << 12);
    const TransformResult ss_ns = DieOnError(
        TransformDatasetNonstandard(n_data.get(), m, n_bundle.store.get(),
                                    ns_options),
        "ss non-standard");

    PrintRow({U(shape.num_elements()), U(vitter.store_io.total_coeffs()),
              U(ss_std.store_io.total_coeffs()),
              U(ss_ns.store_io.total_coeffs()),
              U(vitter.store_io.total_blocks()),
              U(ss_std.store_io.total_blocks()),
              U(ss_ns.store_io.total_blocks())},
             11);
  }
  std::printf(
      "\nPaper shape check: all three grow linearly in N^d; Vitter carries\n"
      "the extra ~d factor in coefficients (and a log factor in blocks when\n"
      "the pool is starved); SS-non-standard achieves ~1 write per\n"
      "coefficient and ~(N/B)^d blocks — the Table 2 ordering\n"
      "Vitter > SS-standard > SS-non-standard at every size.\n");
  return 0;
}
