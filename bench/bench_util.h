// Shared helpers for the benchmark harness: store construction and aligned
// table printing.

#ifndef SHIFTSPLIT_BENCH_BENCH_UTIL_H_
#define SHIFTSPLIT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "shiftsplit/storage/memory_block_manager.h"
#include "shiftsplit/tile/naive_tiling.h"
#include "shiftsplit/tile/nonstandard_tiling.h"
#include "shiftsplit/tile/standard_tiling.h"
#include "shiftsplit/tile/tiled_store.h"

namespace shiftsplit::bench {

/// A store plus the device backing it (the device owns the I/O counters).
struct StoreBundle {
  std::unique_ptr<MemoryBlockManager> manager;
  std::unique_ptr<TiledStore> store;
};

inline void DieOnError(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T DieOnError(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline StoreBundle MakeStore(std::unique_ptr<TileLayout> layout,
                             uint64_t pool_blocks) {
  StoreBundle bundle;
  bundle.manager =
      std::make_unique<MemoryBlockManager>(layout->block_capacity());
  bundle.store = DieOnError(
      TiledStore::Create(std::move(layout), bundle.manager.get(), pool_blocks),
      "store creation");
  return bundle;
}

inline StoreBundle MakeStandardStore(std::vector<uint32_t> log_dims,
                                     uint32_t b, uint64_t pool_blocks) {
  return MakeStore(std::make_unique<StandardTiling>(std::move(log_dims), b),
                   pool_blocks);
}

inline StoreBundle MakeNonstandardStore(uint32_t d, uint32_t n, uint32_t b,
                                        uint64_t pool_blocks) {
  return MakeStore(std::make_unique<NonstandardTiling>(d, n, b), pool_blocks);
}

inline StoreBundle MakeNaiveStore(std::vector<uint32_t> log_dims,
                                  uint64_t block_capacity,
                                  uint64_t pool_blocks) {
  return MakeStore(
      std::make_unique<NaiveTiling>(std::move(log_dims), block_capacity),
      pool_blocks);
}

/// Prints a row of right-aligned cells under a previously printed header.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%*s", width, cell.c_str());
  std::printf("\n");
}

/// The p-th percentile (0-100) of a sample, linearly interpolated between
/// order statistics; sorts a copy. Used for query-latency p50/p99 rows.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank =
      p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

inline std::string U(uint64_t v) { return std::to_string(v); }

inline std::string F(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Machine-readable benchmark output for `--json <path>`: one object per
/// file, `{"name": ..., "results": [{"config": ..., <fields>}, ...]}`, so CI
/// can diff wall times and I/O counters across runs. Row() starts a result
/// object; Field() appends counters to the current one; Write() is a no-op
/// without a path, so benches stay zero-configuration by default.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson& Row(const std::string& config) {
    rows_.push_back("\"config\": \"" + config + "\"");
    return *this;
  }
  BenchJson& Field(const std::string& key, uint64_t value) {
    return Raw(key, std::to_string(value));
  }
  BenchJson& Field(const std::string& key, double value, int precision = 3) {
    return Raw(key, F(value, precision));
  }
  BenchJson& Field(const std::string& key, const std::string& value) {
    return Raw(key, "\"" + value + "\"");
  }
  BenchJson& Field(const std::string& key, bool value) {
    return Raw(key, value ? "true" : "false");
  }

  void Write(const std::string& path) const {
    if (path.empty()) return;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    std::fprintf(f, "{\"name\": \"%s\", \"results\": [\n", name_.c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  {%s}%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  BenchJson& Raw(const std::string& key, std::string rendered) {
    if (rows_.empty()) {
      std::fprintf(stderr,
                   "BenchJson: Field(\"%s\") before any Row(); start a result "
                   "object first\n",
                   key.c_str());
      std::exit(1);
    }
    rows_.back() += ", \"" + key + "\": " + std::move(rendered);
    return *this;
  }

  std::string name_;
  std::vector<std::string> rows_;
};

/// Parses the one flag the JSON-emitting benches share. Accepts exactly two
/// argv shapes — no arguments, or the pair `--json <path>` — and reports
/// anything else via the false return. `*out_path` is set to the path, or to
/// "" for the bare invocation. Split from the exiting wrapper below so the
/// accept/reject matrix is unit-testable.
inline bool TryParseJsonPath(int argc, char** argv, std::string* out_path) {
  out_path->clear();
  if (argc <= 1) return true;
  if (argc != 3) return false;
  if (std::string(argv[1]) != "--json") return false;
  *out_path = argv[2];
  return !out_path->empty();
}

/// Exits on misuse so a typo can't silently discard the requested report —
/// every token must be part of the `--json <path>` pair; stray arguments
/// anywhere in argv are rejected, not ignored.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  std::string path;
  if (!TryParseJsonPath(argc, argv, &path)) {
    std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
    std::exit(2);
  }
  return path;
}

}  // namespace shiftsplit::bench

#endif  // SHIFTSPLIT_BENCH_BENCH_UTIL_H_
