// Network front-end load generator (DESIGN.md §13): an open-loop client
// fleet drives the TCP CubeServer over loopback and reports what a tenant
// actually sees — end-to-end wire latency including queueing, not the
// handler time a closed-loop harness would flatter.
//
// Per configuration (monolithic and 4-shard store) and mix (point-only and
// 90/10 point/update), the bench first finds the closed-loop saturation
// throughput (N blocking clients back to back), then replays the mix
// open-loop at a fixed fraction of that rate: each client thread draws
// Poisson arrivals (exponential interarrival gaps) against a wall-clock
// schedule and measures every request from its *scheduled* send time, so a
// stalled server keeps accumulating latency instead of silently slowing
// the arrival process (no coordinated omission). Keys are Zipf-skewed
// (Gray's bounded sampler, YCSB-style theta) — a realistic hot set, and the
// worst case for a monolithic cube's exclusive drain latch.
//
// The final row arms a per-request deadline at an offered rate *above*
// saturation. The budget is end-to-end, anchored at the scheduled
// arrival: a request whose budget expired while waiting its turn is shed
// client-side (counted kDeadlineExceeded, never sent), and the remainder
// rides in the frame header so the server's own admission and deadline
// checks bound whatever queueing is left. Overload must degrade into
// fast rejections with a bounded success tail, not an unbounded queue.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "shiftsplit/core/wavelet_cube.h"
#include "shiftsplit/net/cube_client.h"
#include "shiftsplit/net/cube_registry.h"
#include "shiftsplit/net/cube_server.h"
#include "shiftsplit/service/sharded_cube.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

namespace {

constexpr uint32_t kLogDim = 5;  // 32 x 32 domain
constexpr uint64_t kDim = uint64_t{1} << kLogDim;
constexpr uint64_t kCells = kDim * kDim;
constexpr double kZipfTheta = 0.99;  // YCSB's default hot-set skew
constexpr int kClosedThreads = 4;
constexpr int kOpenThreads = 2;
constexpr double kSaturationSecs = 2.0;
constexpr double kOpenLoopSecs = 4.0;
constexpr double kOpenLoopFraction = 0.7;   // offered / saturation
constexpr double kOverloadFraction = 1.3;   // the armed-deadline row
constexpr uint32_t kArmedDeadlineMs = 25;
constexpr int kSeedWrites = 256;

std::string FreshDir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("shiftsplit_bench_net_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// Zipf rank -> cell coordinates. The rank is used directly as a row-major
// cell index: hot ranks cluster in low rows, which keeps the hot set inside
// one shard of a sharded store — the interesting (worst) placement.
std::vector<uint64_t> CellForRank(uint64_t rank) {
  return {rank >> kLogDim, rank & (kDim - 1)};
}

struct MixOutcome {
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t unavailable = 0;
  std::vector<double> latency_us;
};

// One client's share of a workload: draws Zipf keys and issues the
// point/update mix. `update_pct` of requests are one-cell accumulates
// (durably acked), the rest exact point queries. Unexpected errors die;
// overload outcomes are counted when `tolerate_overload` (the armed row).
class MixRunner {
 public:
  MixRunner(uint16_t port, uint64_t seed, int update_pct,
            bool tolerate_overload)
      : client_("127.0.0.1", port),
        rng_(seed),
        zipf_(kCells, kZipfTheta),
        update_pct_(update_pct),
        tolerate_overload_(tolerate_overload) {}

  bool IssueOne(uint32_t deadline_ms, MixOutcome* out) {
    const auto cell = CellForRank(zipf_.Sample(rng_));
    Status status;
    if (static_cast<int>(rng_.NextBounded(100)) < update_pct_) {
      status = client_.Add("bench", cell, 0.25, deadline_ms);
    } else {
      status = client_.Point("bench", cell, deadline_ms).status();
    }
    if (status.ok()) {
      ++out->ok;
      return true;
    }
    if (tolerate_overload_) {
      if (status.code() == StatusCode::kDeadlineExceeded) {
        ++out->deadline_exceeded;
        return false;
      }
      if (status.code() == StatusCode::kUnavailable) {
        ++out->unavailable;
        return false;
      }
    }
    DieOnError(status, "wire request");
    return false;
  }

 private:
  net::CubeClient client_;
  Xoshiro256 rng_;
  BoundedZipfSampler zipf_;
  int update_pct_;
  bool tolerate_overload_;
};

// Closed loop: every thread fires back to back for the duration; the
// aggregate rate is the saturation throughput of this config + mix.
double MeasureSaturation(uint16_t port, int update_pct, uint64_t seed) {
  std::atomic<uint64_t> total{0};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(kSaturationSecs);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClosedThreads; ++t) {
    threads.emplace_back([&, t] {
      MixRunner runner(port, seed + static_cast<uint64_t>(t), update_pct,
                       /*tolerate_overload=*/false);
      MixOutcome out;
      while (std::chrono::steady_clock::now() < deadline) {
        runner.IssueOne(/*deadline_ms=*/0, &out);
      }
      total.fetch_add(out.ok);
    });
  }
  for (auto& t : threads) t.join();
  return static_cast<double>(total.load()) / kSaturationSecs;
}

// Open loop: arrivals follow a Poisson process pinned to the wall clock.
// Latency is measured from the scheduled arrival, so time spent waiting
// behind a slow server counts against it. With `deadline_ms` armed the
// budget starts at the scheduled arrival too: a request that expired
// before its turn is shed (kDeadlineExceeded, never sent) and the rest
// carry only the leftover budget in the frame header. Latency samples
// cover successful requests — the failures are priced by their counters.
MixOutcome RunOpenLoop(uint16_t port, int update_pct, double offered_per_sec,
                       uint32_t deadline_ms, bool tolerate_overload,
                       uint64_t seed) {
  MixOutcome merged;
  std::mutex mu;
  const double per_thread = offered_per_sec / kOpenThreads;
  std::vector<std::thread> threads;
  for (int t = 0; t < kOpenThreads; ++t) {
    threads.emplace_back([&, t] {
      MixRunner runner(port, seed + 31 * static_cast<uint64_t>(t + 1),
                       update_pct, tolerate_overload);
      Xoshiro256 arrivals(seed ^ (0xa5a5ull + static_cast<uint64_t>(t)));
      MixOutcome out;
      const auto start = std::chrono::steady_clock::now();
      double next_secs = 0.0;
      while (true) {
        next_secs += arrivals.NextExponential(1.0 / per_thread);
        if (next_secs >= kOpenLoopSecs) break;
        const auto scheduled =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(next_secs));
        std::this_thread::sleep_until(scheduled);  // no-op when behind
        uint32_t budget_ms = deadline_ms;
        if (deadline_ms > 0) {
          const double late_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - scheduled)
                  .count();
          if (late_ms >= static_cast<double>(deadline_ms)) {
            ++out.deadline_exceeded;  // shed: expired while queued
            continue;
          }
          budget_ms = deadline_ms - static_cast<uint32_t>(late_ms);
        }
        if (runner.IssueOne(budget_ms, &out)) {
          out.latency_us.push_back(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - scheduled)
                  .count());
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      merged.ok += out.ok;
      merged.deadline_exceeded += out.deadline_exceeded;
      merged.unavailable += out.unavailable;
      merged.latency_us.insert(merged.latency_us.end(),
                               out.latency_us.begin(), out.latency_us.end());
    });
  }
  for (auto& t : threads) t.join();
  return merged;
}

void ReportRow(BenchJson& report, const std::string& config, uint32_t shards,
               int update_pct, double saturation, double offered,
               uint32_t deadline_ms, const MixOutcome& out) {
  const uint64_t issued =
      out.ok + out.deadline_exceeded + out.unavailable;
  report.Row(config)
      .Field("shards", uint64_t{shards})
      .Field("update_pct", static_cast<uint64_t>(update_pct))
      .Field("zipf_theta", kZipfTheta, 2)
      .Field("client_threads", static_cast<uint64_t>(kOpenThreads))
      .Field("saturation_ops_per_sec", saturation, 1)
      .Field("offered_ops_per_sec", offered, 1)
      .Field("achieved_ops_per_sec",
             static_cast<double>(issued) / kOpenLoopSecs, 1)
      .Field("deadline_ms", static_cast<uint64_t>(deadline_ms))
      .Field("ok", out.ok)
      .Field("deadline_exceeded", out.deadline_exceeded)
      .Field("unavailable", out.unavailable)
      .Field("p50_us", Percentile(out.latency_us, 50), 1)
      .Field("p99_us", Percentile(out.latency_us, 99), 1)
      .Field("p999_us", Percentile(out.latency_us, 99.9), 1);
  std::printf(
      "%-32s sat %7.0f/s, offered %7.0f/s, p50 %7.1f us, p99 %8.1f us, "
      "p999 %8.1f us, ok %llu dl %llu unavail %llu\n",
      config.c_str(), saturation, offered, Percentile(out.latency_us, 50),
      Percentile(out.latency_us, 99), Percentile(out.latency_us, 99.9),
      static_cast<unsigned long long>(out.ok),
      static_cast<unsigned long long>(out.deadline_exceeded),
      static_cast<unsigned long long>(out.unavailable));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);
  BenchJson report("bench_net");
  std::vector<std::string> dirs;

  struct Config {
    const char* name;
    uint32_t shards;
  };
  for (const Config config : {Config{"monolithic", 1}, Config{"sharded_4", 4}}) {
    const std::string dir = FreshDir(config.name);
    dirs.push_back(dir);
    if (config.shards == 1) {
      WaveletCube::Options options;
      auto fresh = DieOnError(
          WaveletCube::CreateOnDisk(dir, {kLogDim, kLogDim}, options),
          "create monolithic store");
      DieOnError(fresh->Close(), "close fresh store");
    } else {
      WaveletCube::Options cube_options;
      ShardedCube::Options options;
      options.serving.oversubscribe = true;
      auto fresh = DieOnError(
          ShardedCube::CreateOnDisk(dir, {kLogDim, kLogDim}, config.shards,
                                    cube_options, options),
          "create sharded store");
      DieOnError(fresh->Close(), "close fresh sharded store");
    }

    net::CubeRegistry::Options registry_options;
    registry_options.serving.oversubscribe = true;
    auto registry =
        std::make_shared<net::CubeRegistry>(registry_options);
    registry->Configure("bench", dir);
    DieOnError(registry->Open("bench").status(), "open bench cube");
    net::CubeServer::Options server_options;
    server_options.num_threads = 2;
    net::CubeServer server(registry, server_options);
    DieOnError(server.Start(), "start server");

    // Seed the hot set so point queries read real coefficients.
    {
      net::CubeClient seeder("127.0.0.1", server.port());
      Xoshiro256 rng(7);
      BoundedZipfSampler zipf(kCells, kZipfTheta);
      for (int i = 0; i < kSeedWrites; ++i) {
        DieOnError(
            seeder.Add("bench", CellForRank(zipf.Sample(rng)), 0.5),
            "seed write");
      }
    }

    struct Mix {
      const char* name;
      int update_pct;
    };
    for (const Mix mix : {Mix{"point", 0}, Mix{"mixed_90_10", 10}}) {
      const double saturation =
          MeasureSaturation(server.port(), mix.update_pct, /*seed=*/1000);
      const double offered = saturation * kOpenLoopFraction;
      const MixOutcome out = RunOpenLoop(
          server.port(), mix.update_pct, offered, /*deadline_ms=*/0,
          /*tolerate_overload=*/false, /*seed=*/2000);
      ReportRow(report, std::string(config.name) + "_" + mix.name,
                config.shards, mix.update_pct, saturation, offered,
                /*deadline_ms=*/0, out);

      // The armed-deadline row: overload the point mix on each config with
      // a live per-request deadline; tail and rejections stay bounded.
      if (mix.update_pct == 0) {
        const double overload = saturation * kOverloadFraction;
        const MixOutcome armed = RunOpenLoop(
            server.port(), mix.update_pct, overload, kArmedDeadlineMs,
            /*tolerate_overload=*/true, /*seed=*/3000);
        ReportRow(report,
                  std::string(config.name) + "_point_armed_deadline",
                  config.shards, mix.update_pct, saturation, overload,
                  kArmedDeadlineMs, armed);
      }
    }

    server.Stop();
    DieOnError(registry->CloseAll(), "close bench cube");
  }

  for (const std::string& dir : dirs) std::filesystem::remove_all(dir);
  report.Write(json_path);
  return 0;
}
