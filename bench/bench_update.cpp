// Ablation — batch updates (paper §4, Example 2): coefficient writes to
// apply an M-cell dyadic batch of updates, SHIFT-SPLIT versus naive
// per-point path maintenance, sweeping the batch size.
//     naive:       M (log N + 1)
//     SHIFT-SPLIT: (M - 1) + log(N/M) + 1

#include "bench_util.h"
#include "shiftsplit/baseline/naive_update.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/core/updater.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

int main() {
  const uint32_t n = 20, b = 3;  // one-dimensional, N = 2^20
  const std::vector<uint32_t> log_dims{n};
  auto bundle = MakeStandardStore(log_dims, b, 1u << 10);

  std::printf(
      "Example 2: coefficient writes per dyadic batch update (N = 2^%u)\n",
      n);
  PrintRow({"batch M", "naive", "shift-split", "speedup"});
  Xoshiro256 rng(12);
  for (uint32_t m = 2; m <= 12; m += 2) {
    Tensor deltas(TensorShape({uint64_t{1} << m}));
    for (uint64_t i = 0; i < deltas.size(); ++i) {
      deltas[i] = rng.NextGaussian();
    }
    std::vector<uint64_t> origin{uint64_t{3} << m};
    std::vector<uint64_t> pos{3};

    bundle.manager->stats().Reset();
    DieOnError(NaiveRangeUpdate(bundle.store.get(), log_dims, deltas, origin,
                                Normalization::kAverage),
               "naive update");
    const uint64_t naive = bundle.manager->stats().coeff_writes;

    bundle.manager->stats().Reset();
    DieOnError(UpdateDyadicStandard(bundle.store.get(), log_dims, deltas, pos,
                                    Normalization::kAverage,
                                    /*maintain_scaling_slots=*/false),
               "batch update");
    const uint64_t batched = bundle.manager->stats().coeff_writes;

    PrintRow({U(uint64_t{1} << m), U(naive), U(batched),
              F(static_cast<double>(naive) / batched, 1)});
  }
  std::printf(
      "\nClaim check: the naive cost is M (log N + 1); SHIFT-SPLIT batches\n"
      "the same update into M + log(N/M) writes — the speedup approaches\n"
      "log N + 1 for large batches.\n");

  // Range updates: an unaligned box decomposes into up to 2 log N dyadic
  // sub-boxes that share most of their SPLIT path. Flushing once for the
  // whole cover (UpdateRangeStandard) writes each touched block back once;
  // the old per-sub-box flush rewrote the shared path blocks once per
  // sub-box.
  std::printf(
      "\nRange update: write-backs, per-sub-box flush vs one final flush\n");
  PrintRow({"range size", "sub-boxes", "flush each", "flush once", "saved"});
  for (uint32_t m = 4; m <= 12; m += 4) {
    const uint64_t size = (uint64_t{1} << m) + 3;  // unaligned on purpose
    const uint64_t lo = (uint64_t{5} << m) + 1;
    Tensor deltas(TensorShape({size}));
    for (uint64_t i = 0; i < deltas.size(); ++i) {
      deltas[i] = rng.NextGaussian();
    }
    const std::vector<uint64_t> origin{lo};
    const auto cover = DyadicCover(lo, lo + size - 1);

    // Seed behavior: one UpdateDyadicStandard (with its flush) per sub-box.
    auto each = MakeStandardStore(log_dims, b, 1u << 10);
    for (const DyadicInterval& iv : cover) {
      Tensor sub(TensorShape({iv.length()}));
      for (uint64_t i = 0; i < sub.size(); ++i) {
        sub[i] = deltas[iv.begin() - lo + i];
      }
      const std::vector<uint64_t> pos{iv.index};
      DieOnError(UpdateDyadicStandard(each.store.get(), log_dims, sub, pos,
                                      Normalization::kAverage),
                 "per-sub-box update");
    }
    const uint64_t flush_each = each.store->pool_stats().write_backs;

    auto once = MakeStandardStore(log_dims, b, 1u << 10);
    DieOnError(UpdateRangeStandard(once.store.get(), log_dims, deltas, origin,
                                   Normalization::kAverage),
               "range update");
    const uint64_t flush_once = once.store->pool_stats().write_backs;

    PrintRow({U(size), U(cover.size()), U(flush_each), U(flush_once),
              U(flush_each - flush_once)});
  }
  return 0;
}
