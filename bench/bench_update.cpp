// Ablation — batch updates (paper §4, Example 2): coefficient writes to
// apply an M-cell dyadic batch of updates, SHIFT-SPLIT versus naive
// per-point path maintenance, sweeping the batch size.
//     naive:       M (log N + 1)
//     SHIFT-SPLIT: (M - 1) + log(N/M) + 1

#include "bench_util.h"
#include "shiftsplit/baseline/naive_update.h"
#include "shiftsplit/core/updater.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

int main() {
  const uint32_t n = 20, b = 3;  // one-dimensional, N = 2^20
  const std::vector<uint32_t> log_dims{n};
  auto bundle = MakeStandardStore(log_dims, b, 1u << 10);

  std::printf(
      "Example 2: coefficient writes per dyadic batch update (N = 2^%u)\n",
      n);
  PrintRow({"batch M", "naive", "shift-split", "speedup"});
  Xoshiro256 rng(12);
  for (uint32_t m = 2; m <= 12; m += 2) {
    Tensor deltas(TensorShape({uint64_t{1} << m}));
    for (uint64_t i = 0; i < deltas.size(); ++i) {
      deltas[i] = rng.NextGaussian();
    }
    std::vector<uint64_t> origin{uint64_t{3} << m};
    std::vector<uint64_t> pos{3};

    bundle.manager->stats().Reset();
    DieOnError(NaiveRangeUpdate(bundle.store.get(), log_dims, deltas, origin,
                                Normalization::kAverage),
               "naive update");
    const uint64_t naive = bundle.manager->stats().coeff_writes;

    bundle.manager->stats().Reset();
    DieOnError(UpdateDyadicStandard(bundle.store.get(), log_dims, deltas, pos,
                                    Normalization::kAverage,
                                    /*maintain_scaling_slots=*/false),
               "batch update");
    const uint64_t batched = bundle.manager->stats().coeff_writes;

    PrintRow({U(uint64_t{1} << m), U(naive), U(batched),
              F(static_cast<double>(naive) / batched, 1)});
  }
  std::printf(
      "\nClaim check: the naive cost is M (log N + 1); SHIFT-SPLIT batches\n"
      "the same update into M + log(N/M) writes — the speedup approaches\n"
      "log N + 1 for large batches.\n");
  return 0;
}
