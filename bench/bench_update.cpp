// Ablation — batch updates (paper §4, Example 2): coefficient writes to
// apply an M-cell dyadic batch of updates, SHIFT-SPLIT versus naive
// per-point path maintenance, sweeping the batch size.
//     naive:       M (log N + 1)
//     SHIFT-SPLIT: (M - 1) + log(N/M) + 1

#include <chrono>
#include <filesystem>

#include "bench_util.h"
#include "shiftsplit/baseline/naive_update.h"
#include "shiftsplit/core/query.h"
#include "shiftsplit/core/reconstruct.h"
#include "shiftsplit/core/updater.h"
#include "shiftsplit/storage/file_block_manager.h"
#include "shiftsplit/storage/journal.h"
#include "shiftsplit/util/random.h"

using namespace shiftsplit;
using namespace shiftsplit::bench;

int main(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);
  BenchJson report("bench_update");
  const uint32_t n = 20, b = 3;  // one-dimensional, N = 2^20
  const std::vector<uint32_t> log_dims{n};
  auto bundle = MakeStandardStore(log_dims, b, 1u << 10);

  std::printf(
      "Example 2: coefficient writes per dyadic batch update (N = 2^%u)\n",
      n);
  PrintRow({"batch M", "naive", "shift-split", "speedup"});
  Xoshiro256 rng(12);
  for (uint32_t m = 2; m <= 12; m += 2) {
    Tensor deltas(TensorShape({uint64_t{1} << m}));
    for (uint64_t i = 0; i < deltas.size(); ++i) {
      deltas[i] = rng.NextGaussian();
    }
    std::vector<uint64_t> origin{uint64_t{3} << m};
    std::vector<uint64_t> pos{3};

    bundle.manager->stats().Reset();
    DieOnError(NaiveRangeUpdate(bundle.store.get(), log_dims, deltas, origin,
                                Normalization::kAverage),
               "naive update");
    const uint64_t naive = bundle.manager->stats().coeff_writes;

    bundle.manager->stats().Reset();
    DieOnError(UpdateDyadicStandard(bundle.store.get(), log_dims, deltas, pos,
                                    Normalization::kAverage,
                                    /*maintain_scaling_slots=*/false),
               "batch update");
    const uint64_t batched = bundle.manager->stats().coeff_writes;

    PrintRow({U(uint64_t{1} << m), U(naive), U(batched),
              F(static_cast<double>(naive) / batched, 1)});
    report.Row("dyadic_batch_M" + U(uint64_t{1} << m))
        .Field("naive_coeff_writes", naive)
        .Field("shift_split_coeff_writes", batched)
        .Field("speedup", static_cast<double>(naive) / batched, 2);
  }
  std::printf(
      "\nClaim check: the naive cost is M (log N + 1); SHIFT-SPLIT batches\n"
      "the same update into M + log(N/M) writes — the speedup approaches\n"
      "log N + 1 for large batches.\n");

  // Range updates: an unaligned box decomposes into up to 2 log N dyadic
  // sub-boxes that share most of their SPLIT path. Flushing once for the
  // whole cover (UpdateRangeStandard) writes each touched block back once;
  // the old per-sub-box flush rewrote the shared path blocks once per
  // sub-box.
  std::printf(
      "\nRange update: write-backs, per-sub-box flush vs one final flush\n");
  PrintRow({"range size", "sub-boxes", "flush each", "flush once", "saved"});
  for (uint32_t m = 4; m <= 12; m += 4) {
    const uint64_t size = (uint64_t{1} << m) + 3;  // unaligned on purpose
    const uint64_t lo = (uint64_t{5} << m) + 1;
    Tensor deltas(TensorShape({size}));
    for (uint64_t i = 0; i < deltas.size(); ++i) {
      deltas[i] = rng.NextGaussian();
    }
    const std::vector<uint64_t> origin{lo};
    const auto cover = DyadicCover(lo, lo + size - 1);

    // Seed behavior: one UpdateDyadicStandard (with its flush) per sub-box.
    auto each = MakeStandardStore(log_dims, b, 1u << 10);
    for (const DyadicInterval& iv : cover) {
      Tensor sub(TensorShape({iv.length()}));
      for (uint64_t i = 0; i < sub.size(); ++i) {
        sub[i] = deltas[iv.begin() - lo + i];
      }
      const std::vector<uint64_t> pos{iv.index};
      DieOnError(UpdateDyadicStandard(each.store.get(), log_dims, sub, pos,
                                      Normalization::kAverage),
                 "per-sub-box update");
    }
    const uint64_t flush_each = each.store->pool_stats().write_backs;

    auto once = MakeStandardStore(log_dims, b, 1u << 10);
    DieOnError(UpdateRangeStandard(once.store.get(), log_dims, deltas, origin,
                                   Normalization::kAverage),
               "range update");
    const uint64_t flush_once = once.store->pool_stats().write_backs;

    PrintRow({U(size), U(cover.size()), U(flush_each), U(flush_once),
              U(flush_each - flush_once)});
    report.Row("range_update_size" + U(size))
        .Field("sub_boxes", cover.size())
        .Field("write_backs_flush_each", flush_each)
        .Field("write_backs_flush_once", flush_once);
  }

  // Durability tax: the journaled atomic commit writes every dirty block
  // twice (journal image + in-place) plus two fsyncs, versus the raw
  // write-back flush of a v1 store. Both stores are file-backed so the
  // comparison includes the real syscall cost.
  std::printf(
      "\nAtomic-commit overhead: file-backed range updates, journaled (v2,\n"
      "checksummed) vs raw flush (v1), %s\n",
      "wall time per update incl. flush");
  PrintRow({"range size", "raw ms", "journaled ms", "overhead"});
  namespace fs = std::filesystem;
  const fs::path bench_dir =
      fs::temp_directory_path() / "shiftsplit_bench_update";
  for (uint32_t m = 4; m <= 12; m += 4) {
    const uint64_t size = (uint64_t{1} << m) + 3;
    const uint64_t lo = (uint64_t{5} << m) + 1;
    Tensor deltas(TensorShape({size}));
    for (uint64_t i = 0; i < deltas.size(); ++i) {
      deltas[i] = rng.NextGaussian();
    }
    const std::vector<uint64_t> origin{lo};
    constexpr int kReps = 5;

    double elapsed[2] = {0.0, 0.0};
    for (int journaled = 0; journaled < 2; ++journaled) {
      fs::remove_all(bench_dir);
      fs::create_directories(bench_dir);
      FileBlockManager::Options device_options;
      device_options.checksums = journaled != 0;
      device_options.epoch = 1;
      auto layout = std::make_unique<StandardTiling>(log_dims, b);
      const uint64_t capacity = layout->block_capacity();
      auto device = DieOnError(
          FileBlockManager::Open((bench_dir / "blocks.bin").string(),
                                 capacity, device_options),
          "device open");
      auto store = DieOnError(
          journaled
              ? TiledStore::Open(std::move(layout), device.get(), 1u << 10,
                                 std::make_unique<Journal>(
                                     (bench_dir / "store.journal").string()))
              : TiledStore::Create(std::move(layout), device.get(),
                                   1u << 10),
          "store open");
      const auto start = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kReps; ++rep) {
        DieOnError(UpdateRangeStandard(store.get(), log_dims, deltas, origin,
                                       Normalization::kAverage),
                   "timed range update");
      }
      DieOnError(store->Close(), "store close");
      elapsed[journaled] = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count() /
                           kReps;
    }
    PrintRow({U(size), F(elapsed[0], 2), F(elapsed[1], 2),
              F(elapsed[1] / elapsed[0], 2) + "x"});
    report.Row("journaled_commit_size" + U(size))
        .Field("raw_wall_ms", elapsed[0], 2)
        .Field("journaled_wall_ms", elapsed[1], 2)
        .Field("overhead", elapsed[1] / elapsed[0], 2);
  }
  std::printf(
      "\nThe journaled commit stays atomic under power cuts: the overhead\n"
      "buys all-or-nothing multi-block updates and per-block checksums.\n");

  // Parity tax on top of the journaled commit (DESIGN.md §12): with
  // parity_group = G every commit also rewrites one XOR parity stride per
  // touched group — at most 1/G extra device writes plus the sidecar in the
  // journal image. Both stores are journaled v2+ with checksums; the only
  // difference is the parity sidecar, so the write-amplification column is
  // the price of healing bit rot in place instead of quarantining.
  std::printf(
      "\nParity write amplification: journaled range updates, parity off\n"
      "(v2) vs XOR parity G=4 (v3), same workload\n");
  PrintRow({"range size", "block wr", "parity wr", "amp", "wall overhead"});
  for (uint32_t m = 4; m <= 12; m += 4) {
    const uint64_t size = (uint64_t{1} << m) + 3;
    const uint64_t lo = (uint64_t{5} << m) + 1;
    Tensor deltas(TensorShape({size}));
    for (uint64_t i = 0; i < deltas.size(); ++i) {
      deltas[i] = rng.NextGaussian();
    }
    const std::vector<uint64_t> origin{lo};
    constexpr int kReps = 5;

    double elapsed[2] = {0.0, 0.0};
    uint64_t block_writes[2] = {0, 0};
    uint64_t parity_writes[2] = {0, 0};
    for (int parity = 0; parity < 2; ++parity) {
      fs::remove_all(bench_dir);
      fs::create_directories(bench_dir);
      FileBlockManager::Options device_options;
      device_options.checksums = true;
      device_options.epoch = 1;
      device_options.parity_group = parity != 0 ? 4 : 0;
      auto layout = std::make_unique<StandardTiling>(log_dims, b);
      const uint64_t capacity = layout->block_capacity();
      auto device = DieOnError(
          FileBlockManager::Open((bench_dir / "blocks.bin").string(),
                                 capacity, device_options),
          "device open");
      auto store = DieOnError(
          TiledStore::Open(std::move(layout), device.get(), 1u << 10,
                           std::make_unique<Journal>(
                               (bench_dir / "store.journal").string())),
          "store open");
      const auto start = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kReps; ++rep) {
        DieOnError(UpdateRangeStandard(store.get(), log_dims, deltas, origin,
                                       Normalization::kAverage),
                   "timed range update");
      }
      DieOnError(store->Close(), "store close");
      elapsed[parity] = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count() /
                        kReps;
      block_writes[parity] = device->stats().block_writes;
      parity_writes[parity] = device->durability_stats().parity_writes;
    }
    const double amp =
        static_cast<double>(block_writes[1] + parity_writes[1]) /
        static_cast<double>(block_writes[1]);
    PrintRow({U(size), U(block_writes[1]), U(parity_writes[1]), F(amp, 3),
              F(elapsed[1] / elapsed[0], 2) + "x"});
    report.Row("parity_write_amp_size" + U(size))
        .Field("block_writes", block_writes[1])
        .Field("parity_writes", parity_writes[1])
        .Field("write_amplification", amp, 3)
        .Field("parity_wall_ms", elapsed[1], 2)
        .Field("parityless_wall_ms", elapsed[0], 2)
        .Field("wall_overhead", elapsed[1] / elapsed[0], 2);
  }
  fs::remove_all(bench_dir);
  std::printf(
      "\nThe parity sidecar caps the extra writes at one stride per touched\n"
      "group of G blocks — the price of healing bit rot in place.\n");

  // Resilience tax under churn: point-query latency interleaved with dyadic
  // batch updates on the in-memory store, with and without an armed
  // deadline on every query — the per-fetch gate cost while the pool is
  // continuously dirtied by the updater.
  constexpr int kLatencyQueries = 400;
  constexpr int kUpdateEvery = 8;  // one batch update per 8 queries
  Tensor churn(TensorShape({uint64_t{1} << 6}));
  for (uint64_t i = 0; i < churn.size(); ++i) churn[i] = rng.NextGaussian();
  auto run_latency = [&](bool with_deadline) {
    std::vector<double> us;
    us.reserve(kLatencyQueries);
    Xoshiro256 qrng(13);
    QueryOptions options;
    options.use_scaling_slots = true;
    uint64_t update_pos = 5;
    for (int i = 0; i < kLatencyQueries; ++i) {
      if (i % kUpdateEvery == 0) {
        const std::vector<uint64_t> pos{update_pos++ % (uint64_t{1} << (n - 6))};
        DieOnError(UpdateDyadicStandard(bundle.store.get(), log_dims, churn,
                                        pos, Normalization::kAverage,
                                        /*maintain_scaling_slots=*/true),
                   "churn update");
      }
      const std::vector<uint64_t> point{qrng.NextBounded(uint64_t{1} << n)};
      OperationContext ctx;
      if (with_deadline) ctx.set_timeout(std::chrono::seconds(10));
      options.context = with_deadline ? &ctx : nullptr;
      const auto start = std::chrono::steady_clock::now();
      DieOnError(PointQueryStandard(bundle.store.get(), log_dims, point,
                                    options)
                     .status(),
                 "timed point query");
      us.push_back(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start)
                       .count());
    }
    return us;
  };
  std::printf(
      "\nPoint-query latency under update churn (%d queries, one dyadic\n"
      "batch update per %d queries, microseconds)\n",
      kLatencyQueries, kUpdateEvery);
  PrintRow({"configuration", "p50 us", "p99 us"}, 16);
  auto plain = run_latency(false);
  PrintRow({"no deadline", F(Percentile(plain, 50)),
            F(Percentile(plain, 99))},
           16);
  auto gated = run_latency(true);
  PrintRow({"10 s deadline", F(Percentile(gated, 50)),
            F(Percentile(gated, 99))},
           16);
  std::printf(
      "\nThe armed deadline adds one steady-clock check per block fetch;\n"
      "its rows should sit within noise of the no-deadline baseline.\n");
  report.Row("latency_no_deadline")
      .Field("p50_us", Percentile(plain, 50), 2)
      .Field("p99_us", Percentile(plain, 99), 2);
  report.Row("latency_deadline_10s")
      .Field("p50_us", Percentile(gated, 50), 2)
      .Field("p99_us", Percentile(gated, 99), 2);
  report.Write(json_path);
  return 0;
}
